"""Trace files: persisted message streams for offline analysis.

JMPaX analyzes live socket streams; for a reusable tool it is equally
useful to persist the instrumented run and analyze it later (or on another
machine).  Format: JSON lines — a header record then one record per
message::

    {"type": "header", "version": 1, "n_threads": 2, "initial": {...},
     "program": "landing-controller"}
    {"thread": 0, "seq": 2, "kind": "write", ...}      # Message.to_json

The format is append-friendly: the instrumentation can stream records as
Algorithm A emits them (see :class:`TraceWriter`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable, Mapping, Optional

from ..core.events import Message, VarName

__all__ = ["Trace", "TraceWriter", "write_trace", "read_trace"]

_VERSION = 1


@dataclass
class Trace:
    """A loaded trace: the header plus all messages in file order."""

    n_threads: int
    initial: dict[VarName, Any]
    messages: list[Message]
    program: str = "unknown"

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("trace needs at least one thread")


class TraceWriter:
    """Streaming writer: header first, then one line per message.

    Usable as an Algorithm A sink::

        with TraceWriter(path, n_threads=2, initial=store) as w:
            run_program(program, scheduler, sink=w.write)
    """

    def __init__(
        self,
        path: str | Path,
        n_threads: int,
        initial: Mapping[VarName, Any],
        program: str = "unknown",
    ):
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        header = {
            "type": "header",
            "version": _VERSION,
            "n_threads": n_threads,
            "initial": dict(initial),
            "program": program,
        }
        self._fh.write(json.dumps(header) + "\n")
        self.count = 0

    def write(self, msg: Message) -> None:
        if self._fh is None:
            raise RuntimeError("trace writer is closed")
        self._fh.write(msg.to_json() + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_trace(
    path: str | Path,
    n_threads: int,
    initial: Mapping[VarName, Any],
    messages: Iterable[Message],
    program: str = "unknown",
) -> int:
    """Write a complete trace; returns the number of messages written."""
    with TraceWriter(path, n_threads, initial, program) as w:
        for m in messages:
            w.write(m)
        return w.count


def read_trace(path: str | Path) -> Trace:
    """Load a trace file (header + messages)."""
    with open(path, encoding="utf-8") as fh:
        first = fh.readline().strip()
        if not first:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if header.get("type") != "header":
            raise ValueError(f"{path}: missing trace header")
        if header.get("version") != _VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')}"
            )
        messages = [
            Message.from_json(line)
            for line in fh
            if line.strip()
        ]
    return Trace(
        n_threads=header["n_threads"],
        initial=dict(header["initial"]),
        messages=messages,
        program=header.get("program", "unknown"),
    )
