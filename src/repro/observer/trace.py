"""Trace files: persisted message streams for offline analysis.

JMPaX analyzes live socket streams; for a reusable tool it is equally
useful to persist the instrumented run and analyze it later (or on another
machine).  Format: JSON lines — a header record then one record per
message::

    {"type": "header", "version": 1, "n_threads": 2, "initial": {...},
     "program": "landing-controller"}
    {"thread": 0, "seq": 2, "kind": "write", ...}      # Message.to_json

The format is append-friendly: the instrumentation can stream records as
Algorithm A emits them (see :class:`TraceWriter`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable, Mapping, Optional

from ..core.events import Message, VarName

__all__ = ["Trace", "TraceFormatError", "TraceWriter", "write_trace",
           "read_trace"]

_VERSION = 1


class TraceFormatError(ValueError):
    """A trace file violates the format contract.

    Always names the file and the 1-based line number of the offending
    record, so a truncated upload or a hand-edited header is diagnosable
    without opening the file.  Subclasses :class:`ValueError` so existing
    callers that caught the old raw errors keep working.
    """

    def __init__(self, path: str | Path, lineno: int, problem: str):
        super().__init__(f"{path}:{lineno}: {problem}")
        self.path = str(path)
        self.lineno = lineno
        self.problem = problem


@dataclass
class Trace:
    """A loaded trace: the header plus all messages in file order."""

    n_threads: int
    initial: dict[VarName, Any]
    messages: list[Message]
    program: str = "unknown"

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("trace needs at least one thread")


class TraceWriter:
    """Streaming writer: header first, then one line per message.

    Usable as an Algorithm A sink::

        with TraceWriter(path, n_threads=2, initial=store) as w:
            run_program(program, scheduler, sink=w.write)
    """

    def __init__(
        self,
        path: str | Path,
        n_threads: int,
        initial: Mapping[VarName, Any],
        program: str = "unknown",
    ):
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        header = {
            "type": "header",
            "version": _VERSION,
            "n_threads": n_threads,
            "initial": dict(initial),
            "program": program,
        }
        self._fh.write(json.dumps(header) + "\n")
        self.count = 0

    def write(self, msg: Message) -> None:
        if self._fh is None:
            raise RuntimeError("trace writer is closed")
        self._fh.write(msg.to_json() + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_trace(
    path: str | Path,
    n_threads: int,
    initial: Mapping[VarName, Any],
    messages: Iterable[Message],
    program: str = "unknown",
) -> int:
    """Write a complete trace; returns the number of messages written."""
    with TraceWriter(path, n_threads, initial, program) as w:
        for m in messages:
            w.write(m)
        return w.count


def read_trace(path: str | Path) -> Trace:
    """Load a trace file (header + messages).

    Every way the file can be malformed — empty, unparseable JSON, a
    missing or version-mismatched header, a record without the mandatory
    message fields — raises :class:`TraceFormatError` naming the file and
    the offending line, never a raw ``KeyError``/``JSONDecodeError``.
    """
    with open(path, encoding="utf-8") as fh:
        first = fh.readline().strip()
        if not first:
            raise TraceFormatError(path, 1, "empty trace file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                path, 1, f"header is not valid JSON ({exc.msg})") from exc
        if not isinstance(header, dict) or header.get("type") != "header":
            raise TraceFormatError(
                path, 1, "missing trace header record "
                         '(expected {"type": "header", ...})')
        version = header.get("version")
        if version != _VERSION:
            raise TraceFormatError(
                path, 1, f"unsupported trace version {version!r} "
                         f"(this reader understands version {_VERSION})")
        for key in ("n_threads", "initial"):
            if key not in header:
                raise TraceFormatError(
                    path, 1, f"header lacks the mandatory {key!r} field")
        if not isinstance(header["n_threads"], int):
            raise TraceFormatError(
                path, 1, f"header n_threads must be an integer, "
                         f"got {header['n_threads']!r}")
        messages = []
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                messages.append(Message.from_json(line))
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    path, lineno,
                    f"message record is not valid JSON ({exc.msg})") from exc
            except KeyError as exc:
                raise TraceFormatError(
                    path, lineno,
                    f"message record lacks the mandatory {exc.args[0]!r} "
                    "field") from exc
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(
                    path, lineno, f"malformed message record: {exc}") from exc
    try:
        return Trace(
            n_threads=header["n_threads"],
            initial=dict(header["initial"]),
            messages=messages,
            program=header.get("program", "unknown"),
        )
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(path, 1, f"invalid header: {exc}") from exc
