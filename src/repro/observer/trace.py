"""Trace files: persisted message streams for offline analysis.

JMPaX analyzes live socket streams; for a reusable tool it is equally
useful to persist the instrumented run and analyze it later (or on another
machine).  Two on-disk formats share one reader entry point:

* **v1** (this module): JSON lines — a header record then one record per
  message::

      {"type": "header", "version": 1, "n_threads": 2, "initial": {...},
       "program": "landing-controller"}
      {"thread": 0, "seq": 2, "kind": "write", ...}      # Message.to_json

* **v2** (:mod:`repro.store.format`): binary-framed, CRC-checksummed,
  gzip-compressed segments — the trace-archive format.  :func:`iter_trace`
  and :func:`read_trace` sniff the magic bytes and read either.

Both formats are append-friendly: the instrumentation can stream records
as Algorithm A emits them (see :class:`TraceWriter` here and
``repro.store.format.SegmentWriter`` for v2).

Reading is streaming-first: :func:`iter_trace` yields the header then one
message at a time, so replaying a multi-gigabyte archive never loads the
whole file into memory; :func:`read_trace` is a convenience that drains
the same generator into a :class:`Trace`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Mapping, Optional, Union

from ..core.events import Message, VarName

__all__ = ["Trace", "TraceHeader", "TraceFormatError", "TraceWriter",
           "write_trace", "read_trace", "iter_trace", "trace_version"]

_VERSION = 1

#: First bytes of a v2 (binary segment) trace file; anything else is
#: treated as v1 JSON lines.  Defined here so sniffing does not import the
#: store package; ``repro.store.format`` asserts it uses the same value.
V2_MAGIC = b"RPROTRC2"


class TraceFormatError(ValueError):
    """A trace file violates the format contract.

    Always names the file and a 1-based position of the offending record —
    the *line number* for v1 JSONL traces, the *byte offset* of the
    offending frame for v2 binary traces (the ``problem`` text says which)
    — so a truncated upload or a hand-edited header is diagnosable without
    opening the file.  Subclasses :class:`ValueError` so existing callers
    that caught the old raw errors keep working.
    """

    def __init__(self, path: str | Path, lineno: int, problem: str):
        super().__init__(f"{path}:{lineno}: {problem}")
        self.path = str(path)
        self.lineno = lineno
        self.problem = problem

    @property
    def offset(self) -> int:
        """Alias for :attr:`lineno` under its v2 meaning (byte offset)."""
        return self.lineno


@dataclass(frozen=True)
class TraceHeader:
    """The header record of a trace file, parsed and validated.

    First item yielded by :func:`iter_trace`; carries everything the
    observer needs before the first message arrives.
    """

    n_threads: int
    initial: dict[VarName, Any] = field(default_factory=dict)
    program: str = "unknown"
    version: int = _VERSION

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("trace needs at least one thread")


@dataclass
class Trace:
    """A loaded trace: the header plus all messages in file order."""

    n_threads: int
    initial: dict[VarName, Any]
    messages: list[Message]
    program: str = "unknown"

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("trace needs at least one thread")


class TraceWriter:
    """Streaming v1 writer: header first, then one line per message.

    Usable as an Algorithm A sink::

        with TraceWriter(path, n_threads=2, initial=store) as w:
            run_program(program, scheduler, sink=w.write)

    Durability contract: a clean :meth:`close` (or clean ``with`` exit)
    flushes *and fsyncs* before closing, so a trace that a recorder claims
    to have written survives a crash of the machine right after.  When the
    body of the ``with`` raises instead, ``__exit__`` still closes the
    underlying file (no leaked handle) but skips the fsync so the original
    exception is never masked by a failing sync of a half-written file.
    """

    def __init__(
        self,
        path: str | Path,
        n_threads: int,
        initial: Mapping[VarName, Any],
        program: str = "unknown",
    ):
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        try:
            header = {
                "type": "header",
                "version": _VERSION,
                "n_threads": n_threads,
                "initial": dict(initial),
                "program": program,
            }
            self._fh.write(json.dumps(header) + "\n")
        except BaseException:
            # e.g. a non-JSON-able initial store: don't leak the handle
            self._abandon()
            raise
        self.count = 0

    def write(self, msg: Message) -> None:
        if self._fh is None:
            raise RuntimeError("trace writer is closed")
        try:
            self._fh.write(msg.to_json() + "\n")
        except BaseException:
            self._abandon()
            raise
        self.count += 1

    def close(self) -> None:
        """Flush, fsync and close (idempotent)."""
        fh, self._fh = self._fh, None
        if fh is None:
            return
        try:
            fh.flush()
            os.fsync(fh.fileno())
        finally:
            fh.close()

    def _abandon(self) -> None:
        """Error path: close the handle without fsync, swallow close errors
        so the in-flight exception stays primary."""
        fh, self._fh = self._fh, None
        if fh is not None:
            try:
                fh.close()
            except OSError:
                pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self._abandon()
        else:
            self.close()


def write_trace(
    path: str | Path,
    n_threads: int,
    initial: Mapping[VarName, Any],
    messages: Iterable[Message],
    program: str = "unknown",
) -> int:
    """Write a complete v1 trace; returns the number of messages written."""
    with TraceWriter(path, n_threads, initial, program) as w:
        for m in messages:
            w.write(m)
        return w.count


def trace_version(path: str | Path) -> int:
    """Sniff a trace file's format version (1 = JSONL, 2 = binary segments)
    without parsing it."""
    with open(path, "rb") as fh:
        return 2 if fh.read(len(V2_MAGIC)) == V2_MAGIC else 1


def iter_trace(
    path: str | Path,
) -> Iterator[Union[TraceHeader, Message]]:
    """Stream a trace file: yields the :class:`TraceHeader` first, then each
    :class:`Message` in file order, reading incrementally — a multi-GB
    archive never resides in memory.

    Handles both formats: v1 JSON lines (this module) and v2 binary
    segments (``repro.store.format``), dispatching on the magic bytes.

    Every way the file can be malformed — empty, unparseable, a missing or
    version-mismatched header, a record without the mandatory message
    fields, a frame failing its checksum — raises
    :class:`TraceFormatError` naming the file and the offending position,
    never a raw ``KeyError``/``JSONDecodeError``.
    """
    if trace_version(path) == 2:
        from ..store.format import iter_trace_v2

        yield from iter_trace_v2(path)
        return
    yield from _iter_trace_v1(path)


def _iter_trace_v1(path: str | Path) -> Iterator[Union[TraceHeader, Message]]:
    with open(path, encoding="utf-8") as fh:
        first = fh.readline().strip()
        if not first:
            raise TraceFormatError(path, 1, "empty trace file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                path, 1, f"header is not valid JSON ({exc.msg})") from exc
        if not isinstance(header, dict) or header.get("type") != "header":
            raise TraceFormatError(
                path, 1, "missing trace header record "
                         '(expected {"type": "header", ...})')
        version = header.get("version")
        if version != _VERSION:
            raise TraceFormatError(
                path, 1, f"unsupported trace version {version!r} "
                         f"(this reader understands version {_VERSION})")
        for key in ("n_threads", "initial"):
            if key not in header:
                raise TraceFormatError(
                    path, 1, f"header lacks the mandatory {key!r} field")
        if not isinstance(header["n_threads"], int):
            raise TraceFormatError(
                path, 1, f"header n_threads must be an integer, "
                         f"got {header['n_threads']!r}")
        try:
            yield TraceHeader(
                n_threads=header["n_threads"],
                initial=dict(header["initial"]),
                program=header.get("program", "unknown"),
                version=_VERSION,
            )
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(path, 1, f"invalid header: {exc}") from exc
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                yield Message.from_json(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    path, lineno,
                    f"message record is not valid JSON ({exc.msg})") from exc
            except KeyError as exc:
                raise TraceFormatError(
                    path, lineno,
                    f"message record lacks the mandatory {exc.args[0]!r} "
                    "field") from exc
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(
                    path, lineno, f"malformed message record: {exc}") from exc


def read_trace(path: str | Path) -> Trace:
    """Load a whole trace file (header + messages) into memory.

    A convenience over :func:`iter_trace` — same format dispatch, same
    :class:`TraceFormatError` contract; prefer the generator when the
    trace may be large.
    """
    stream = iter_trace(path)
    header = next(stream)
    assert isinstance(header, TraceHeader)
    messages = [m for m in stream if isinstance(m, Message)]
    return Trace(
        n_threads=header.n_threads,
        initial=dict(header.initial),
        messages=messages,
        program=header.program,
    )
