"""Message transport between the instrumented program and the observer.

JMPaX sends messages "via a socket to an external observer" (§4.1), and the
paper stresses that analyzing *computations* (not flat traces) lets the
observer "properly deal with potential reordering of delivered messages
(e.g., due to using multiple channels to reduce the monitoring overhead)"
(§2.2).  These channel classes realize those delivery conditions so tests
and benchmarks can exercise the reordering-tolerance code path (E7):

* :class:`FifoChannel` — in-order delivery (the trivial baseline);
* :class:`ReorderingChannel` — adversarial bounded reordering with a seeded
  RNG: each delivery picks a random message among the ``window`` oldest
  undelivered ones;
* :class:`MultiChannel` — messages sharded over ``k`` FIFO sub-channels
  (e.g. by thread) and merged nondeterministically at the receiver;
* :class:`SocketTransport` — a real localhost TCP socket carrying the JSON
  wire format, for two-process deployments like the original tool.

Channels are synchronous pull-based queues: producers :meth:`put`, the
consumer :meth:`drain`s what is currently deliverable.
"""

from __future__ import annotations

import json
import random
import socket
import threading
from collections import deque
from typing import Iterable, Iterator, Optional

from ..core.events import Message

__all__ = [
    "Channel",
    "FifoChannel",
    "ReorderingChannel",
    "MultiChannel",
    "SocketTransport",
    "deliver_all",
]


class Channel:
    """Base class: an order-scrambling buffer between producer and consumer."""

    def put(self, msg: Message) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """No more messages will be put; everything buffered becomes
        deliverable."""
        raise NotImplementedError

    def drain(self) -> Iterator[Message]:
        """Yield currently-deliverable messages (order is channel policy)."""
        raise NotImplementedError


class FifoChannel(Channel):
    """Exact emission-order delivery."""

    def __init__(self) -> None:
        self._queue: deque[Message] = deque()
        self._closed = False

    def put(self, msg: Message) -> None:
        if self._closed:
            raise RuntimeError("channel closed")
        self._queue.append(msg)

    def close(self) -> None:
        self._closed = True

    def drain(self) -> Iterator[Message]:
        while self._queue:
            yield self._queue.popleft()


class ReorderingChannel(Channel):
    """Adversarial bounded reordering.

    A message becomes deliverable once buffered; each delivery draws
    uniformly among the ``window`` oldest undelivered messages, so a message
    can be overtaken by at most ``window - 1`` later ones — a standard model
    of a network that reorders within a bounded horizon.  ``window=None``
    means unbounded: delivery order is a uniformly random permutation.
    """

    def __init__(self, seed: int = 0, window: Optional[int] = 4):
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for unbounded)")
        self._rng = random.Random(seed)
        self._window = window
        self._buffer: list[Message] = []
        self._closed = False

    def put(self, msg: Message) -> None:
        if self._closed:
            raise RuntimeError("channel closed")
        self._buffer.append(msg)

    def close(self) -> None:
        self._closed = True

    def drain(self) -> Iterator[Message]:
        # Hold messages back while the channel is open so reordering has
        # material to work with; deliver everything once closed.
        while self._buffer and (self._closed or len(self._buffer) > 1):
            horizon = len(self._buffer) if self._window is None else min(
                self._window, len(self._buffer)
            )
            k = self._rng.randrange(horizon)
            yield self._buffer.pop(k)


class MultiChannel(Channel):
    """Messages sharded across ``k`` FIFO sub-channels and merged at the
    receiver by (seeded) nondeterministic interleaving.

    Per-channel order is preserved (FIFO sockets) but cross-channel order is
    arbitrary — exactly the deployment the paper motivates with "multiple
    channels to reduce the monitoring overhead".  The default routing sends
    each thread's messages down ``thread mod k``.
    """

    def __init__(self, k: int = 2, seed: int = 0, route_by_thread: bool = True):
        if k < 1:
            raise ValueError("need at least one sub-channel")
        self._queues: list[deque[Message]] = [deque() for _ in range(k)]
        self._rng = random.Random(seed)
        self._route_by_thread = route_by_thread
        self._rr = 0
        self._closed = False

    def put(self, msg: Message) -> None:
        if self._closed:
            raise RuntimeError("channel closed")
        if self._route_by_thread:
            q = msg.thread % len(self._queues)
        else:
            q = self._rr
            self._rr = (self._rr + 1) % len(self._queues)
        self._queues[q].append(msg)

    def close(self) -> None:
        self._closed = True

    def drain(self) -> Iterator[Message]:
        while True:
            nonempty = [q for q in self._queues if q]
            if not nonempty:
                return
            q = self._rng.choice(nonempty)
            yield q.popleft()


def deliver_all(channel: Channel, messages: Iterable[Message]) -> list[Message]:
    """Convenience: push everything through a channel and collect the
    delivery order."""
    out: list[Message] = []
    for m in messages:
        channel.put(m)
        out.extend(channel.drain())
    channel.close()
    out.extend(channel.drain())
    return out


class SocketTransport:
    """Localhost TCP transport carrying newline-delimited JSON messages.

    The sender side mirrors JMPaX's instrumented JVM; the receiver side is
    the external observer process.  Mostly used by the integration test and
    the ``examples/two_process_observer.py`` demo.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 strict: bool = True, accept_timeout: Optional[float] = 30.0,
                 recv_timeout: Optional[float] = 30.0):
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()
        self._received: list[Message] = []
        self._thread: Optional[threading.Thread] = None
        self._strict = strict
        self._accept_timeout = accept_timeout
        self._recv_timeout = recv_timeout
        self._closed = False
        #: Set when accept() timed out: the sender never connected.
        self.sender_never_connected = False
        #: Set when the connection idled past ``recv_timeout`` mid-stream.
        self.receive_timed_out = False
        #: Undecodable lines (recorded; re-raised by wait() when strict).
        self.errors: list[tuple[str, Exception]] = []

    def start_receiver(self) -> None:
        """Accept one sender connection and collect messages until EOF
        (runs in a daemon thread).  Malformed lines are recorded in
        :attr:`errors`; with ``strict=True`` (default) :meth:`wait`
        re-raises the first one.  A sender that never connects within
        ``accept_timeout``, or goes silent for ``recv_timeout`` mid-stream,
        ends the loop with the corresponding flag set instead of blocking
        forever."""

        def loop() -> None:
            self._server.settimeout(self._accept_timeout)
            try:
                conn, _addr = self._server.accept()
            except (socket.timeout, OSError):
                self.sender_never_connected = True
                return
            conn.settimeout(self._recv_timeout)
            try:
                with conn, conn.makefile("r", encoding="utf-8") as f:
                    for line in f:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            self._received.append(Message.from_json(line))
                        except Exception as exc:  # noqa: BLE001 - recorded
                            self.errors.append((line[:200], exc))
            except socket.timeout:
                self.receive_timed_out = True

        self._thread = threading.Thread(target=loop, daemon=True)
        self._thread.start()

    def sender(self) -> "SocketSender":
        return SocketSender(self.host, self.port)

    def wait(self, timeout: float = 10.0) -> list[Message]:
        """Wait for the sender to disconnect; return messages in arrival
        order.  The server socket is released whatever the outcome."""
        if self._thread is None:
            raise RuntimeError("start_receiver was not called")
        try:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError("socket receiver did not finish in time")
        finally:
            self.close()
        if self.sender_never_connected:
            raise ConnectionError(
                f"no sender connected to {self.host}:{self.port} within "
                f"{self._accept_timeout}s"
            )
        if self._strict and self.receive_timed_out:
            raise TimeoutError(
                f"sender went silent for more than {self._recv_timeout}s "
                "mid-stream (crashed without closing?)"
            )
        if self._strict and self.errors:
            line, exc = self.errors[0]
            raise ValueError(
                f"malformed message line over the wire: {line!r}"
            ) from exc
        return list(self._received)

    def close(self) -> None:
        """Release the server socket (idempotent)."""
        if not self._closed:
            self._closed = True
            self._server.close()

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SocketSender:
    """The instrumented-program side of :class:`SocketTransport`."""

    def __init__(self, host: str, port: int):
        self._sock = socket.create_connection((host, port))
        self._file = self._sock.makefile("w", encoding="utf-8")

    def send(self, msg: Message) -> None:
        self._file.write(msg.to_json())
        self._file.write("\n")

    def close(self) -> None:
        self._file.flush()
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "SocketSender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
