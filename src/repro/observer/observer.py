"""The external observer (paper Fig. 4, monitoring module).

Receives messages ``⟨e, i, V⟩`` in whatever order the transport delivers
them, reconstructs the relevant causality via Theorem 3, and (optionally)
runs the predictive analyzer online.  The observer never assumes in-order
delivery: per-thread sequencing comes from the clocks themselves
(``clock[thread]`` is the event's 1-based relevant index).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from ..analysis.predictive import OnlinePredictor
from ..core.causality import CausalityIndex
from ..core.events import Message, VarName
from ..lattice.levels import BuilderStats, Violation
from ..logic.monitor import Monitor
from .channel import Channel

__all__ = ["Observer"]


class Observer:
    """An online observer over a message stream.

    Args:
        n_threads: MVC width of the monitored program.
        initial_store: the program's initial shared-variable valuation (the
            instrumentor communicates it at startup, like JMPaX does).
        spec: optional safety specification; when given, violations are
            predicted online and collected in :attr:`violations`.

    Use :meth:`receive` directly, or :meth:`consume` to pull from a
    :class:`~repro.observer.channel.Channel`.
    """

    def __init__(
        self,
        n_threads: int,
        initial_store: Mapping[VarName, Any],
        spec: Optional[str | Monitor] = None,
        track_paths: bool = True,
        causal_log: bool = False,
    ):
        self._n = n_threads
        self.causality = CausalityIndex(n_threads)
        self._predictor: Optional[OnlinePredictor] = None
        if spec is not None:
            self._predictor = OnlinePredictor(
                n_threads, initial_store, spec, track_paths=track_paths
            )
        self._received = 0
        self._finished = False
        # Optional causally-ordered message log (a linear extension of ⊳,
        # whatever the delivery order) — see observer.delivery.
        self._delivery = None
        self.causal_log: list[Message] = []
        if causal_log:
            from .delivery import CausalDelivery

            self._delivery = CausalDelivery(n_threads)

    # -- ingestion ------------------------------------------------------------

    def receive(self, msg: Message) -> list[Violation]:
        """Ingest one message (any order); returns newly-predicted violations."""
        if self._finished:
            raise RuntimeError("observer already finished")
        self.causality.add(msg)
        self._received += 1
        if self._delivery is not None:
            self.causal_log.extend(self._delivery.offer(msg))
        if self._predictor is not None:
            return self._predictor.feed(msg)
        return []

    def consume(self, channel: Channel) -> list[Violation]:
        """Drain whatever the channel currently delivers."""
        new: list[Violation] = []
        for msg in channel.drain():
            new.extend(self.receive(msg))
        return new

    def receive_many(self, messages: Iterable[Message]) -> list[Violation]:
        new: list[Violation] = []
        for m in messages:
            new.extend(self.receive(m))
        return new

    def finish(self) -> list[Violation]:
        """End of stream: complete the lattice and final checks."""
        self._finished = True
        if self._predictor is not None:
            return self._predictor.finish()
        return []

    # -- results ---------------------------------------------------------------

    @property
    def n_received(self) -> int:
        return self._received

    @property
    def violations(self) -> list[Violation]:
        return self._predictor.violations if self._predictor else []

    @property
    def stats(self) -> Optional[BuilderStats]:
        return self._predictor.stats if self._predictor else None

    def observed_order_consistent(self) -> bool:
        """Sanity check: received order is *some* linear extension of ⊳ when
        delivery was FIFO; may be False under reordering — by design."""
        from ..core.causality import is_linear_extension

        return is_linear_extension(list(self.causality.messages))
