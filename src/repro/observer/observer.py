"""The external observer (paper Fig. 4, monitoring module).

Receives messages ``⟨e, i, V⟩`` in whatever order the transport delivers
them, reconstructs the relevant causality via Theorem 3, and (optionally)
runs the predictive analyzer online.  The observer never assumes in-order
delivery: per-thread sequencing comes from the clocks themselves
(``clock[thread]`` is the event's 1-based relevant index).

Fault tolerance (``fault_tolerant=True``) extends that to an *imperfect*
wire.  The same per-thread sequencing that makes reordering harmless makes
loss, duplication and corruption **detectable**:

* a duplicate carries an event id already seen → suppressed and counted;
* a corrupted :class:`~repro.core.events.Envelope` fails its send-time
  checksum → counted, payload never trusted;
* a lost message leaves a precise ``(thread, index)`` gap that blocks the
  causal-delivery buffer → after a stall threshold (or at end of stream)
  the gap is declared lost and its *causal cone* quarantined, while
  monitoring continues on every region concurrent with the loss.

The resulting verdict semantics is explicit in :class:`ObserverHealth`:
verdicts on the delivered (non-quarantined) prefix are exactly those of a
fault-free run — the delivered subset is a consistent cut, so its
sub-lattice is a prefix of the full lattice — while quarantined windows
are reported unsound rather than silently guessed at.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from ..analysis.predictive import DegradedWindow
from ..core.causality import CausalityIndex
from ..core.events import Envelope, Message, VarName
from ..engines.base import AnalysisEngine, EngineVerdict, make_engine
from ..engines.bus import AnalysisBus
from ..engines.ltl import LtlEngine
from ..lattice.levels import BuilderStats, Violation
from ..logic.monitor import Monitor
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .channel import Channel
from .delivery import CausalDelivery

__all__ = ["Observer", "ObserverHealth"]

_C_RECEIVED = _metrics.REGISTRY.counter(
    "observer.received", unit="messages",
    help="messages/envelopes ingested by the observer, faults included")
_C_CORRUPTED = _metrics.REGISTRY.counter(
    "observer.corrupted", unit="envelopes",
    help="envelopes rejected because the payload failed its checksum")
_C_REBUILT = _metrics.REGISTRY.counter(
    "observer.rebuilt_events", unit="messages",
    help="archived messages replayed through rebuild() to reconstruct "
         "observer state after a crash")


@dataclass(frozen=True)
class ObserverHealth:
    """Fidelity report: what the observer saw, dropped and gave up on.

    ``losses`` + ``quarantined`` + ``degraded_windows`` delimit exactly
    where verdicts are unsound; everything else carries the same guarantees
    as a fault-free run.
    """

    #: Messages/envelopes ingested, including duplicates and corrupt ones.
    received: int
    #: Messages released to the analysis in causal order.
    delivered: int
    #: Transport-level duplicates suppressed.
    duplicates_dropped: int
    #: Envelopes whose payload failed its send-time checksum.
    corrupted: int
    #: ``(thread, index)`` delivery slots declared lost.
    losses: tuple[tuple[int, int], ...]
    #: Messages discarded because a lost slot is in their causal past.
    quarantined: int
    #: Messages still buffered behind an undeclared gap.
    pending: int
    #: Messages that arrived after their slot had been declared lost.
    late_arrivals: int
    #: Per-thread suffixes excluded from analysis (see
    #: :class:`~repro.analysis.predictive.DegradedWindow`).
    degraded_windows: tuple[DegradedWindow, ...] = ()

    @property
    def degraded(self) -> bool:
        """Did any fault force the observer to give up on part of the
        computation?  (Duplicates alone do not degrade: they are absorbed
        exactly.)"""
        return bool(self.losses or self.quarantined or self.corrupted
                    or self.degraded_windows)

    @property
    def sound_everywhere(self) -> bool:
        """Verdicts cover the full computation with no excluded region."""
        return not self.degraded and self.pending == 0

    def summary(self) -> str:
        lines = [
            f"received={self.received} delivered={self.delivered} "
            f"pending={self.pending}",
            f"duplicates_dropped={self.duplicates_dropped} "
            f"corrupted={self.corrupted} late_arrivals={self.late_arrivals}",
            f"losses={list(self.losses)} quarantined={self.quarantined}",
        ]
        if self.degraded_windows:
            lines.append("degraded windows:")
            lines.extend(f"  {w.pretty()}" for w in self.degraded_windows)
            lines.append("verdicts outside these windows are sound; inside "
                         "them neither violation nor absence can be claimed")
        elif self.sound_everywhere:
            lines.append("all verdicts sound (no loss, no corruption)")
        return "\n".join(lines)


class Observer:
    """An online observer over a message stream.

    Args:
        n_threads: MVC width of the monitored program.
        initial_store: the program's initial shared-variable valuation (the
            instrumentor communicates it at startup, like JMPaX does).
        spec: optional safety specification; when given (and ``engines`` is
            not), past-time LTL violations are predicted online and
            collected in :attr:`violations`.
        engines: explicit analysis selection — engine selection strings
            (``"ltl"``, ``"ltl:<formula>"``, ``"atomicity"``,
            ``"pattern:<steps>"``; see :mod:`repro.engines`) and/or
            already-built :class:`~repro.engines.base.AnalysisEngine`
            instances.  All engines ride one :class:`AnalysisBus`: clocks
            are computed once per delivered message and fanned out.  When
            any engine requires causal order, ingestion is routed through
            the causal-delivery buffer even in strict mode; a pure-LTL
            strict observer keeps the classic raw-arrival feed (the lattice
            reorders internally), so the single-engine pipeline is
            bit-for-bit the pre-bus one.
        fault_tolerant: route ingestion through the causal-delivery buffer
            and tolerate loss/duplication/corruption instead of raising.
            The analyzer then only ever sees causally-delivered messages.
        stall_threshold: in fault-tolerant mode, declare the currently
            blocking gaps lost after this many consecutive ingests that
            release nothing while messages are parked (None = only declare
            losses at :meth:`finish`).
        thread_safe: serialize :meth:`receive`/:meth:`consume`/:meth:`finish`
            (and :attr:`health`) behind an internal lock, so the observer
            may be driven from more than one thread — the analysis server
            hands each session's observer between reader and worker
            threads.  Off by default: single-threaded pipelines should not
            pay for a lock per message.

    Use :meth:`receive` directly, or :meth:`consume` to pull from a
    :class:`~repro.observer.channel.Channel`.
    """

    def __init__(
        self,
        n_threads: int,
        initial_store: Mapping[VarName, Any],
        spec: Optional[str | Monitor] = None,
        track_paths: bool = True,
        causal_log: bool = False,
        fault_tolerant: bool = False,
        stall_threshold: Optional[int] = None,
        thread_safe: bool = False,
        engines: Optional[Sequence[Union[str, AnalysisEngine]]] = None,
    ):
        self._lock = threading.RLock() if thread_safe else nullcontext()
        self._n = n_threads
        self.causality = CausalityIndex(n_threads)
        built: list[AnalysisEngine] = []
        if engines is not None:
            for sel in engines:
                if isinstance(sel, AnalysisEngine):
                    built.append(sel)
                else:
                    built.append(make_engine(sel, n_threads, initial_store,
                                             default_spec=spec))
        elif spec is not None:
            # classic single-analysis observer
            built.append(LtlEngine(n_threads, initial_store, spec,
                                   track_paths=track_paths))
        needs_order = any(e.requires_order for e in built)
        self._received = 0
        self._corrupted = 0
        self._finished = False
        self._tolerant = fault_tolerant
        if stall_threshold is not None and stall_threshold < 1:
            raise ValueError("stall_threshold must be >= 1 (or None)")
        self._stall_threshold = stall_threshold
        self._stalled_for = 0
        self._degraded_windows: tuple[DegradedWindow, ...] = ()
        # Causally-ordered message log (a linear extension of ⊳, whatever
        # the delivery order) — always maintained in fault-tolerant mode,
        # where it doubles as the analyses' input stream, and whenever an
        # engine requires causally-ordered input.
        self._delivery: Optional[CausalDelivery] = None
        self._keep_log = causal_log or fault_tolerant
        self.causal_log: list[Message] = []
        if causal_log or fault_tolerant or needs_order:
            self._delivery = CausalDelivery(n_threads)
        # Feed the bus from delivery releases whenever required (any
        # order-requiring engine, or fault tolerance); the strict pure-LTL
        # observer keeps feeding raw arrivals — the pre-bus pipeline.
        self._feed_releases = fault_tolerant or needs_order
        self._bus = AnalysisBus(n_threads, built,
                                ordered=self._feed_releases)

    # -- ingestion ------------------------------------------------------------

    def receive(self, item: Union[Message, Envelope]) -> list[Any]:
        """Ingest one message or envelope (any order); returns
        newly-discovered findings (violations, atomicity findings, pattern
        matches — concatenated in engine order).

        In strict mode (the default) a corrupted envelope or duplicate
        message raises — the perfect-channel contract of the original
        pipeline.  In fault-tolerant mode both are counted and absorbed.
        """
        with self._lock:
            return self._receive(item)

    def _receive(self, item: Union[Message, Envelope]) -> list[Any]:
        if self._finished:
            raise RuntimeError("observer already finished")
        self._received += 1
        if _metrics.ENABLED:
            _C_RECEIVED.inc()
        if isinstance(item, Envelope):
            if not item.ok:
                self._corrupted += 1
                if _metrics.ENABLED:
                    _C_CORRUPTED.inc()
                if not self._tolerant:
                    raise ValueError(
                        f"envelope seq={item.seq} failed its checksum "
                        "(corrupt payload)"
                    )
                return []
            msg = item.message
        else:
            msg = item
        if self._tolerant and msg.event.eid in self.causality:
            # duplicate: CausalDelivery counts it; nothing new to analyze
            if self._delivery is not None:
                self._delivery.offer(msg)
            return []
        self.causality.add(msg)
        if self._delivery is not None:
            released = self._delivery.offer(msg)
            if self._keep_log:
                self.causal_log.extend(released)
            if self._tolerant:
                self._check_stall(bool(released))
            if self._feed_releases:
                new: list[Any] = []
                for r in released:
                    new.extend(self._bus.feed(r))
                return new
        return self._bus.feed(msg)

    def _check_stall(self, released_any: bool) -> None:
        assert self._delivery is not None
        if released_any or self._delivery.pending == 0:
            self._stalled_for = 0
            return
        self._stalled_for += 1
        if (self._stall_threshold is not None
                and self._stalled_for >= self._stall_threshold):
            self._delivery.declare_lost(self._delivery.gaps())
            self._stalled_for = 0

    def receive_batch(
        self, items: Sequence[Union[Message, Envelope]]
    ) -> list[Any]:
        """Ingest a batch of messages/envelopes in order; returns the
        findings newly discovered by the batch.

        Semantically identical to calling :meth:`receive` once per item —
        same causality index, delivery releases, causal log, engine
        state, findings and counters — but amortized: one arena write
        (:meth:`CausalityIndex.add_batch`), one delivery pass
        (:meth:`CausalDelivery.offer_batch`) and one bus fan-out
        (:meth:`AnalysisBus.feed_batch`, which annotates the batch once
        and advances every engine once) per batch instead of per
        message.  In strict mode a corrupt envelope, width mismatch or
        duplicate raises exactly where the per-item loop would: every item
        before it has been fully processed.

        Fault-tolerant observers with a ``stall_threshold`` fall back to
        per-item ingestion — stall accounting is defined per ingest call,
        and batching would change *when* gaps get declared lost.
        """
        with self._lock:
            if self._tolerant and self._stall_threshold is not None:
                new: list[Any] = []
                for item in items:
                    new.extend(self._receive(item))
                return new
            return self._receive_batch(items)

    def _receive_batch(
        self, items: Sequence[Union[Message, Envelope]]
    ) -> list[Any]:
        if self._finished:
            raise RuntimeError("observer already finished")
        new: list[Any] = []
        msgs: list[Message] = []
        batch_eids: set[tuple[int, int]] = set()

        def flush() -> None:
            if msgs:
                new.extend(self._analyze_batch(msgs))
                msgs.clear()
                batch_eids.clear()

        for item in items:
            self._received += 1
            if _metrics.ENABLED:
                _C_RECEIVED.inc()
            if isinstance(item, Envelope):
                if not item.ok:
                    self._corrupted += 1
                    if _metrics.ENABLED:
                        _C_CORRUPTED.inc()
                    if not self._tolerant:
                        flush()  # items before the corrupt one still count
                        raise ValueError(
                            f"envelope seq={item.seq} failed its checksum "
                            "(corrupt payload)"
                        )
                    continue
                msg = item.message
            else:
                msg = item
            # Pre-validate here so _analyze_batch never raises mid-segment
            # (which would commit the causality prefix without feeding the
            # predictor — a state the per-item loop can never reach).
            if msg.clock.width != self._n:
                flush()
                raise ValueError(
                    f"message clock width {msg.clock.width} != index "
                    f"width {self._n}"
                )
            eid = msg.event.eid
            if not self._tolerant and (
                eid in self.causality or eid in batch_eids
            ):
                flush()
                raise ValueError(f"duplicate message for event {eid}")
            batch_eids.add(eid)
            msgs.append(msg)
        flush()
        return new

    def _analyze_batch(self, msgs: list[Message]) -> list[Any]:
        if self._tolerant:
            # duplicates (vs the index or within the batch) are absorbed by
            # the delivery buffer, exactly as in the per-item path
            fresh: list[Message] = []
            fresh_eids: set[tuple[int, int]] = set()
            for m in msgs:
                eid = m.event.eid
                if eid not in self.causality and eid not in fresh_eids:
                    fresh_eids.add(eid)
                    fresh.append(m)
            if fresh:
                self.causality.add_batch(fresh)
            assert self._delivery is not None
            released = self._delivery.offer_batch(msgs)
            if self._keep_log:
                self.causal_log.extend(released)
            if released:
                return self._bus.feed_batch(released)
            return []
        self.causality.add_batch(msgs)
        released = None
        if self._delivery is not None:
            released = self._delivery.offer_batch(msgs)
            if self._keep_log:
                self.causal_log.extend(released)
        if self._feed_releases:
            return self._bus.feed_batch(released) if released else []
        # strict mode feeds the bus raw arrivals (not releases), matching
        # the per-item path
        return self._bus.feed_batch(msgs)

    def rebuild(self, messages: Iterable[Union[Message, Envelope]]) -> int:
        """Crash-recovery hook: replay an archived prefix to reconstruct
        state.

        The analysis depends only on the message sequence, so feeding the
        journaled prefix back through the normal ingestion path lands the
        observer — causality index, delivery buffer, predictor lattice and
        accumulated violations — in exactly the state it held when that
        prefix was live (the determinism the replay engine already relies
        on).  Returns the number of messages replayed.  Must be called
        before :meth:`finish`; the observer must not have ingested anything
        else yet for the rebuilt state to equal the pre-crash state.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError("cannot rebuild a finished observer")
            n = 0
            for m in messages:
                self._receive(m)
                n += 1
        if _metrics.ENABLED:
            _C_REBUILT.inc(n)
        return n

    def consume(self, channel: Channel) -> list[Any]:
        """Drain whatever the channel currently delivers."""
        new: list[Any] = []
        with _tracing.span("observer.consume"):
            for msg in channel.drain():
                new.extend(self.receive(msg))
        return new

    def receive_many(
        self, messages: Iterable[Union[Message, Envelope]]
    ) -> list[Any]:
        new: list[Any] = []
        for m in messages:
            new.extend(self.receive(m))
        return new

    def finish(
        self, expected_totals: Optional[Sequence[int]] = None
    ) -> list[Any]:
        """End of stream: every engine completes its final checks.

        In fault-tolerant mode, remaining gaps are declared lost —
        precisely, when ``expected_totals`` (true per-thread message
        counts, e.g. from end-of-thread markers) is given, every expected
        slot that never arrived; otherwise every slot still blocking a
        buffered message.  Every engine then completes over the delivered
        prefix and the excluded regions are reported in :attr:`health`.
        """
        with self._lock:
            self._finished = True
            with _tracing.span("observer.finish"):
                if not self._tolerant:
                    return self._bus.finish()
                return self._finish_tolerant(expected_totals)

    def _finish_tolerant(
        self, expected_totals: Optional[Sequence[int]]
    ) -> list[Any]:
        d = self._delivery
        assert d is not None
        if expected_totals is not None:
            if len(expected_totals) != self._n:
                raise ValueError(
                    f"expected_totals has {len(expected_totals)} entries "
                    f"for {self._n} threads"
                )
            missing = [
                (j, k)
                for j in range(self._n)
                for k in range(d.delivered_counts[j] + 1,
                               expected_totals[j] + 1)
                if not d.arrived((j, k)) and (j, k) not in set(d.losses)
            ]
            d.declare_lost(missing)
        # Anything still parked waits on a chain of gaps that bottoms out at
        # a slot that never arrived; declare those until the buffer drains.
        while d.pending:
            unseen = [s for s in d.gaps() if not d.arrived(s)]
            if not unseen:  # pragma: no cover - impossible: ⊳ is well-founded
                raise RuntimeError("delivery stalled on arrived slots only")
            d.declare_lost(unseen)
        degraded = bool(d.losses) or self._corrupted > 0
        if not degraded:
            return self._bus.finish()
        new = self._bus.finish_partial(d.delivered_counts, expected_totals)
        self._degraded_windows = self._bus.degraded_windows
        return new

    # -- results ---------------------------------------------------------------

    @property
    def n_received(self) -> int:
        return self._received

    @property
    def bus(self) -> AnalysisBus:
        return self._bus

    @property
    def engines(self) -> tuple[AnalysisEngine, ...]:
        return self._bus.engines

    def engine_verdicts(self) -> list[EngineVerdict]:
        """One :class:`EngineVerdict` per engine, in registration order."""
        with self._lock:
            return self._bus.verdicts()

    def counterexamples(self) -> list[str]:
        """Pretty-printed findings of every engine, in engine order."""
        with self._lock:
            out: list[str] = []
            for e in self._bus.engines:
                out.extend(e.counterexamples())
            return out

    @property
    def _ltl(self) -> Optional[LtlEngine]:
        for e in self._bus.engines:
            if isinstance(e, LtlEngine):
                return e
        return None

    @property
    def violations(self) -> list[Violation]:
        """The LTL engine's violations (back-compat accessor; use
        :meth:`engine_verdicts` for the full multi-engine picture)."""
        ltl = self._ltl
        return ltl.violations if ltl is not None else []

    @property
    def stats(self) -> Optional[BuilderStats]:
        ltl = self._ltl
        return ltl.stats if ltl is not None else None

    @property
    def health(self) -> ObserverHealth:
        """Fidelity report (meaningful mainly in fault-tolerant mode)."""
        with self._lock:
            return self._health()

    def _health(self) -> ObserverHealth:
        d = self._delivery
        if d is None:
            return ObserverHealth(
                received=self._received, delivered=self._received,
                duplicates_dropped=0, corrupted=self._corrupted,
                losses=(), quarantined=0, pending=0, late_arrivals=0,
            )
        return ObserverHealth(
            received=self._received,
            delivered=sum(d.delivered_counts),
            duplicates_dropped=d.duplicates_dropped,
            corrupted=self._corrupted,
            losses=d.losses,
            quarantined=len(d.quarantined),
            pending=d.pending,
            late_arrivals=d.late_arrivals,
            degraded_windows=self._degraded_windows,
        )

    def observed_order_consistent(self) -> bool:
        """Sanity check: received order is *some* linear extension of ⊳ when
        delivery was FIFO; may be False under reordering — by design."""
        from ..core.causality import is_linear_extension

        return is_linear_extension(list(self.causality.messages))
