"""Observer-side transport and ingestion (paper Fig. 4, §2.2, §4.1)."""

from .channel import (
    Channel,
    FifoChannel,
    MultiChannel,
    ReorderingChannel,
    SocketSender,
    SocketTransport,
    deliver_all,
)
from .delivery import CausalDelivery
from .observer import Observer
from .trace import Trace, TraceWriter, read_trace, write_trace

__all__ = [
    "Channel",
    "FifoChannel",
    "MultiChannel",
    "ReorderingChannel",
    "SocketSender",
    "SocketTransport",
    "deliver_all",
    "CausalDelivery",
    "Observer",
    "Trace",
    "TraceWriter",
    "read_trace",
    "write_trace",
]
