"""Observer-side transport and ingestion (paper Fig. 4, §2.2, §4.1)."""

from .channel import (
    Channel,
    FifoChannel,
    MultiChannel,
    ReorderingChannel,
    SocketSender,
    SocketTransport,
    deliver_all,
)
from .delivery import CausalDelivery
from .faults import FaultLog, FaultPlan, FaultyChannel
from .observer import Observer, ObserverHealth
from .reliable import (
    FrameDecoder,
    LossyWire,
    ReliableReceiver,
    ReliableSender,
    ReliableTransportError,
    RetransmitConfig,
)
from .trace import Trace, TraceFormatError, TraceWriter, read_trace, write_trace

__all__ = [
    "Channel",
    "FifoChannel",
    "MultiChannel",
    "ReorderingChannel",
    "SocketSender",
    "SocketTransport",
    "deliver_all",
    "CausalDelivery",
    "FaultLog",
    "FaultPlan",
    "FaultyChannel",
    "Observer",
    "ObserverHealth",
    "FrameDecoder",
    "LossyWire",
    "ReliableReceiver",
    "ReliableSender",
    "ReliableTransportError",
    "RetransmitConfig",
    "Trace",
    "TraceFormatError",
    "TraceWriter",
    "read_trace",
    "write_trace",
]
