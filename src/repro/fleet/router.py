"""The fleet front door: one port, N shard daemons behind it.

The router speaks the existing session protocol
(:mod:`repro.server.protocol`) so clients are completely unchanged —
``attach()`` dials the router exactly as it would a lone daemon.  For
each accepted connection the router reads exactly one handshake line
(byte-at-a-time, like the client's own reader, so it never consumes
bytes belonging to the reliable stream that follows), places the session,
forwards the hello to the chosen shard, relays the shard's one-line
answer, and then **splices** raw bytes in both directions for the life of
the connection.  Everything after the handshake — acks, checkpoints,
result frames — flows through untouched.

Placement and backpressure:

* a fresh ``attach`` walks the consistent-hash ring's preference order
  (:class:`~repro.fleet.hashring.HashRing`) for a per-session routing
  key, skipping shards that are down or believed full; a shard-side
  ``capacity`` reject (the structured ``why`` field) spills the attach to
  the next ring node, and only when every shard has refused does the
  client see a reasoned fleet-wide reject;
* a ``resume`` needs no routing table: shard *i* mints session ids in its
  own stride of the id space (:data:`~repro.fleet.config.SESSION_STRIDE`),
  so the session id in the resume hello identifies the owning slot.  If
  that slot is mid-restart the router holds the handshake for up to
  ``resume_wait`` — long enough for the supervisor to respawn the shard
  and for its journal recovery to readmit the session;
* a ``status`` hello is answered by the router itself with the fleet
  document: a synthesized aggregate ``server`` section (so ``repro
  sessions`` keeps working against a router), a ``fleet`` section with
  router counters and per-shard health, every shard's session table
  merged (rows tagged with their shard), and the shard metric snapshots
  summed into one fleet-wide snapshot.
"""

from __future__ import annotations

import errno as _errno
import logging
import socket
import threading
import time
from typing import Optional

from .. import __version__ as _repro_version
from ..obs import metrics as _metrics
from ..server.client import fetch_status
from ..server.protocol import ProtocolError, encode_frame, read_frame_line
from .config import SESSION_STRIDE, FleetConfig, shard_of_session
from .hashring import HashRing
from .shards import ShardSupervisor

_LOG = logging.getLogger("repro.fleet")

__all__ = ["FleetRouter", "AnalysisFleet", "merge_metric_snapshots"]

_C_ROUTED = _metrics.REGISTRY.counter(
    "fleet.routed_sessions", unit="sessions",
    help="attach handshakes placed on a shard by the router (labelled "
         "per shard as fleet.routed_sessions{shard=})")
_C_SPILLS = _metrics.REGISTRY.counter(
    "fleet.spills", unit="sessions",
    help="attach placements that skipped a full shard and moved to the "
         "next ring node")
_C_REJECTS = _metrics.REGISTRY.counter(
    "fleet.rejects", unit="sessions",
    help="handshakes refused by the router itself (whole fleet "
         "saturated, unroutable resume, malformed hello)")
_C_REBALANCED = _metrics.REGISTRY.counter(
    "fleet.rebalanced_sessions", unit="sessions",
    help="resume handshakes routed to a restarted shard (generation > 1) "
         "— sessions that moved to a reborn daemon after a crash")

#: recv/sendall chunk for the post-handshake byte splice.
_SPLICE_CHUNK = 1 << 16


def merge_metric_snapshots(snapshots: list[dict]) -> dict:
    """Sum per-process metric snapshots into one fleet-wide snapshot.

    Counters and gauges add their values (gauges also take the max of
    maxes); histograms add counts/sums, merge buckets, and keep the
    global min/max.  Instruments missing from some snapshots contribute
    nothing there.
    """
    merged: dict[str, dict] = {}
    for snap in snapshots:
        for name, inst in snap.items():
            have = merged.get(name)
            if have is None:
                merged[name] = {k: (dict(v) if isinstance(v, dict) else v)
                                for k, v in inst.items()}
                continue
            kind = inst.get("type")
            if kind == "counter":
                have["value"] = have.get("value", 0) + inst.get("value", 0)
            elif kind == "gauge":
                have["value"] = have.get("value", 0) + inst.get("value", 0)
                have["max"] = max(have.get("max", 0), inst.get("max", 0))
            elif kind == "histogram":
                have["count"] = have.get("count", 0) + inst.get("count", 0)
                have["sum"] = have.get("sum", 0) + inst.get("sum", 0)
                for bound in (inst.get("buckets") or {}):
                    have.setdefault("buckets", {})
                    have["buckets"][bound] = (have["buckets"].get(bound, 0)
                                              + inst["buckets"][bound])
                for k, pick in (("min", min), ("max", max)):
                    vals = [v for v in (have.get(k), inst.get(k))
                            if v is not None]
                    have[k] = pick(vals) if vals else None
                if have["count"]:
                    have["mean"] = have["sum"] / have["count"]
    return merged


class FleetRouter:
    """Accepts client connections and splices them onto shards."""

    def __init__(self, config: FleetConfig, supervisor: ShardSupervisor):
        self.config = config
        self._supervisor = supervisor
        self._ring = HashRing(range(config.shards), vnodes=config.vnodes)
        self._server: Optional[socket.socket] = None
        self.host = config.host
        self.port: Optional[int] = None
        self._lock = threading.Lock()
        self._stopping = False
        self._route_seq = 0
        # plain counters besides the obs metrics, so the fleet status
        # document is populated even with metrics collection disabled
        self._routed = 0
        self._spills = 0
        self._rejects = 0
        self._rebalanced = 0
        self._routed_by_shard: dict[int, int] = {}
        self._full_until: dict[int, float] = {}
        self._started_at = time.time()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list[threading.Thread] = []

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "FleetRouter":
        if self._server is not None:
            raise RuntimeError("router already started")
        self._server = socket.create_server((self.config.host,
                                             self.config.port))
        self.host, self.port = self._server.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-fleet-accept", daemon=True)
        self._accept_thread.start()
        return self

    def shutdown(self) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        if self._server is not None:
            try:
                self._server.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._server.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    # -- accept / dispatch ----------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while True:
            try:
                conn, addr = self._server.accept()
            except OSError as exc:
                with self._lock:
                    if self._stopping:
                        return
                if exc.errno in (_errno.EBADF, _errno.EINVAL,
                                 _errno.ENOTSOCK):
                    return
                continue
            t = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"repro-fleet-conn-{addr[1]}", daemon=True)
            self._conn_threads.append(t)
            t.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.settimeout(self.config.io_timeout)
                try:
                    frame = read_frame_line(conn)
                except (ProtocolError, OSError, ValueError) as exc:
                    self._reject(conn, f"bad handshake: {exc}",
                                 why="bad-hello")
                    return
                mode = frame.get("mode") if frame.get("t") == "hello" else None
                if mode == "status":
                    conn.sendall(encode_frame(self.status()))
                elif mode == "resume":
                    self._route_resume(conn, frame)
                elif mode == "attach":
                    self._route_attach(conn, frame)
                else:
                    self._reject(
                        conn, f"expected a hello frame, got {frame!r}",
                        why="bad-hello")
        except OSError:
            pass
        finally:
            try:
                self._conn_threads.remove(threading.current_thread())
            except ValueError:
                pass

    # -- placement ------------------------------------------------------------

    def _route_attach(self, conn: socket.socket, frame: dict) -> None:
        with self._lock:
            self._route_seq += 1
            key = f"attach:{self._route_seq}"
        preferred = True
        down = 0
        for slot in self._ring.preference(key):
            addr = self._supervisor.address(slot)
            if addr is None:
                down += 1
                preferred = False
                continue
            if self._believed_full(slot):
                self._count_spill()
                preferred = False
                continue
            upstream = self._shard_handshake(addr, frame)
            if upstream is None:          # dial/handshake failed: next node
                preferred = False
                continue
            sock, reply = upstream
            if (reply.get("t") == "reject"
                    and reply.get("why") == "capacity"):
                sock.close()
                self._mark_full(slot)
                self._count_spill()
                preferred = False
                continue
            # the shard's answer is final — relay it
            try:
                conn.sendall(encode_frame(reply))
            except OSError:
                sock.close()
                return
            if reply.get("t") == "helloack":
                self._count_routed(slot, preferred)
                self._splice(conn, sock)
            else:
                sock.close()
            return
        if down == len(self._ring):
            self._reject(conn, "no shard is up: the whole fleet is down "
                               "or restarting", why="capacity")
        else:
            self._reject(
                conn,
                f"fleet at capacity: all {len(self._ring) - down} live "
                f"shard(s) are at max_sessions", why="capacity")

    def _route_resume(self, conn: socket.socket, frame: dict) -> None:
        sid = frame.get("session")
        if not isinstance(sid, int) or sid < 1:
            self._reject(conn, f"resume carries no valid session id: "
                               f"{sid!r}", why="bad-hello")
            return
        slot = shard_of_session(sid)
        if slot >= self.config.shards:
            self._reject(
                conn,
                f"cannot resume session {sid}: id names shard {slot} but "
                f"the fleet has {self.config.shards}", why="resume")
            return
        # the owning shard may be mid-restart (that is exactly when
        # clients come back): hold the handshake while it respawns
        deadline = time.monotonic() + self.config.resume_wait
        addr = self._supervisor.address(slot)
        while addr is None and time.monotonic() < deadline:
            time.sleep(0.05)
            addr = self._supervisor.address(slot)
        if addr is None:
            self._reject(
                conn,
                f"cannot resume session {sid}: shard {slot} is down",
                why="resume")
            return
        upstream = self._shard_handshake(addr, frame)
        if upstream is None:
            self._reject(
                conn,
                f"cannot resume session {sid}: shard {slot} is not "
                f"answering", why="resume")
            return
        sock, reply = upstream
        try:
            conn.sendall(encode_frame(reply))
        except OSError:
            sock.close()
            return
        if reply.get("t") == "helloack":
            generation = addr[2]
            if generation > 1:
                with self._lock:
                    self._rebalanced += 1
                if _metrics.ENABLED:
                    _C_REBALANCED.inc()
            self._splice(conn, sock)
        else:
            sock.close()

    def _shard_handshake(
            self, addr: tuple[str, int, int],
            frame: dict) -> Optional[tuple[socket.socket, dict]]:
        """Dial a shard, forward the hello, read its one-line answer."""
        host, port, _generation = addr
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.config.heartbeat_timeout + 5.0)
        except OSError:
            return None
        try:
            sock.sendall(encode_frame(frame))
            reply = read_frame_line(sock)
        except (OSError, ProtocolError, ValueError):
            sock.close()
            return None
        return sock, reply

    def _splice(self, client: socket.socket, shard: socket.socket) -> None:
        """Relay raw bytes both ways until either side goes away.

        Runs shard→client on a helper thread and client→shard inline;
        whichever direction ends first shuts both sockets down, which
        unblocks the other.  A SIGKILLed shard therefore breaks the
        client's connection promptly — triggering its reconnect policy,
        whose resume dials the router again.
        """
        client.settimeout(None)
        shard.settimeout(None)

        def pump(src: socket.socket, dst: socket.socket) -> None:
            try:
                while True:
                    data = src.recv(_SPLICE_CHUNK)
                    if not data:
                        break
                    dst.sendall(data)
            except OSError:
                pass
            finally:
                for s in (src, dst):
                    try:
                        s.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass

        back = threading.Thread(target=pump, args=(shard, client),
                                name="repro-fleet-splice", daemon=True)
        back.start()
        pump(client, shard)
        back.join()
        shard.close()

    # -- admission bookkeeping ------------------------------------------------

    def _believed_full(self, slot: int) -> bool:
        with self._lock:
            until = self._full_until.get(slot)
            if until is None:
                return False
            if time.monotonic() >= until:
                del self._full_until[slot]
                return False
            return True

    def _mark_full(self, slot: int) -> None:
        with self._lock:
            self._full_until[slot] = (time.monotonic()
                                      + self.config.status_ttl)

    def _count_routed(self, slot: int, preferred: bool) -> None:
        with self._lock:
            self._routed += 1
            self._routed_by_shard[slot] = (
                self._routed_by_shard.get(slot, 0) + 1)
        if _metrics.ENABLED:
            _C_ROUTED.inc()
            _metrics.REGISTRY.counter(
                "fleet.routed_sessions", unit="sessions",
                help="attach handshakes placed on a shard by the router "
                     "(labelled per shard as fleet.routed_sessions{shard=})",
                labels={"shard": slot}).inc()

    def _count_spill(self) -> None:
        with self._lock:
            self._spills += 1
        if _metrics.ENABLED:
            _C_SPILLS.inc()

    def _reject(self, conn: socket.socket, reason: str, why: str) -> None:
        with self._lock:
            self._rejects += 1
        if _metrics.ENABLED:
            _C_REJECTS.inc()
        try:
            conn.sendall(encode_frame(
                {"t": "reject", "reason": reason, "why": why}))
        except OSError:
            pass

    # -- status ---------------------------------------------------------------

    def status(self) -> dict:
        """The fleet status document (see module docstring)."""
        rows = self._supervisor.snapshot()
        sessions: list[dict] = []
        snapshots: list[dict] = []
        active = finished = failed = rejected = 0
        for row in rows:
            if row["state"] != "up":
                continue
            try:
                doc = fetch_status(row["host"], row["port"], timeout=2.0)
            except (OSError, ValueError, ProtocolError):
                row["state"] = "unreachable"
                continue
            srv = doc.get("server", {})
            row["active_sessions"] = srv.get("active_sessions", 0)
            row["max_sessions"] = srv.get("max_sessions",
                                          self.config.max_sessions)
            row["finished"] = srv.get("finished", 0)
            row["failed"] = srv.get("failed", 0)
            row["rejected"] = srv.get("rejected", 0)
            active += row["active_sessions"]
            finished += row["finished"]
            failed += row["failed"]
            rejected += row["rejected"]
            for record in doc.get("sessions", []):
                tagged = dict(record)
                tagged["shard"] = row["shard"]
                sessions.append(tagged)
            if doc.get("metrics"):
                snapshots.append(doc["metrics"])
        with self._lock:
            router = {
                "host": self.host,
                "port": self.port,
                "uptime_s": round(time.time() - self._started_at, 3),
                "routed_sessions": self._routed,
                "routed_by_shard": {str(k): v for k, v in
                                    sorted(self._routed_by_shard.items())},
                "spills": self._spills,
                "rejects": self._rejects,
                "rebalanced_sessions": self._rebalanced,
                "shard_restarts": self._supervisor.restarts_total,
                "session_stride": SESSION_STRIDE,
            }
            rejected += self._rejects
        doc = {
            "t": "status",
            # synthesized aggregate so `repro sessions` (and any other
            # consumer of the single-daemon shape) works against a router
            "server": {
                "version": _repro_version,
                "host": self.host,
                "port": self.port,
                "uptime_s": router["uptime_s"],
                "active_sessions": active,
                "max_sessions": self.config.shards * self.config.max_sessions,
                "workers": self.config.shards * self.config.workers,
                "draining": self._stopping,
                "finished": finished,
                "failed": failed,
                "rejected": rejected,
            },
            "fleet": {"router": router, "shards": rows},
            "sessions": sorted(sessions, key=lambda r: r["session"]),
        }
        if _metrics.ENABLED:
            snapshots.append(_metrics.REGISTRY.snapshot())
        if snapshots:
            doc["metrics"] = merge_metric_snapshots(snapshots)
        return doc


class AnalysisFleet:
    """The whole deployment: shard supervisor + router, one lifecycle.

    Usage::

        from repro.fleet import AnalysisFleet, FleetConfig

        with AnalysisFleet(FleetConfig(shards=4)) as fleet:
            session = attach(port=fleet.port, ...)   # unchanged client
    """

    def __init__(self, config: FleetConfig = FleetConfig()):
        self.config = config
        self.supervisor = ShardSupervisor(config)
        self.router = FleetRouter(config, self.supervisor)

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> Optional[int]:
        return self.router.port

    def start(self) -> "AnalysisFleet":
        self.supervisor.start()
        try:
            self.router.start()
        except BaseException:
            self.supervisor.shutdown()
            raise
        return self

    def shutdown(self) -> None:
        """Stop accepting, then drain-stop every shard."""
        self.router.shutdown()
        self.supervisor.shutdown()

    def status(self) -> dict:
        return self.router.status()

    def __enter__(self) -> "AnalysisFleet":
        return self.start() if self.router.port is None else self

    def __exit__(self, *exc) -> None:
        self.shutdown()
