"""Deployment knobs for the sharded analysis fleet.

A :class:`FleetConfig` describes the whole deployment — how many shard
daemons to run, the per-shard :class:`~repro.server.daemon.ServerConfig`
knobs the fleet passes through, and the router/supervisor behavior on
top.  :meth:`FleetConfig.shard_config` derives each shard's server
config, giving every shard a disjoint session-id stride and (when an
archive root is set) its own archive directory under a shared catalog
namespace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..server.daemon import ServerConfig

__all__ = ["FleetConfig", "SESSION_STRIDE", "shard_of_session"]

#: Size of each shard's session-id block.  Shard *i* mints ids in
#: ``[i*STRIDE + 1, (i+1)*STRIDE]``, so a resume hello's session id alone
#: identifies the owning shard — the router needs no routing table and
#: resume routing survives router restarts.
SESSION_STRIDE = 1 << 20


def shard_of_session(session_id: int) -> int:
    """The shard slot that minted *session_id* (see :data:`SESSION_STRIDE`)."""
    return (session_id - 1) // SESSION_STRIDE


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for :class:`~repro.fleet.router.AnalysisFleet`.

    Attributes:
        host/port: the router's listen address (port 0 = ephemeral).
        shards: number of shard daemons to spawn.
        vnodes: virtual nodes per shard on the placement hash ring.
        max_sessions / max_queued_events / workers / batch /
        overload_timeout / drain_timeout / io_timeout / results_path:
            per-shard :class:`ServerConfig` pass-throughs (``max_sessions``
            is *per shard*; the fleet admits up to ``shards *
            max_sessions`` concurrent sessions).
        archive_dir: fleet archive root; each shard records under
            ``<archive_dir>/shard-NN`` with trace ids namespaced
            ``shNN-…`` so the per-shard catalogs share one id space.
        supervised / checkpoint_dir / checkpoint_every: crash resilience
            pass-throughs.  ``supervised`` implies per-shard checkpoint
            dirs under ``checkpoint_dir`` and a default resume window, so
            sessions survive both worker crashes and whole-shard kills.
        resume_timeout: per-shard resume window.  Defaults to 30s —
            unlike a lone daemon, a fleet exists to survive shard
            restarts, which only works when clients can re-attach.
        default_engines / strict_specs: analysis pass-throughs.
        heartbeat_interval / heartbeat_timeout: shard supervisor probe
            cadence and silence threshold (the daemon-level analogue of
            :class:`~repro.server.supervisor.SupervisorConfig`).
        max_shard_restarts: restart budget per shard slot; an exhausted
            budget marks the slot down and the router routes around it.
        restart_backoff / restart_backoff_cap: capped exponential delay
            between restarts of one slot.
        spawn_timeout: how long to wait for a spawned shard to report
            ready before declaring the boot failed.
        status_ttl: router-side cache lifetime for shard status probes
            (admission decisions tolerate this much staleness).
        resume_wait: how long the router holds a resume handshake for a
            shard slot that is mid-restart before rejecting it.
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    vnodes: int = 64
    max_sessions: int = 16
    max_queued_events: int = 1024
    workers: int = 2
    batch: int = 64
    overload_timeout: float = 2.0
    drain_timeout: float = 30.0
    io_timeout: float = 60.0
    results_path: Optional[str] = None
    archive_dir: Optional[str] = None
    supervised: bool = False
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 128
    resume_timeout: float = 30.0
    default_engines: tuple[str, ...] = ()
    strict_specs: bool = False
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 2.0
    max_shard_restarts: int = 5
    restart_backoff: float = 0.2
    restart_backoff_cap: float = 2.0
    spawn_timeout: float = 30.0
    status_ttl: float = 0.25
    resume_wait: float = 10.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.supervised and not self.checkpoint_dir:
            raise ValueError(
                "supervised fleets need a checkpoint_dir for the per-shard "
                "session journals")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat intervals must be > 0")
        if self.max_shard_restarts < 0:
            raise ValueError("max_shard_restarts must be >= 0")
        if self.spawn_timeout <= 0:
            raise ValueError("spawn_timeout must be > 0")
        if self.resume_wait < 0:
            raise ValueError("resume_wait must be >= 0")

    def shard_config(self, index: int, recover: bool = False) -> ServerConfig:
        """The :class:`ServerConfig` for shard slot *index*.

        ``recover=True`` is used on restart-after-crash: the shard rescans
        its journals and readmits every session as detached, awaiting the
        client's resume through the router.
        """
        if not 0 <= index < self.shards:
            raise ValueError(f"shard index {index} out of range "
                             f"[0, {self.shards})")
        archive_dir = None
        if self.archive_dir is not None:
            archive_dir = os.path.join(self.archive_dir, f"shard-{index:02d}")
        checkpoint_dir = None
        if self.checkpoint_dir is not None:
            checkpoint_dir = os.path.join(self.checkpoint_dir,
                                          f"shard-{index:02d}")
        return ServerConfig(
            host="127.0.0.1",     # shards are local; the router is the
            port=0,               # fleet's only public address
            max_sessions=self.max_sessions,
            max_queued_events=self.max_queued_events,
            workers=self.workers,
            batch=self.batch,
            overload_timeout=self.overload_timeout,
            drain_timeout=self.drain_timeout,
            io_timeout=self.io_timeout,
            results_path=self.results_path,
            archive_dir=archive_dir,
            archive_namespace=f"sh{index:02d}" if archive_dir else "",
            supervised=self.supervised,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=self.checkpoint_every,
            resume_timeout=self.resume_timeout,
            recover=recover and self.supervised,
            default_engines=self.default_engines,
            strict_specs=self.strict_specs,
            session_id_base=index * SESSION_STRIDE + 1,
        )
