"""Consistent hash ring for placing sessions on analysis shards.

The router places each new session on a shard by hashing a per-session
routing key onto a ring of virtual nodes.  Virtual nodes (``vnodes`` per
shard) smooth the distribution so that adding or removing one shard
moves only ~1/N of the keyspace instead of reshuffling everything.

Hashing uses sha1 over the key bytes (not Python's builtin ``hash``,
which is salted per process and would make placement non-deterministic
across router restarts).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["HashRing", "stable_hash"]


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of *key*."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent hash ring mapping string keys to member node ids.

    Nodes are arbitrary hashable identifiers (the fleet uses shard
    indices).  Each node owns ``vnodes`` points on the ring; a key maps
    to the owner of the first point at or after the key's hash,
    wrapping around.
    """

    def __init__(self, nodes: Iterable[int] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []  # sorted vnode hashes
        self._owners: Dict[int, int] = {}  # vnode hash -> node id
        self._nodes: List[int] = []
        for node in nodes:
            self.add(node)

    # -- membership ------------------------------------------------------

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def add(self, node: int) -> None:
        """Add *node* to the ring (no-op if already present)."""
        if node in self._nodes:
            return
        self._nodes.append(node)
        for replica in range(self.vnodes):
            point = stable_hash(f"node:{node}:vnode:{replica}")
            # sha1 collisions across distinct vnode labels are not a
            # realistic concern, but keep the first owner if one occurs
            # so add/remove stays symmetric.
            if point not in self._owners:
                self._owners[point] = node
                bisect.insort(self._points, point)

    def remove(self, node: int) -> None:
        """Remove *node* from the ring (no-op if absent)."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        for replica in range(self.vnodes):
            point = stable_hash(f"node:{node}:vnode:{replica}")
            if self._owners.get(point) == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    del self._points[index]

    # -- lookup ----------------------------------------------------------

    def node_for(self, key: str) -> int:
        """Return the node that owns *key*."""
        if not self._points:
            raise LookupError("hash ring is empty")
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def preference(self, key: str) -> List[int]:
        """All distinct nodes in ring order starting at *key*'s owner.

        The router walks this list when the preferred shard is full or
        down: the first entry is ``node_for(key)``, later entries are
        the spill targets, and every live node appears exactly once.
        """
        if not self._points:
            return []
        start = bisect.bisect_right(self._points, stable_hash(key))
        seen: List[int] = []
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            owner = self._owners[point]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._nodes):
                    break
        return seen

    def distribution(self, keys: Sequence[str]) -> Dict[int, int]:
        """Count how many of *keys* map to each node (diagnostics)."""
        counts: Dict[int, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
