"""The sharded analysis fleet: ``repro.server`` scaled horizontally.

One :class:`~repro.fleet.router.AnalysisFleet` runs N full analysis
daemons (*shards*) as separate OS processes behind a single router port.
The router speaks the existing session protocol, so clients attach to a
fleet exactly as they would to one daemon; sessions are placed by
consistent hashing with per-shard admission spill, shard crashes are
healed by a supervising restart-with-recovery loop, and clients ride
through them with the ordinary resume-token re-attach.  See
``docs/FLEET.md`` for the architecture and ``repro fleet serve`` for the
CLI entry point.
"""

from .config import SESSION_STRIDE, FleetConfig, shard_of_session
from .hashring import HashRing, stable_hash
from .router import AnalysisFleet, FleetRouter, merge_metric_snapshots
from .shards import ShardSupervisor

__all__ = [
    "SESSION_STRIDE",
    "FleetConfig",
    "shard_of_session",
    "HashRing",
    "stable_hash",
    "AnalysisFleet",
    "FleetRouter",
    "merge_metric_snapshots",
    "ShardSupervisor",
]
