"""Shard daemons and their supervisor.

Each shard is a full :class:`~repro.server.daemon.AnalysisServer` running
in its own **process** (``multiprocessing`` spawn context, like the
session workers of :mod:`repro.server.supervisor`): real OS-level
parallelism across cores, and a crash domain the router can kill and
restart without touching its siblings.

The :class:`ShardSupervisor` reuses the daemon-supervisor heartbeat
pattern one level up: a monitor thread watches process liveness and
round-trips a ``status`` hello against every shard on a fixed cadence; a
shard that dies — or goes silent past ``heartbeat_timeout`` — is killed
and respawned **in the same slot** with the same checkpoint directory and
``recover=True``, so the replacement daemon rescans its journals and
readmits every interrupted session as detached.  Clients then recover
through the ordinary resume-token re-attach: their reconnect dials the
router, whose session-id stride routing lands the resume on the reborn
shard.  Restarts are budgeted with capped exponential backoff; a slot
that exhausts its budget is marked down and the router routes around it.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import time
from typing import Optional

from ..obs import metrics as _metrics
from ..server.client import fetch_status
from ..server.daemon import AnalysisServer, ServerConfig
from .config import FleetConfig

_LOG = logging.getLogger("repro.fleet")

__all__ = ["ShardSupervisor"]

_MP = multiprocessing.get_context("spawn")

_C_RESTARTS = _metrics.REGISTRY.counter(
    "fleet.shard_restarts", unit="restarts",
    help="shard daemons killed-or-died and respawned by the fleet "
         "supervisor")
_G_ACTIVE_SHARDS = _metrics.REGISTRY.gauge(
    "fleet.active_shards", unit="shards",
    help="shard daemons currently up and serving (max = fleet size)")


def _shard_main(conn, config: ServerConfig,
                metrics_enabled: bool = False) -> None:
    """Entry point of a shard process: run one daemon until told to stop.

    Reports ``("ready", host, port, pid)`` through the pipe once
    listening, then waits for a ``"stop"`` message (or the parent's
    death) and drain-shuts the daemon, reporting ``("stopped",
    n_records)``.  ``metrics_enabled`` carries the parent's collection
    state across the spawn boundary so fleet status can aggregate shard
    metric snapshots.
    """
    # the router's parent process coordinates shutdown; a terminal SIGINT
    # must not kill shards before their sessions drain
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if metrics_enabled:
        _metrics.enable()
    try:
        server = AnalysisServer(config).start()
    except Exception as exc:  # noqa: BLE001 - reported to the supervisor
        try:
            conn.send(("error", repr(exc)))
        except OSError:
            pass
        return
    try:
        conn.send(("ready", server.host, server.port, os.getpid()))
    except OSError:
        server.shutdown(drain=False)
        return
    parent = multiprocessing.parent_process()
    stop = False
    while not stop:
        try:
            if conn.poll(0.2):
                msg = conn.recv()
                stop = msg == "stop"
        except (EOFError, OSError):
            break
        if parent is not None and not parent.is_alive():
            break   # orphaned: the fleet process is gone, drain and exit
    records = server.shutdown(drain=True)
    try:
        conn.send(("stopped", len(records)))
    except OSError:
        pass


class _ShardHandle:
    """Supervisor-side view of one shard slot's current incarnation."""

    def __init__(self, index: int, generation: int,
                 proc: multiprocessing.process.BaseProcess, conn,
                 host: str, port: int, pid: int):
        self.index = index
        self.generation = generation
        self.proc = proc
        self.conn = conn
        self.host = host
        self.port = port
        self.pid = pid
        self.started_at = time.time()
        self.last_ok = time.monotonic()   # last successful health signal

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()


class ShardSupervisor:
    """Spawns, health-checks and restarts the fleet's shard daemons."""

    def __init__(self, config: FleetConfig):
        self.config = config
        self._lock = threading.Lock()
        self._handles: list[Optional[_ShardHandle]] = [None] * config.shards
        self._restarts: list[int] = [0] * config.shards
        self._down_reason: list[Optional[str]] = [None] * config.shards
        self._restarts_total = 0
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        """Spawn every shard and start the health monitor."""
        for index in range(self.config.shards):
            self._handles[index] = self._spawn(index, generation=1,
                                               recover=False)
        if _metrics.ENABLED:
            _G_ACTIVE_SHARDS.set(self.config.shards)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor",
            daemon=True)
        self._monitor.start()
        return self

    def _spawn(self, index: int, generation: int,
               recover: bool) -> _ShardHandle:
        """Start one shard process and wait for its ready report."""
        server_config = self.config.shard_config(index, recover=recover)
        parent_conn, child_conn = _MP.Pipe()
        # NOT daemonic: a supervised shard spawns its own session-worker
        # processes, which daemonic processes are forbidden to do.  Orphan
        # safety comes from _shard_main's parent-death poll instead.
        proc = _MP.Process(
            target=_shard_main,
            args=(child_conn, server_config, _metrics.ENABLED),
            name=f"repro-shard-{index:02d}-g{generation}", daemon=False)
        proc.start()
        child_conn.close()
        deadline = time.monotonic() + self.config.spawn_timeout
        while True:
            remaining = deadline - time.monotonic()
            dead = not proc.is_alive() and not parent_conn.poll()
            if remaining <= 0 or dead:
                if proc.is_alive():
                    proc.kill()
                what = ("died before reporting ready" if dead else
                        f"did not report ready within "
                        f"{self.config.spawn_timeout}s")
                raise RuntimeError(
                    f"shard {index} (generation {generation}) {what}")
            if not parent_conn.poll(min(0.2, max(remaining, 0.01))):
                continue
            try:
                msg = parent_conn.recv()
            except (EOFError, OSError) as exc:
                raise RuntimeError(
                    f"shard {index} died during startup: {exc!r}") from exc
            if msg and msg[0] == "ready":
                _, host, port, pid = msg
                return _ShardHandle(index, generation, proc, parent_conn,
                                    host, port, pid)
            if msg and msg[0] == "error":
                raise RuntimeError(
                    f"shard {index} failed to start: {msg[1]}")

    def shutdown(self) -> None:
        """Stop the monitor, then drain-stop every shard."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        with self._lock:
            handles = [h for h in self._handles if h is not None]
            self._handles = [None] * self.config.shards
        for handle in handles:
            try:
                handle.conn.send("stop")
            except OSError:
                pass
        grace = self.config.drain_timeout + 10.0
        deadline = time.monotonic() + grace
        for handle in handles:
            handle.proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=5.0)
        if _metrics.ENABLED:
            _G_ACTIVE_SHARDS.set(0)

    # -- health ---------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_interval):
            for index in range(self.config.shards):
                with self._lock:
                    handle = self._handles[index]
                if handle is None or self._stop.is_set():
                    continue
                if not handle.alive:
                    self._handle_crash(index, handle,
                                       "shard process died")
                    continue
                try:
                    fetch_status(handle.host, handle.port,
                                 timeout=self.config.heartbeat_timeout)
                    handle.last_ok = time.monotonic()
                except (OSError, ValueError):
                    silent = time.monotonic() - handle.last_ok
                    if silent > self.config.heartbeat_timeout:
                        self._handle_crash(
                            index, handle,
                            f"shard unresponsive for {silent:.1f}s")

    def _handle_crash(self, index: int, handle: _ShardHandle,
                      why: str) -> None:
        """Kill a dead/hung shard and respawn the slot with recovery."""
        if handle.proc.is_alive():
            handle.proc.kill()
            handle.proc.join(timeout=5.0)
        n = self._restarts[index] + 1
        self._restarts[index] = n
        self._restarts_total += 1
        if _metrics.ENABLED:
            _C_RESTARTS.inc()
        if n > self.config.max_shard_restarts:
            reason = (f"{why}; restart budget exhausted after "
                      f"{self.config.max_shard_restarts} restarts")
            _LOG.error("shard %d down for good: %s", index, reason)
            with self._lock:
                self._handles[index] = None
                self._down_reason[index] = reason
            if _metrics.ENABLED:
                _G_ACTIVE_SHARDS.add(-1)
            return
        backoff = min(self.config.restart_backoff * (2 ** (n - 1)),
                      self.config.restart_backoff_cap)
        _LOG.warning("shard %d: %s; restart %d/%d in %.2fs", index, why,
                     n, self.config.max_shard_restarts, backoff)
        with self._lock:
            self._handles[index] = None   # route around it while it boots
        if self._stop.wait(backoff):
            return
        try:
            replacement = self._spawn(index, generation=handle.generation + 1,
                                      recover=True)
        except RuntimeError as exc:
            _LOG.error("shard %d failed to respawn: %s", index, exc)
            with self._lock:
                self._down_reason[index] = str(exc)
            if _metrics.ENABLED:
                _G_ACTIVE_SHARDS.add(-1)
            return
        with self._lock:
            self._handles[index] = replacement
            self._down_reason[index] = None

    # -- queries (router-facing) ----------------------------------------------

    def address(self, index: int) -> Optional[tuple[str, int, int]]:
        """``(host, port, generation)`` of a live shard slot, else None."""
        with self._lock:
            handle = self._handles[index]
        if handle is None:
            return None
        return handle.host, handle.port, handle.generation

    def up_slots(self) -> list[int]:
        with self._lock:
            return [i for i, h in enumerate(self._handles) if h is not None]

    @property
    def restarts_total(self) -> int:
        return self._restarts_total

    def kill_shard(self, index: int) -> Optional[int]:
        """SIGKILL a shard process (chaos testing); returns its pid."""
        with self._lock:
            handle = self._handles[index]
        if handle is None:
            return None
        pid = handle.pid
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            return None
        return pid

    def snapshot(self) -> list[dict]:
        """Per-slot health rows for the fleet status document."""
        rows = []
        for index in range(self.config.shards):
            with self._lock:
                handle = self._handles[index]
                down = self._down_reason[index]
            row = {
                "shard": index,
                "state": "up" if handle is not None else (
                    "down" if down else "restarting"),
                "restarts": self._restarts[index],
            }
            if handle is not None:
                row.update(host=handle.host, port=handle.port,
                           pid=handle.pid, generation=handle.generation,
                           uptime_s=round(time.time() - handle.started_at, 3))
            if down:
                row["error"] = down
            rows.append(row)
        return rows
