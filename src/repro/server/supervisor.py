"""Supervised sessions: per-session analysis in a restartable subprocess.

With ``ServerConfig(supervised=True)`` each admitted session runs its
``CausalDelivery → Observer → OnlinePredictor`` pipeline inside a spawned
worker process instead of on the daemon's thread pool.  The parent keeps
a *retained buffer* of every event since the last durable checkpoint, so
a crashed worker (segfault, OOM kill, SIGKILL) is detected by heartbeat
loss, restarted with exponential backoff, rebuilt from its journaled
prefix (:mod:`repro.server.recovery`) and refed the missing tail —
verdict parity with an uninterrupted run falls out of analysis
determinism.  A worker that keeps dying exhausts its restart budget and
the session fails with a reasoned ``err`` frame; the client never hangs.

Delivery discipline between parent and worker::

    parent ──("msg", index, json)──▶ inbox ──▶ worker
    parent ◀──("hb"|"recovered"|"ckpt"|"result"|"fatal")── outbox

* every event carries its 0-based delivery ``index``; the end-of-stream
  fin rides the same channel as ``("msg", index, None)``, so it survives
  restarts by living in the retained buffer like any other item;
* the worker processes an item iff ``index == analyzed`` and silently
  drops everything else — refeeding the whole retained window after a
  restart (or racing a refeed with a live enqueue) is therefore
  idempotent and order-safe;
* the worker journals an event only *after* the observer accepted it and
  reports ``("ckpt", n)`` when the journal fsyncs, which is when the
  parent prunes its retained buffer below ``n`` and forwards a ``ckpt``
  frame so the client can prune its resume buffer too.

Workers use the ``spawn`` start method on purpose: the daemon is heavily
threaded and a forked child would inherit locks mid-flight.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..core.events import Message
from ..logic.monitor import Monitor
from ..obs import metrics as _metrics
from ..observer.observer import Observer
from ..store.catalog import VERDICT_CLEAN, VERDICT_VIOLATION
from .recovery import SessionJournal
from .session import Session, SessionState

__all__ = ["SupervisorConfig", "SupervisedSession"]

_MP = multiprocessing.get_context("spawn")

_C_CRASHES = _metrics.REGISTRY.counter(
    "server.worker_crashes", unit="crashes",
    help="supervised session workers lost to process death or heartbeat "
         "timeout")
_C_RESTARTS = _metrics.REGISTRY.counter(
    "server.worker_restarts", unit="restarts",
    help="supervised session workers restarted within their budget")
_C_CHECKPOINTS = _metrics.REGISTRY.counter(
    "server.checkpoints", unit="checkpoints",
    help="durable session checkpoints acknowledged by workers")
_C_REPLAYED = _metrics.REGISTRY.counter(
    "server.worker_recovered_events", unit="messages",
    help="journaled events workers replayed after a (re)start, as "
         "reported to the supervisor")


@dataclass(frozen=True)
class SupervisorConfig:
    """Crash-detection and restart policy for supervised workers.

    Attributes:
        heartbeat_interval: how often a healthy worker reports progress.
        heartbeat_timeout: silence longer than this declares the worker
            dead even when the process object still looks alive (wedged,
            SIGSTOPped).
        max_restarts: restart budget per session; exceeding it fails the
            session with a reasoned ``err`` frame (crash-loop detection).
        restart_backoff / restart_backoff_cap: exponential backoff between
            restarts, ``backoff * 2**(n-1)`` capped.
        checkpoint_every: journal fsync cadence, in events.
    """

    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 2.0
    max_restarts: int = 3
    restart_backoff: float = 0.1
    restart_backoff_cap: float = 2.0
    checkpoint_every: int = 128

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff < 0 or self.restart_backoff_cap < 0:
            raise ValueError("restart backoffs must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


def _worker_main(journal_dir: str, inbox, outbox, checkpoint_every: int,
                 hb_interval: float) -> None:
    """Worker-process entry point: recover the journal, rebuild the
    observer, then analyze the inbox until fin.

    Runs in a fresh ``spawn`` child; everything it needs arrives through
    the journal directory and the two queues.  Analysis exceptions are
    deterministic (same input → same crash), so they are reported as
    ``fatal`` — restarting would only loop.
    """
    journal = SessionJournal.open_dir(journal_dir)
    meta = journal.meta
    monitor = Monitor(meta.spec) if meta.spec else None
    observer = Observer(
        meta.n_threads, meta.initial, spec=monitor,
        fault_tolerant=meta.fault_tolerant, thread_safe=True,
        engines=list(meta.engines) or None)
    recovered = journal.recover_and_open()
    observer.rebuild(recovered)
    clocks: list[list[int]] = [[0] * meta.n_threads
                               for _ in range(meta.n_threads)]
    for m in recovered:
        clocks[m.thread] = list(m.clock)
    stats = {"analyzed": len(recovered),
             "violations": len(observer.violations)}
    stop = threading.Event()

    def hb_loop() -> None:
        while not stop.wait(hb_interval):
            try:
                outbox.put(("hb", stats["analyzed"], stats["violations"]))
            except (OSError, ValueError):
                return

    threading.Thread(target=hb_loop, daemon=True).start()
    outbox.put(("recovered", stats["analyzed"]))

    parent = multiprocessing.parent_process()
    try:
        while True:
            try:
                item = inbox.get(timeout=0.5)
            except queue.Empty:
                if parent is not None and not parent.is_alive():
                    return
                continue
            kind = item[0]
            if kind == "stop":
                return
            if kind != "msg":
                continue
            _, index, text = item
            if index != stats["analyzed"]:
                # duplicate (refeed below our recovery point) or an
                # out-of-order early copy the refeed will resend in place
                continue
            if text is None:                       # fin sentinel
                try:
                    observer.finish()
                except Exception as exc:  # noqa: BLE001
                    outbox.put(("fatal", f"analysis error: {exc}"))
                    return
                verdicts = observer.engine_verdicts()
                counterexamples = observer.counterexamples()
                violations = sum(v.violations for v in verdicts)
                sound = observer.health.sound_everywhere
                wall = max(0.0, time.time() - meta.created_at)
                primary = verdicts[0] if verdicts else None
                journal.seal(extra={
                    "program": meta.program,
                    "spec": meta.spec,
                    "n_threads": meta.n_threads,
                    "verdict": (VERDICT_VIOLATION if violations
                                else VERDICT_CLEAN),
                    "violations": violations,
                    "counterexamples": counterexamples,
                    "final_clocks": [list(c) for c in clocks],
                    "sound": sound,
                    "wall_time_s": round(wall, 6),
                    "created_at": time.time(),
                    "engine": primary.engine if primary else "none",
                    "engine_version": primary.version if primary else "1",
                    "engines": [v.qualified for v in verdicts],
                    "engine_spec": primary.spec if primary else None,
                    "engine_specs": [v.spec for v in verdicts],
                })
                outbox.put(("result", {
                    "analyzed": stats["analyzed"],
                    "violations": violations,
                    "counterexamples": counterexamples,
                    "sound": sound,
                    "final_clocks": [list(c) for c in clocks],
                    "wall_time_s": round(wall, 6),
                    "engines": [v.to_json() for v in verdicts],
                }))
                return
            msg = Message.from_json(text)
            try:
                observer.receive(msg)
            except Exception as exc:  # noqa: BLE001
                outbox.put(("fatal", f"analysis error: {exc}"))
                return
            journal.write(msg)
            stats["analyzed"] += 1
            stats["violations"] = len(observer.violations)
            clocks[msg.thread] = list(msg.clock)
            n = journal.maybe_checkpoint(checkpoint_every)
            if n is not None:
                outbox.put(("ckpt", n))
    finally:
        stop.set()
        journal.close()


class SupervisedSession(Session):
    """A session whose analysis runs in a supervised worker process.

    The parent side keeps: the journal handle (created by the daemon at
    admission), the retained ``(index, json-or-None)`` buffer since the
    last durable checkpoint, and the latest worker-reported progress.
    The base class still provides lifecycle, attachment and archive
    plumbing; queue-and-worker-pool machinery is bypassed
    (:meth:`has_pending`/:meth:`process_batch` report nothing to do).
    """

    def __init__(self, session_id: int, hello, journal: SessionJournal,
                 supervisor: Optional[SupervisorConfig] = None,
                 max_queued: int = 1024, peer: str = "",
                 default_engines: Sequence[str] = ()):
        super().__init__(session_id, hello, max_queued=max_queued, peer=peer,
                         default_engines=default_engines)
        # the base constructor validated the spec against the initial
        # store by building an observer; the analysis lives in the worker,
        # so drop the parent copy rather than keep a dead lattice around
        self.observer = None  # type: ignore[assignment]
        self.supervised = True
        self.journal = journal
        self.sup = supervisor or SupervisorConfig()
        self._archive = None
        self._retained: deque[tuple[int, Optional[str]]] = deque()
        self._next_index = 0
        self._durable = 0
        self.restarts = 0
        self._fin_sent = False
        self._closing = False
        self._result: Optional[dict] = None
        self._child_analyzed = 0
        self._child_violations = 0
        self._proc = None
        self._inbox = None
        self._outbox = None
        # serializes writers into the current inbox so a restart's refeed
        # cannot interleave with a live enqueue (order = index order)
        self._submit_lock = threading.Lock()

    # -- worker lifecycle -----------------------------------------------------

    def start_worker(self) -> None:
        """Spawn the first worker (daemon calls this right after admit or
        recovery; also reused for every restart)."""
        self._spawn()

    def _spawn(self) -> None:
        inbox = _MP.Queue(maxsize=self._max_queued)
        outbox = _MP.Queue()
        proc = _MP.Process(
            target=_worker_main,
            args=(str(self.journal.dir), inbox, outbox,
                  self.sup.checkpoint_every, self.sup.heartbeat_interval),
            daemon=True)
        proc.start()
        with self._cond:
            self._inbox, self._outbox, self._proc = inbox, outbox, proc
        threading.Thread(target=self._monitor_loop, args=(proc, outbox),
                         daemon=True).start()
        # refeed everything not yet durable — the worker drops items below
        # its recovery point, so over-delivery is harmless
        with self._submit_lock:
            with self._cond:
                snapshot = list(self._retained)
            for item in snapshot:
                if not self._put_current(inbox, ("msg", item[0], item[1])):
                    break

    def _put_current(self, inbox, item, deadline: Optional[float] = None
                     ) -> bool:
        """Put into ``inbox`` unless it stops being the current inbox (a
        restart superseded it — the refeed owns delivery then) or the
        session ends.  Returns False only on supersession/termination/
        deadline."""
        while True:
            with self._cond:
                if self._state.terminal:
                    return False
                if self._inbox is not inbox:
                    return False
            try:
                inbox.put(item, timeout=0.2)
                return True
            except queue.Full:
                if deadline is not None and time.monotonic() >= deadline:
                    return False

    def _monitor_loop(self, proc, outbox) -> None:
        last_seen = time.monotonic()
        while True:
            with self._cond:
                if (self._state.terminal or self._closing
                        or self._proc is not proc):
                    return
            try:
                item = outbox.get(timeout=self.sup.heartbeat_interval)
            except queue.Empty:
                item = None
            except (OSError, ValueError):
                return
            with self._cond:
                if self._proc is not proc or self._closing:
                    return
            if item is None:
                stale = time.monotonic() - last_seen
                if not proc.is_alive():
                    self._handle_crash(proc, "worker process died")
                    return
                if stale > self.sup.heartbeat_timeout:
                    self._handle_crash(
                        proc, f"worker heartbeat lost for {stale:.1f}s")
                    return
                continue
            last_seen = time.monotonic()
            kind = item[0]
            if kind == "hb":
                self._child_analyzed = max(self._child_analyzed, item[1])
                self._child_violations = item[2]
            elif kind == "recovered":
                self._on_durable(item[1], frame=False)
                if _metrics.ENABLED and item[1]:
                    _C_REPLAYED.inc(item[1])
            elif kind == "ckpt":
                self._on_durable(item[1], frame=True)
                if _metrics.ENABLED:
                    _C_CHECKPOINTS.inc()
            elif kind == "fatal":
                if self.fail(item[1]):
                    self.send_frame({"t": "err", "reason": item[1]})
                return
            elif kind == "result":
                self._on_result(item[1], proc)
                return

    def _on_durable(self, n: int, frame: bool) -> None:
        with self._cond:
            self._durable = max(self._durable, n)
            self._child_analyzed = max(self._child_analyzed, n)
            while self._retained and self._retained[0][0] < self._durable:
                self._retained.popleft()
        if frame:
            self.send_frame({"t": "ckpt", "n": n})

    def _handle_crash(self, proc, reason: str) -> None:
        if _metrics.ENABLED:
            _C_CRASHES.inc()
        self._kill(proc)
        self.restarts += 1
        if self.restarts > self.sup.max_restarts:
            why = (f"worker crash loop: {reason}; restart budget "
                   f"({self.sup.max_restarts}) exhausted")
            if self.fail(why):
                self.send_frame({"t": "err", "reason": why})
            return
        backoff = min(
            self.sup.restart_backoff * (2 ** (self.restarts - 1)),
            self.sup.restart_backoff_cap)
        time.sleep(backoff)
        with self._cond:
            if self._state.terminal or self._closing:
                return
        if _metrics.ENABLED:
            _C_RESTARTS.inc()
        self._spawn()

    @staticmethod
    def _kill(proc) -> None:
        try:
            proc.kill()
            proc.join(timeout=2.0)
        except (OSError, ValueError, AttributeError):
            pass

    def _on_result(self, result: dict, proc) -> None:
        with self._cond:
            if self._state.terminal:
                return
            self._result = result
            self._child_analyzed = result["analyzed"]
            self._child_violations = result["violations"]
            self.final_clocks = [tuple(c) for c in result["final_clocks"]]
        archive = self._archive
        if archive is not None:
            try:
                entry = archive.adopt_sealed(self.journal.events_path)
                self.archive_id = entry.id
            except Exception:  # noqa: BLE001 - archive loss ≠ analysis loss
                self.archive_id = None
        with self._cond:
            if not self._state.terminal:
                self._retained.clear()
                self._enter_terminal(SessionState.FINISHED)
        self.journal.delete()
        self._kill(proc)

    def restore_progress(self, durable: int) -> None:
        """Daemon-restart recovery: align parent counters with the
        journal's durable prefix, so client sequence numbers (absolute,
        0-based) line up with worker delivery indices after the resume."""
        with self._cond:
            self.received = durable
            self._next_index = durable
            self._durable = durable
            self._child_analyzed = durable

    # -- overridden session surface -------------------------------------------

    def attach_archive(self, archive) -> None:
        # the worker's sealed journal is adopted wholesale at finish; no
        # parent-side PendingTrace double-writes the stream
        self._archive = archive
        self.archive_id = None

    def enqueue(self, msg: Any, timeout: float) -> bool:
        text = msg.to_json()
        with self._cond:
            if self._state is not SessionState.STREAMING:
                return False
            index = self._next_index
            self._next_index += 1
            self._retained.append((index, text))
            self.received += 1
            backlog = self.received - self._durable
            if backlog > self.queue_high_water:
                self.queue_high_water = backlog
            inbox = self._inbox
        if inbox is None:        # worker not spawned yet: refeed delivers
            return True
        with self._submit_lock:
            ok = self._put_current(inbox, ("msg", index, text),
                                   deadline=time.monotonic() + timeout)
        if ok:
            return True
        with self._cond:
            if self._state.terminal:
                return False
            if self._inbox is not inbox:
                # a restart superseded the inbox mid-put; the refeed owns
                # delivery of the retained buffer (this item included)
                return True
        # the worker is alive but its queue stayed full past the timeout:
        # that is genuine overload, let the daemon declare it
        return False

    def begin_drain(self) -> None:
        with self._cond:
            if self._state is not SessionState.STREAMING:
                return
            self._state = SessionState.DRAINING
            index = self._next_index
            self._next_index += 1
            self._retained.append((index, None))
            self._fin_sent = True
            inbox = self._inbox
            self._cond.notify_all()
        if inbox is None:
            return
        with self._submit_lock:
            # bounded wait: if the fin cannot be delivered the session's
            # drain timeout turns it into a reasoned failure, never a hang
            # (a later restart refeeds the fin from the retained buffer)
            self._put_current(inbox, ("msg", index, None),
                              deadline=time.monotonic() + 5.0)

    def fail(self, reason: str) -> bool:
        did = super().fail(reason)
        if did:
            self._teardown_worker()
            if reason == "server shutdown":
                # keep the journal: `repro serve --recover` readmits the
                # session and a reconnecting client resumes it
                self.journal.close()
            else:
                self.journal.delete()
        return did

    def _teardown_worker(self) -> None:
        with self._cond:
            self._closing = True
            proc = self._proc
        if proc is not None:
            self._kill(proc)

    def delivered_for_resume(self) -> int:
        # everything acked is either journaled or in the retained buffer,
        # so the client never needs to resend below `received`
        return self.received

    def has_pending(self) -> bool:
        return False

    def process_batch(self, max_batch: int = 64) -> bool:
        return False

    @property
    def pending(self) -> int:
        return max(0, self.received - self._child_analyzed)

    def seal(self) -> dict:
        if self._sealed is None:
            self._sealed = self.record()
            self._abort_archive()
        return self._sealed

    def record(self) -> dict:
        if self._sealed is not None:
            return dict(self._sealed)
        elapsed = (self._elapsed if self._elapsed is not None
                   else time.monotonic() - self._t0)
        result = self._result or {}
        return {
            "session": self.id,
            "program": self.program,
            "peer": self.peer,
            "state": self._state.value,
            "spec": self.spec,
            "n_threads": self.n_threads,
            "received": self.received,
            "analyzed": self._child_analyzed,
            "pending": self.pending,
            "queue_high_water": self.queue_high_water,
            "violations": self._child_violations,
            "counterexamples": list(result.get("counterexamples", [])),
            "sound": bool(result.get("sound", True)),
            "final_clocks": [list(c) for c in self.final_clocks],
            "engines": list(result.get("engines", [])),
            "epoch": self.epoch,
            "attached": self.attached,
            "supervised": True,
            "restarts": self.restarts,
            "archive": self.archive_id,
            "error": self.error,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": round(elapsed, 6),
        }
