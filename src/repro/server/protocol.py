"""Wire protocol of the multi-session analysis server.

Everything rides the reliable transport's newline-delimited JSON framing
(:mod:`repro.observer.reliable`): data frames (``msg``/``ack``/``hb``/
``fin``/``finack``) are unchanged, and this module adds the *session*
frames exchanged around them:

============  =========  ====================================================
frame         direction  meaning
============  =========  ====================================================
``hello``     C → S      first line on every connection: protocol version,
                         mode (``attach``, ``resume`` or ``status``) and,
                         for attaches, the session parameters (program
                         name, thread count, initial shared store, optional
                         spec); a resume instead names the session id, its
                         resume token and the client's last known epoch
``helloack``  S → C      attach admitted; carries the assigned session id,
                         the session *epoch* (incremented on every
                         (re)attach) and the *resume token* the client must
                         present to reclaim the session after a drop.  On a
                         resume it additionally carries ``delivered`` — the
                         server's delivered count, i.e. the sequence number
                         the client must resend from
``reject``    S → C      attach refused (capacity, shutdown, bad hello,
                         unknown session / bad token on resume); carries a
                         human-readable ``reason`` plus a structured
                         ``why`` category (``capacity``, ``draining``,
                         ``strict-spec``, ``bad-hello``, ``resume``,
                         ``setup``) that the fleet router uses to decide
                         between spilling to another shard and forwarding
                         the refusal — overload is an explicit answer,
                         never a hang
``err``       S → C      mid-stream failure (queue overload, analysis
                         error, worker crash loop); the client's reliable
                         sender surfaces the reason as a
                         :class:`ReliableTransportError`
``ckpt``      S → C      durability checkpoint: ``n`` events of this
                         session are journaled to disk; the client may
                         prune its resume buffer below ``n`` (the server
                         will never ask for them again, even after a daemon
                         restart)
``result``    S → C      the session's final verdicts (including the final
                         per-thread vector clocks), sent after the server
                         finishes the session's analysis and *before* the
                         ``finack`` that completes the close handshake
``status``    S → C      reply to a ``hello`` in status mode: one JSON line
                         with server health and every session record
============  =========  ====================================================

The handshake is deliberately synchronous — one request line, one reply
line — so the client can complete it before handing the socket to
:class:`~repro.observer.reliable.ReliableSender`, whose ack-reader thread
then owns the receive direction.

Resume semantics: the session *epoch* counts connections (1 on first
attach, +1 per successful resume), so a stale reader thread or a stale
client can always be told apart from the current one; the *token* is a
random capability string minted at admission — presenting it is what
authorizes a reconnecting client to reclaim the session.  Replayed
``msg`` frames below the server's ``delivered`` count are re-acked as
duplicates by the frame decoder, which makes resending the whole unacked
window idempotent.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Hello",
    "encode_frame",
    "read_frame_line",
]

#: Bumped on incompatible changes to the session frames; a server rejects
#: hellos from a different major version with an explicit reason.
PROTOCOL_VERSION = 1

#: Upper bound on one handshake line — a hello carries a program name and
#: an initial store, not a trace, so anything larger is a framing error.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A frame violates the session protocol (bad JSON, wrong shape,
    incompatible version)."""


def encode_frame(obj: dict) -> bytes:
    """One wire line: compact JSON + newline."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def read_frame_line(sock: socket.socket,
                    max_bytes: int = MAX_FRAME_BYTES) -> dict:
    """Read exactly one newline-terminated JSON frame from ``sock``.

    Byte-at-a-time on purpose: the handshake is one line each way and must
    not read ahead into the reliable stream that follows it (a buffered
    reader would steal the first data frames).
    """
    buf = bytearray()
    while True:
        b = sock.recv(1)
        if not b:
            raise ProtocolError(
                "connection closed mid-handshake "
                f"(after {len(buf)} bytes, no newline)")
        if b == b"\n":
            break
        buf += b
        if len(buf) > max_bytes:
            raise ProtocolError(f"handshake line exceeds {max_bytes} bytes")
    try:
        d = json.loads(buf.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"handshake line is not valid JSON: {exc}") from exc
    if not isinstance(d, dict):
        raise ProtocolError(f"handshake frame must be an object, got {d!r}")
    return d


@dataclass(frozen=True)
class Hello:
    """The client's opening frame, parsed and validated.

    ``mode="attach"`` opens an analysis session; ``mode="status"`` asks for
    one status line and closes.  ``initial`` must cover every variable the
    spec mentions (checked server-side when the session's observer is
    built, so a bad spec is a *reject with reason*, not a reader-thread
    crash).
    """

    mode: str
    program: str = "unknown"
    n_threads: int = 0
    initial: dict[str, Any] = field(default_factory=dict)
    spec: Optional[str] = None
    fault_tolerant: bool = False
    #: Engine selection strings (see :mod:`repro.engines`); empty means
    #: the server's default pipeline (a single LTL engine under ``spec``).
    engines: tuple[str, ...] = ()
    version: int = PROTOCOL_VERSION
    #: Resume-mode fields: the session being reclaimed, its capability
    #: token, and the epoch the client last saw (staleness check).
    session: int = 0
    token: str = ""
    epoch: int = 0

    MODES = ("attach", "resume", "status")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise ProtocolError(
                f"unknown hello mode {self.mode!r} (expected one of "
                f"{list(self.MODES)})")
        if self.mode == "attach" and self.n_threads < 1:
            raise ProtocolError(
                f"attach hello needs n_threads >= 1, got {self.n_threads}")
        if self.mode == "resume":
            if self.session < 1:
                raise ProtocolError(
                    f"resume hello needs a session id >= 1, "
                    f"got {self.session}")
            if not self.token:
                raise ProtocolError("resume hello needs a resume token")
            if self.epoch < 1:
                raise ProtocolError(
                    f"resume hello needs an epoch >= 1, got {self.epoch}")

    def to_frame(self) -> dict:
        d = {"t": "hello", "v": self.version, "mode": self.mode}
        if self.mode == "attach":
            d.update(program=self.program, n_threads=self.n_threads,
                     initial=dict(self.initial), spec=self.spec,
                     fault_tolerant=self.fault_tolerant)
            if self.engines:
                d["engines"] = list(self.engines)
        elif self.mode == "resume":
            d.update(session=self.session, token=self.token,
                     epoch=self.epoch)
        return d

    @classmethod
    def from_frame(cls, d: dict) -> "Hello":
        if d.get("t") != "hello":
            raise ProtocolError(
                f"expected a hello frame, got t={d.get('t')!r}")
        version = d.get("v")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {version!r} not supported "
                f"(this server speaks version {PROTOCOL_VERSION})")
        mode = d.get("mode")
        if not isinstance(mode, str):
            raise ProtocolError("hello lacks a string 'mode' field")
        if mode == "status":
            return cls(mode="status", version=version)
        if mode == "resume":
            session = d.get("session")
            if not isinstance(session, int):
                raise ProtocolError("resume hello needs an integer session")
            token = d.get("token")
            if not isinstance(token, str):
                raise ProtocolError("resume hello needs a string token")
            epoch = d.get("epoch")
            if not isinstance(epoch, int):
                raise ProtocolError("resume hello needs an integer epoch")
            return cls(mode="resume", session=session, token=token,
                       epoch=epoch, version=version)
        n_threads = d.get("n_threads")
        if not isinstance(n_threads, int):
            raise ProtocolError("attach hello needs an integer n_threads")
        initial = d.get("initial")
        if not isinstance(initial, dict):
            raise ProtocolError("attach hello needs an 'initial' object")
        spec = d.get("spec")
        if spec is not None and not isinstance(spec, str):
            raise ProtocolError("hello 'spec' must be a string or null")
        program = d.get("program", "unknown")
        if not isinstance(program, str):
            raise ProtocolError("hello 'program' must be a string")
        engines = d.get("engines", [])
        if not (isinstance(engines, list)
                and all(isinstance(e, str) and e for e in engines)):
            raise ProtocolError(
                "hello 'engines' must be a list of non-empty strings")
        return cls(
            mode=mode,
            program=program,
            n_threads=n_threads,
            initial=initial,
            spec=spec,
            fault_tolerant=bool(d.get("fault_tolerant", False)),
            engines=tuple(engines),
            version=version,
        )
