"""Durable session journals: the checkpoint/recovery layer of the server.

Every admitted session under ``ServerConfig(checkpoint_dir=...)`` owns one
journal directory::

    <checkpoint_dir>/session-<token>/
        meta.json     session identity: id, token, epoch, program,
                      n_threads, initial store, spec, fault tolerance
        events.rpt    v2 trace (repro.store.format) of the delivered
                      prefix, checkpointed incrementally

The journal is written *behind* the analysis (an event is journaled only
after the observer accepted it), so on recovery the journaled prefix is
exactly a replayable prefix of the analysis: because the whole pipeline is
a deterministic function of the message sequence, feeding the prefix back
through :meth:`~repro.observer.observer.Observer.rebuild` reconstructs
byte-identical analyzer state, and the session resumes from the next
delivery index with verdict parity guaranteed.

Crash windows are handled at two granularities:

* a torn tail inside ``events.rpt`` (writer killed mid-frame) is dropped
  by :func:`repro.store.read_trace_prefix`'s whole-frame atomicity — the
  journal silently rolls back to the last durable checkpoint, and the
  supervisor refeeds everything past it from the retained parent buffer;
* a missing/corrupt ``meta.json`` makes the whole journal unrecoverable —
  :func:`scan_journals` reports it as skipped rather than crashing daemon
  recovery.

The journal uses the trace-archive file format on purpose: a finished
session *seals* its journal with the catalog footer extras and the daemon
promotes the file into the archive with ``TraceArchive.adopt_sealed`` —
no rewrite, no second copy of the trace.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from ..core.events import Message
from ..logic.monitor import Monitor
from ..obs import metrics as _metrics
from ..observer.observer import Observer
from ..observer.trace import TraceFormatError
from ..store.format import SegmentWriter, read_trace_prefix

__all__ = ["JournalError", "SessionJournal", "scan_journals",
           "build_observer"]

META_NAME = "meta.json"
EVENTS_NAME = "events.rpt"
META_VERSION = 1

_C_REPLAYED = _metrics.REGISTRY.counter(
    "server.recovery_replayed_events", unit="messages",
    help="journaled events replayed into rebuilt observers after a worker "
         "or daemon restart")


class JournalError(RuntimeError):
    """A session journal is missing, malformed, or unrecoverable."""


def _atomic_write_json(path: Path, doc: Mapping[str, Any]) -> None:
    tmp = path.with_suffix(".tmp")
    data = json.dumps(doc, indent=2, sort_keys=True).encode("utf-8")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


@dataclass
class JournalMeta:
    """Identity of a journaled session — everything needed to rebuild its
    observer and readmit it after a daemon restart."""

    session: int
    token: str
    epoch: int
    program: str
    n_threads: int
    initial: dict[str, Any]
    spec: Optional[str]
    fault_tolerant: bool
    created_at: float
    version: int = META_VERSION
    #: Engine selection strings (see :mod:`repro.engines`); empty means
    #: the classic single-LTL pipeline implied by ``spec``.
    engines: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "session": self.session,
            "token": self.token,
            "epoch": self.epoch,
            "program": self.program,
            "n_threads": self.n_threads,
            "initial": dict(self.initial),
            "spec": self.spec,
            "fault_tolerant": self.fault_tolerant,
            "created_at": self.created_at,
            "engines": list(self.engines),
        }

    @classmethod
    def from_json(cls, d: Mapping[str, Any]) -> "JournalMeta":
        try:
            if d["version"] != META_VERSION:
                raise JournalError(
                    f"unsupported journal meta version {d['version']!r}")
            return cls(
                session=int(d["session"]),
                token=str(d["token"]),
                epoch=int(d["epoch"]),
                program=str(d["program"]),
                n_threads=int(d["n_threads"]),
                initial=dict(d["initial"]),
                spec=d["spec"],
                fault_tolerant=bool(d["fault_tolerant"]),
                created_at=float(d["created_at"]),
                engines=tuple(d.get("engines") or ()),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed journal meta: {exc!r}") from exc


class SessionJournal:
    """One session's durable checkpoint directory.

    The parent (daemon) side *creates* journals and reads their metadata;
    the worker side *opens* them for writing via :meth:`recover_and_open`,
    which atomically rolls a possibly-torn ``events.rpt`` back to its last
    durable prefix and returns the recovered messages for observer
    rebuild.
    """

    def __init__(self, directory: Path, meta: JournalMeta):
        self.dir = Path(directory)
        self.meta = meta
        self._writer: Optional[SegmentWriter] = None
        self._since_checkpoint = 0

    # -- parent side ----------------------------------------------------------

    @classmethod
    def create(cls, root: str | Path, *, session: int, token: str,
               program: str, n_threads: int,
               initial: Mapping[str, Any], spec: Optional[str],
               fault_tolerant: bool, epoch: int = 1,
               engines: Sequence[str] = ()) -> "SessionJournal":
        directory = Path(root) / f"session-{token}"
        directory.mkdir(parents=True, exist_ok=False)
        meta = JournalMeta(
            session=session, token=token, epoch=epoch, program=program,
            n_threads=n_threads, initial=dict(initial), spec=spec,
            fault_tolerant=fault_tolerant, created_at=time.time(),
            engines=tuple(engines))
        _atomic_write_json(directory / META_NAME, meta.to_json())
        return cls(directory, meta)

    @classmethod
    def open_dir(cls, directory: str | Path) -> "SessionJournal":
        directory = Path(directory)
        meta_path = directory / META_NAME
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(
                f"cannot read journal meta {meta_path}: {exc!r}") from exc
        if not isinstance(doc, dict):
            raise JournalError(f"journal meta {meta_path} is not an object")
        return cls(directory, JournalMeta.from_json(doc))

    def bump_epoch(self, epoch: int) -> None:
        """Persist a resume's epoch bump so a daemon restart readmits the
        session at the epoch the client last saw."""
        self.meta.epoch = epoch
        _atomic_write_json(self.dir / META_NAME, self.meta.to_json())

    @property
    def events_path(self) -> Path:
        return self.dir / EVENTS_NAME

    @property
    def count(self) -> int:
        """Events journaled so far (only meaningful while open)."""
        w = self._writer
        return w.count if w is not None else 0

    # -- worker side ----------------------------------------------------------

    def recover_and_open(self) -> list[Message]:
        """Open the journal for writing, first salvaging any prior prefix.

        Reads the durable prefix of ``events.rpt`` (tolerating a torn
        tail), rewrites it into a fresh file, atomically replaces the old
        one, and keeps the writer open positioned after the prefix.
        Returns the recovered messages, in delivery order, for
        :meth:`Observer.rebuild`.
        """
        if self._writer is not None:
            raise RuntimeError("journal already open")
        recovered: list[Message] = []
        path = self.events_path
        if path.exists():
            try:
                prefix = read_trace_prefix(path)
                recovered = list(prefix.messages)
            except TraceFormatError:
                # even the header is gone: the journal starts over and the
                # supervisor refeeds the whole retained window
                recovered = []
        new_path = self.dir / (EVENTS_NAME + ".new")
        writer = SegmentWriter(
            new_path, self.meta.n_threads, self.meta.initial,
            program=self.meta.program)
        try:
            for msg in recovered:
                writer.write(msg)
            writer.checkpoint(fsync=True)
            os.replace(new_path, path)
        except BaseException:
            writer.abort()
            raise
        writer.path = path          # the open handle now lives under events.rpt
        self._writer = writer
        self._since_checkpoint = 0
        if recovered and _metrics.ENABLED:
            _C_REPLAYED.inc(len(recovered))
        return recovered

    def write(self, msg: Message) -> None:
        if self._writer is None:
            raise RuntimeError("journal is not open")
        self._writer.write(msg)
        self._since_checkpoint += 1

    def maybe_checkpoint(self, every: int) -> Optional[int]:
        """Checkpoint when ``every`` events accumulated since the last one.
        Returns the durable event count when a checkpoint happened."""
        if self._since_checkpoint < max(1, every):
            return None
        return self.checkpoint()

    def checkpoint(self, fsync: bool = True) -> int:
        if self._writer is None:
            raise RuntimeError("journal is not open")
        count = self._writer.checkpoint(fsync=fsync)
        self._since_checkpoint = 0
        return count

    def seal(self, extra: Optional[Mapping[str, Any]] = None) -> Path:
        """Close the trace with its footer (and catalog ``extra``), making
        it adoptable by ``TraceArchive.adopt_sealed``."""
        if self._writer is None:
            raise RuntimeError("journal is not open")
        writer, self._writer = self._writer, None
        writer.close(extra=extra)
        return self.events_path

    def close(self) -> None:
        """Close without sealing (no footer): the journal stays a
        recoverable prefix."""
        writer, self._writer = self._writer, None
        if writer is not None:
            try:
                writer.checkpoint(fsync=True)
            except (OSError, RuntimeError):
                pass
            writer._abandon()

    def delete(self) -> None:
        """Remove the journal directory — the session is terminal and its
        trace is either promoted into the archive or abandoned."""
        self.close()
        for name in (EVENTS_NAME, EVENTS_NAME + ".new", META_NAME,
                     "meta.tmp"):
            try:
                (self.dir / name).unlink()
            except OSError:
                pass
        try:
            self.dir.rmdir()
        except OSError:
            pass


def scan_journals(root: str | Path) -> tuple[list[SessionJournal],
                                             list[tuple[str, str]]]:
    """Find every recoverable journal under ``root``.

    Returns ``(journals, skipped)`` where ``skipped`` pairs a directory
    name with the reason it was passed over — daemon recovery reports them
    instead of refusing to start.
    """
    root = Path(root)
    journals: list[SessionJournal] = []
    skipped: list[tuple[str, str]] = []
    if not root.is_dir():
        return journals, skipped
    for directory in sorted(root.iterdir()):
        if not directory.is_dir() or not directory.name.startswith("session-"):
            continue
        try:
            journals.append(SessionJournal.open_dir(directory))
        except JournalError as exc:
            skipped.append((directory.name, str(exc)))
    journals.sort(key=lambda j: j.meta.session)
    return journals, skipped


def build_observer(meta: JournalMeta) -> Observer:
    """A fresh observer matching a journaled session's parameters —
    identical construction to the live path, so replay parity holds."""
    return Observer(
        meta.n_threads,
        meta.initial,
        spec=Monitor(meta.spec) if meta.spec else None,
        fault_tolerant=meta.fault_tolerant,
        thread_safe=True,
        engines=list(meta.engines) or None,
    )
