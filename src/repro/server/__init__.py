"""Multi-session analysis server: one daemon observing many programs.

The paper's architecture (Fig. 1) pairs each instrumented program with its
own observer process.  This package generalises that to a long-running
daemon — ``repro serve`` — that accepts many concurrent client
connections over the reliable transport, assigns each a *session* with its
own :class:`~repro.observer.observer.Observer` and
:class:`~repro.analysis.predictive.OnlinePredictor`, and analyses all of
them on a bounded worker pool.  Sessions get explicit lifecycle states,
admission control (attaches past capacity are rejected with a reason, not
stalled), backpressure (bounded per-session ingest queues that withhold
acks when full), graceful drain on shutdown, and a line-JSON status
endpoint surfaced as ``repro sessions``.

Client side: :func:`attach` opens a session and returns an
:class:`AttachedSession` whose ``send`` slots in as Algorithm A's message
sink; ``close`` completes the stream and returns the server's
:class:`SessionVerdict`.

Crash resilience (opt-in, ``docs/SERVER.md`` § Failure model & recovery):
``ServerConfig(supervised=True, checkpoint_dir=...)`` runs each session's
analysis in a supervised, journaled worker process
(:mod:`repro.server.supervisor`, :mod:`repro.server.recovery`);
``resume_timeout > 0`` plus a client-side :class:`ReconnectPolicy` lets a
dropped connection re-attach by resume token and replay its unacked
window; ``recover=True`` readmits journaled sessions after a daemon
restart.
"""

from .client import (
    AttachedSession,
    ReconnectPolicy,
    ResultTimeout,
    ServerRejected,
    SessionVerdict,
    attach,
    fetch_status,
)
from .daemon import AnalysisServer, ServerConfig
from .protocol import PROTOCOL_VERSION, Hello, ProtocolError
from .recovery import JournalError, SessionJournal, scan_journals
from .session import Session, SessionState
from .supervisor import SupervisedSession, SupervisorConfig

__all__ = [
    "AnalysisServer",
    "ServerConfig",
    "Session",
    "SessionState",
    "SupervisedSession",
    "SupervisorConfig",
    "SessionJournal",
    "JournalError",
    "scan_journals",
    "Hello",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "AttachedSession",
    "SessionVerdict",
    "ServerRejected",
    "ResultTimeout",
    "ReconnectPolicy",
    "attach",
    "fetch_status",
]
