"""The multi-session analysis server (``repro serve``).

One long-lived daemon observes many instrumented programs at once.  Each
client connection performs a one-line handshake
(:mod:`repro.server.protocol`), gets admitted as a session or rejected
with a reason, and then streams events over the exact
:class:`~repro.observer.reliable.ReliableSender` framing of the
two-process pipeline.  The moving parts:

* an **accept loop** hands each connection to a dedicated reader thread —
  ingestion (frame decode, CRC, dedup, acks) stays on the connection's own
  thread and never blocks another session;
* a bounded **worker pool** runs the lattice/predictive analysis off the
  ingestion hot path; a session is serviced by at most one worker at a
  time, so per-session event order is preserved without per-event locks;
* a **session registry** tracks lifecycle (handshake → streaming →
  draining → finished/failed) and keeps a bounded history of final
  records for ``repro sessions``;
* **admission control and backpressure**: at ``max_sessions`` the next
  attach is rejected with an explicit reason; a session whose queue stays
  full past ``overload_timeout`` is failed with an ``err`` frame instead
  of silently stalling the wire;
* **graceful shutdown**: stop accepting, give live sessions
  ``drain_timeout`` to finish, flush every record (optionally to a JSONL
  results file), then take the worker pool down.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .. import __version__ as _repro_version
from ..obs import metrics as _metrics
from ..observer.reliable import FrameDecoder, _frame
from .protocol import Hello, ProtocolError, encode_frame
from .session import Session, SessionState

__all__ = ["ServerConfig", "AnalysisServer"]

_C_STARTED = _metrics.REGISTRY.counter(
    "server.sessions_started", unit="sessions",
    help="client attaches admitted (handshake completed)")
_C_FINISHED = _metrics.REGISTRY.counter(
    "server.sessions_finished", unit="sessions",
    help="sessions that drained and finished their analysis cleanly")
_C_FAILED = _metrics.REGISTRY.counter(
    "server.sessions_failed", unit="sessions",
    help="sessions that ended in failure (overload, lost connection, "
         "analysis error, shutdown timeout)")
_C_REJECTED = _metrics.REGISTRY.counter(
    "server.sessions_rejected", unit="sessions",
    help="attaches refused at the handshake (capacity, shutdown, bad hello)")
_C_INGESTED = _metrics.REGISTRY.counter(
    "server.events_ingested", unit="messages",
    help="messages accepted off the wire across all sessions")
_G_ACTIVE = _metrics.REGISTRY.gauge(
    "server.active_sessions", unit="sessions",
    help="sessions currently attached (max = concurrency high-water mark)")
_H_SESSION_EVENTS = _metrics.REGISTRY.histogram(
    "server.session_events", unit="messages",
    help="per-session event count, observed when the session ends")


@dataclass(frozen=True)
class ServerConfig:
    """Deployment knobs for :class:`AnalysisServer`.

    Attributes:
        host/port: listen address (port 0 = ephemeral, read back from
            :attr:`AnalysisServer.port`).
        max_sessions: admission bound on *concurrently attached* sessions;
            the next attach is rejected with an explicit reason.
        max_queued_events: per-session bound on events parked between the
            reader thread and the worker pool.
        workers: analysis worker threads (0 is legal and means nothing is
            ever analyzed — useful only for backpressure tests).
        batch: max events one worker services per scheduling turn; small
            enough to interleave sessions fairly, large enough to amortize
            the scheduling overhead.
        overload_timeout: how long an ingest may block on a full queue
            before the session is failed with an overload ``err`` frame.
        drain_timeout: grace period for a draining session (end-of-stream
            analysis) and for live sessions during shutdown.
        io_timeout: per-connection socket timeout; a client silent for
            this long (no data, no heartbeat) fails its session.
        max_records: finished/failed session records kept for status
            queries (oldest evicted first).
        results_path: when set, every terminal session record is appended
            to this JSONL file as it is sealed.
        archive_dir: when set, a :class:`~repro.store.archive.TraceArchive`
            rooted there records every session: analyzed messages stream
            into a v2 trace file and the catalog entry (verdict, final
            clocks) is published when the session finishes.  Failed
            sessions leave nothing behind.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 16
    max_queued_events: int = 1024
    workers: int = 2
    batch: int = 64
    overload_timeout: float = 2.0
    drain_timeout: float = 30.0
    io_timeout: float = 60.0
    max_records: int = 256
    results_path: Optional[str] = None
    archive_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_queued_events < 1:
            raise ValueError("max_queued_events must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")


class _Overload(Exception):
    """Internal: a session's ingest queue stayed full past the timeout."""


class AnalysisServer:
    """The daemon: accept loop + reader threads + analysis worker pool.

    Args:
        config: see :class:`ServerConfig`.
        on_session_end: optional callback fired with each terminal session
            record (the ``repro serve`` CLI prints these live).
    """

    def __init__(self, config: ServerConfig = ServerConfig(),
                 on_session_end: Optional[Callable[[dict], None]] = None):
        self.config = config
        self._on_session_end = on_session_end
        self.archive = None
        if config.archive_dir is not None:
            from ..store.archive import TraceArchive

            self.archive = TraceArchive(config.archive_dir)
        self._server: Optional[socket.socket] = None
        self.host = config.host
        self.port: Optional[int] = None
        self._lock = threading.Lock()
        self._sessions: dict[int, Session] = {}      # live (non-terminal)
        self._records: list[dict] = []               # sealed, bounded
        self._next_sid = 1
        self._rejected = 0
        self._draining = False
        self._started_at = time.time()
        self._tasks: "queue.Queue[Optional[Session]]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._reader_threads: list[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._idle = threading.Condition(self._lock)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "AnalysisServer":
        """Bind, start the accept loop and the worker pool."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = socket.create_server((self.config.host,
                                             self.config.port))
        self.host, self.port = self._server.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True)
        self._accept_thread.start()
        for i in range(self.config.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"repro-server-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> list[dict]:
        """Stop accepting, drain live sessions, flush records, stop workers.

        With ``drain`` (the default), live sessions get up to ``timeout``
        (default: the config's ``drain_timeout``) to reach a terminal
        state; stragglers are failed with reason ``server shutdown``.
        Returns every session record the server holds, oldest first.
        """
        timeout = self.config.drain_timeout if timeout is None else timeout
        with self._lock:
            already = self._draining
            self._draining = True
        if not already and self._server is not None:
            self._server.close()   # accept loop exits on the closed socket
        if drain:
            deadline = time.monotonic() + timeout
            with self._lock:
                live = list(self._sessions.values())
            for s in live:
                s.done.wait(max(0.0, deadline - time.monotonic()))
        with self._lock:
            live = list(self._sessions.values())
        for s in live:
            if s.fail("server shutdown"):
                # tell the client why, then force its reader loop to end
                conn = getattr(s, "conn", None)
                if conn is not None:
                    try:
                        conn.sendall(encode_frame(
                            {"t": "err", "reason": "server shutdown"}))
                    except OSError:
                        pass
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
        # stop the pool: one poison pill per worker
        for _ in self._threads:
            self._tasks.put(None)
        for t in self._threads:
            t.join(timeout=5.0)
        for t in list(self._reader_threads):
            t.join(timeout=5.0)
        announce = []
        with self._lock:
            for s in list(self._sessions.values()):
                announce.append(self._seal_locked(s))
            records = list(self._records)
        for record in announce:
            self._announce(record)
        return records

    def __enter__(self) -> "AnalysisServer":
        return self.start() if self._server is None else self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- status ---------------------------------------------------------------

    def status(self) -> dict:
        """JSON-able health report: server gauges + every session record."""
        with self._lock:
            live = [s.record() for s in self._sessions.values()]
            sealed = list(self._records)
            active = len(self._sessions)
            rejected = self._rejected
        finished = sum(r["state"] == SessionState.FINISHED.value
                       for r in sealed)
        failed = sum(r["state"] == SessionState.FAILED.value for r in sealed)
        doc = {
            "t": "status",
            "server": {
                "version": _repro_version,
                "host": self.host,
                "port": self.port,
                "uptime_s": round(time.time() - self._started_at, 3),
                "active_sessions": active,
                "max_sessions": self.config.max_sessions,
                "workers": self.config.workers,
                "draining": self._draining,
                "finished": finished,
                "failed": failed,
                "rejected": rejected,
            },
            "sessions": sorted(sealed + live, key=lambda r: r["session"]),
        }
        if _metrics.ENABLED:
            doc["metrics"] = _metrics.REGISTRY.snapshot()
        return doc

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until no live session remains (for tests/benchmarks)."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._sessions:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    # -- accept / reader side -------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while True:
            try:
                conn, addr = self._server.accept()
            except OSError:
                return   # closed by shutdown
            t = threading.Thread(
                target=self._serve_connection, args=(conn, addr),
                name=f"repro-server-conn-{addr[1]}", daemon=True)
            self._reader_threads.append(t)
            t.start()

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        peer = f"{addr[0]}:{addr[1]}"
        session: Optional[Session] = None
        try:
            conn.settimeout(self.config.io_timeout)
            with conn, conn.makefile("r", encoding="utf-8") as reader:
                line = reader.readline()
                try:
                    hello = Hello.from_frame(self._parse_hello_line(line))
                except ProtocolError as exc:
                    self._reject(conn, str(exc))
                    return
                if hello.mode == "status":
                    conn.sendall(encode_frame(self.status()))
                    return
                session = self._admit(conn, hello, peer)
                if session is None:
                    return
                self._stream(conn, reader, session)
        except (OSError, ValueError) as exc:
            if session is not None:
                session.fail(f"connection lost: {exc!r}")
        finally:
            if session is not None:
                self._retire(session)
            try:
                self._reader_threads.remove(threading.current_thread())
            except ValueError:
                pass

    @staticmethod
    def _parse_hello_line(line: str) -> dict:
        if not line:
            raise ProtocolError("connection closed before any handshake")
        try:
            d = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(
                f"handshake line is not valid JSON: {exc}") from exc
        if not isinstance(d, dict):
            raise ProtocolError("handshake frame must be a JSON object")
        return d

    def _reject(self, conn: socket.socket, reason: str) -> None:
        with self._lock:
            self._rejected += 1
        if _metrics.ENABLED:
            _C_REJECTED.inc()
        try:
            conn.sendall(encode_frame({"t": "reject", "reason": reason}))
        except OSError:
            pass

    def _admit(self, conn: socket.socket, hello: Hello,
               peer: str) -> Optional[Session]:
        session: Optional[Session] = None
        reason: Optional[str] = None
        with self._lock:
            if self._draining:
                reason = "server is shutting down"
            elif len(self._sessions) >= self.config.max_sessions:
                reason = (f"server at capacity: {len(self._sessions)} of "
                          f"{self.config.max_sessions} sessions in use")
            else:
                sid = self._next_sid
                self._next_sid += 1
                try:
                    session = Session(
                        sid, hello,
                        max_queued=self.config.max_queued_events, peer=peer)
                except Exception as exc:  # noqa: BLE001 - told to the client
                    reason = f"session setup failed: {exc}"
                else:
                    self._sessions[sid] = session
        if session is None:
            self._reject(conn, reason or "rejected")
            return None
        session.conn = conn
        sid = session.id
        if self.archive is not None:
            try:
                session.attach_archive(self.archive)
            except OSError:
                pass   # an unwritable archive degrades recording, not analysis
        if _metrics.ENABLED:
            _C_STARTED.inc()
            _G_ACTIVE.add(1)
            session.meter = _metrics.REGISTRY.counter(
                "server.session.events", unit="messages",
                help="events ingested by one session (labelled)",
                labels={"session": sid})
        conn.sendall(encode_frame({"t": "helloack", "session": sid}))
        return session

    def _stream(self, conn: socket.socket, reader,
                session: Session) -> None:
        """Post-handshake read loop: reliable frames in, acks out."""
        meter = getattr(session, "meter", None)

        def ingest(msg) -> None:
            if not session.enqueue(msg, self.config.overload_timeout):
                raise _Overload(
                    f"session {session.id} overloaded: ingest queue held "
                    f"{self.config.max_queued_events} events for more than "
                    f"{self.config.overload_timeout}s"
                    + ("" if session.error is None
                       else f" ({session.error})"))
            if _metrics.ENABLED:
                _C_INGESTED.inc()
                if meter is not None:
                    meter.inc()
            self._schedule(session)

        decoder = FrameDecoder(send=conn.sendall, on_message=ingest)
        try:
            for line in reader:
                frame = decoder.feed_line(line)
                if frame is None:
                    continue
                if frame.get("t") == "fin" and decoder.complete:
                    result_frame = self._finish_session(session)
                    if result_frame is not None:
                        conn.sendall(result_frame)
                        conn.sendall(_frame({"t": "finack"}))
                    # The close handshake is done; end the connection like
                    # ReliableReceiver does (keeping it open would deadlock:
                    # the client's socket close is deferred while its ack
                    # reader still holds the makefile).
                    return
                # any other control frame mid-stream is ignored: the
                # reliable sender only emits msg/hb/fin after the handshake
        except _Overload as exc:
            session.fail(str(exc))
            try:
                conn.sendall(encode_frame({"t": "err", "reason": str(exc)}))
            except OSError:
                pass

    def _finish_session(self, session: Session) -> Optional[bytes]:
        """End of stream: queue the fin, wait for the analysis to complete,
        build the result frame."""
        session.begin_drain()
        self._schedule(session)
        if self.config.workers == 0:
            session.fail("no analysis workers configured")
            return None
        if not session.done.wait(self.config.drain_timeout):
            session.fail(
                f"drain timed out after {self.config.drain_timeout}s")
            return None
        record = session.record()
        return encode_frame({
            "t": "result",
            "session": session.id,
            "state": record["state"],
            "violations": record["violations"],
            "counterexamples": record["counterexamples"],
            "sound": record["sound"],
            "analyzed": record["analyzed"],
            "error": record["error"],
        })

    def _retire(self, session: Session) -> None:
        """Reader is done with the connection: ensure a terminal state and
        move the session into the bounded record history."""
        session.fail("connection closed mid-stream")   # no-op if terminal
        with self._lock:
            record = self._seal_locked(session)
            self._idle.notify_all()
        self._announce(record)

    def _announce(self, record: Optional[dict]) -> None:
        if record is not None and self._on_session_end is not None:
            try:
                self._on_session_end(record)
            except Exception:  # noqa: BLE001 - callbacks must not kill readers
                pass

    def _seal_locked(self, session: Session) -> Optional[dict]:
        if session.id not in self._sessions:
            return None
        del self._sessions[session.id]
        record = session.seal()
        self._records.append(record)
        if _metrics.ENABLED:
            _G_ACTIVE.add(-1)
            _H_SESSION_EVENTS.observe(record["received"])
            if record["state"] == SessionState.FINISHED.value:
                _C_FINISHED.inc()
            else:
                _C_FAILED.inc()
        while len(self._records) > self.config.max_records:
            evicted = self._records.pop(0)
            _metrics.REGISTRY.unregister(
                "server.session.events", labels={"session": evicted["session"]})
        if self.config.results_path:
            try:
                with open(self.config.results_path, "a",
                          encoding="utf-8") as fh:
                    fh.write(json.dumps(record, default=str) + "\n")
            except OSError:
                pass
        return record

    # -- worker pool ----------------------------------------------------------

    def _schedule(self, session: Session) -> None:
        """Put the session on the pool's run queue unless a worker already
        holds it (exactly-one-worker-per-session invariant)."""
        with self._lock:
            if session.scheduled or not session.has_pending():
                return
            session.scheduled = True
        self._tasks.put(session)

    def _worker_loop(self) -> None:
        while True:
            session = self._tasks.get()
            if session is None:
                return
            try:
                session.process_batch(self.config.batch)
            finally:
                with self._lock:
                    session.scheduled = False
                self._schedule(session)
