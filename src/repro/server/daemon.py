"""The multi-session analysis server (``repro serve``).

One long-lived daemon observes many instrumented programs at once.  Each
client connection performs a one-line handshake
(:mod:`repro.server.protocol`), gets admitted as a session or rejected
with a reason, and then streams events over the exact
:class:`~repro.observer.reliable.ReliableSender` framing of the
two-process pipeline.  The moving parts:

* an **accept loop** hands each connection to a dedicated reader thread —
  ingestion (frame decode, CRC, dedup, acks) stays on the connection's own
  thread and never blocks another session;
* a bounded **worker pool** runs the lattice/predictive analysis off the
  ingestion hot path; a session is serviced by at most one worker at a
  time, so per-session event order is preserved without per-event locks;
* a **session registry** tracks lifecycle (handshake → streaming →
  draining → finished/failed) and keeps a bounded history of final
  records for ``repro sessions``;
* **admission control and backpressure**: at ``max_sessions`` the next
  attach is rejected with an explicit reason; a session whose queue stays
  full past ``overload_timeout`` is failed with an ``err`` frame instead
  of silently stalling the wire;
* **graceful shutdown**: stop accepting, give live sessions
  ``drain_timeout`` to finish, flush every record (optionally to a JSONL
  results file), then take the worker pool down;
* **crash resilience** (opt-in): ``supervised=True`` runs each session's
  analysis in a restartable worker process journaled through
  ``checkpoint_dir`` (:mod:`repro.server.supervisor` /
  :mod:`repro.server.recovery`); ``resume_timeout > 0`` keeps a session
  alive after its connection drops so the client can re-attach by resume
  token; ``recover=True`` readmits journaled sessions after a daemon
  restart.
"""

from __future__ import annotations

import errno as _errno
import hmac
import json
import logging
import queue
import secrets
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .. import __version__ as _repro_version
from ..obs import metrics as _metrics
from ..observer.reliable import FrameDecoder, _frame
from ..observer.trace import TraceFormatError
from ..store.format import read_trace_prefix
from .protocol import Hello, ProtocolError, encode_frame
from .recovery import SessionJournal, scan_journals
from .session import Session, SessionState
from .supervisor import SupervisedSession, SupervisorConfig

_LOG = logging.getLogger("repro.server")

__all__ = ["ServerConfig", "AnalysisServer"]

_C_STARTED = _metrics.REGISTRY.counter(
    "server.sessions_started", unit="sessions",
    help="client attaches admitted (handshake completed)")
_C_FINISHED = _metrics.REGISTRY.counter(
    "server.sessions_finished", unit="sessions",
    help="sessions that drained and finished their analysis cleanly")
_C_FAILED = _metrics.REGISTRY.counter(
    "server.sessions_failed", unit="sessions",
    help="sessions that ended in failure (overload, lost connection, "
         "analysis error, shutdown timeout)")
_C_REJECTED = _metrics.REGISTRY.counter(
    "server.sessions_rejected", unit="sessions",
    help="attaches refused at the handshake (capacity, shutdown, bad hello)")
_C_INGESTED = _metrics.REGISTRY.counter(
    "server.events_ingested", unit="messages",
    help="messages accepted off the wire across all sessions")
_G_ACTIVE = _metrics.REGISTRY.gauge(
    "server.active_sessions", unit="sessions",
    help="sessions currently attached (max = concurrency high-water mark)")
_H_SESSION_EVENTS = _metrics.REGISTRY.histogram(
    "server.session_events", unit="messages",
    help="per-session event count, observed when the session ends")
_C_ACCEPT_ERRORS = _metrics.REGISTRY.counter(
    "server.accept_errors", unit="errors",
    help="accept() failures in the listener loop (labelled by errno)")
_C_DETACHED = _metrics.REGISTRY.counter(
    "server.sessions_detached", unit="sessions",
    help="sessions that lost their connection and entered a resume window "
         "instead of failing")
_C_RESUMED = _metrics.REGISTRY.counter(
    "server.sessions_resumed", unit="sessions",
    help="detached sessions successfully reclaimed by a resume handshake")
_C_RECOVERED = _metrics.REGISTRY.counter(
    "server.sessions_recovered", unit="sessions",
    help="journaled sessions readmitted by a daemon restart with "
         "--recover")
_C_SPEC_REJECTED = _metrics.REGISTRY.counter(
    "server.specs_rejected", unit="sessions",
    help="attaches refused by --strict-specs: the hello carried an "
         "inconsistent or vacuous specification (SC3xx)")

#: accept() errnos that mean the listening socket itself is gone —
#: retrying would spin, so the loop exits.
_FATAL_ACCEPT_ERRNOS = frozenset({_errno.EBADF, _errno.EINVAL,
                                  _errno.ENOTSOCK})


@dataclass(frozen=True)
class ServerConfig:
    """Deployment knobs for :class:`AnalysisServer`.

    Attributes:
        host/port: listen address (port 0 = ephemeral, read back from
            :attr:`AnalysisServer.port`).
        max_sessions: admission bound on *concurrently attached* sessions;
            the next attach is rejected with an explicit reason.
        max_queued_events: per-session bound on events parked between the
            reader thread and the worker pool.
        workers: analysis worker threads (0 is legal and means nothing is
            ever analyzed — useful only for backpressure tests).
        batch: max events one worker services per scheduling turn; small
            enough to interleave sessions fairly, large enough to amortize
            the scheduling overhead.
        overload_timeout: how long an ingest may block on a full queue
            before the session is failed with an overload ``err`` frame.
        drain_timeout: grace period for a draining session (end-of-stream
            analysis) and for live sessions during shutdown.
        io_timeout: per-connection socket timeout; a client silent for
            this long (no data, no heartbeat) fails its session.
        max_records: finished/failed session records kept for status
            queries (oldest evicted first).
        results_path: when set, every terminal session record is appended
            to this JSONL file as it is sealed.
        archive_dir: when set, a :class:`~repro.store.archive.TraceArchive`
            rooted there records every session: analyzed messages stream
            into a v2 trace file and the catalog entry (verdict, final
            clocks) is published when the session finishes.  Failed
            sessions leave nothing behind.
        supervised: run each session's analysis in a supervised worker
            process journaled under ``checkpoint_dir``; crashed workers
            are restarted and rebuilt from their journal
            (:mod:`repro.server.supervisor`).
        checkpoint_dir: root directory for per-session durable journals;
            required by ``supervised`` and ``recover``.
        checkpoint_every: journal fsync cadence, in events.
        resume_timeout: how long a session survives after its connection
            drops, waiting for the client to resume by token.  0 (the
            default) disables re-attach: a dropped connection fails the
            session, as before.
        recover: at startup, scan ``checkpoint_dir`` and readmit every
            journaled session as a detached supervised session awaiting
            its client's resume.
        heartbeat_timeout: supervisor-side silence threshold declaring a
            worker dead.
        max_restarts: per-session worker restart budget; exceeding it
            fails the session with a reasoned ``err`` (crash-loop stop).
        restart_backoff: base of the exponential restart backoff.
        strict_specs: run the static spec-consistency pass
            (:func:`repro.staticcheck.speccheck.strict_reject_reason`) on
            every hello's spec and engine selections; an unsatisfiable,
            trivially-true, or vacuous spec is rejected at the handshake
            with a reasoned ``reject`` frame instead of burning a worker
            (docs/SPECCHECK.md).
        session_id_base: first session id this daemon mints.  A fleet
            (:mod:`repro.fleet`) gives each shard a disjoint stride of the
            id space so a session id alone identifies its shard — that is
            how the router routes resume handshakes without a routing
            table.  The default of 1 keeps single-daemon ids unchanged.
        archive_namespace: prefix applied to every trace id this daemon's
            archive allocates (e.g. ``sh00``), so per-shard archive
            directories share one fleet-wide catalog id namespace.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 16
    max_queued_events: int = 1024
    workers: int = 2
    batch: int = 64
    overload_timeout: float = 2.0
    drain_timeout: float = 30.0
    io_timeout: float = 60.0
    max_records: int = 256
    results_path: Optional[str] = None
    archive_dir: Optional[str] = None
    supervised: bool = False
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 128
    resume_timeout: float = 0.0
    recover: bool = False
    heartbeat_timeout: float = 2.0
    max_restarts: int = 3
    restart_backoff: float = 0.1
    #: Engine selections applied to sessions whose hello names none
    #: (see :mod:`repro.engines`); empty keeps the classic single-LTL
    #: pipeline driven by the hello's spec.
    default_engines: tuple[str, ...] = ()
    strict_specs: bool = False
    session_id_base: int = 1
    archive_namespace: str = ""

    def __post_init__(self) -> None:
        if self.session_id_base < 1:
            raise ValueError("session_id_base must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_queued_events < 1:
            raise ValueError("max_queued_events must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if (self.supervised or self.recover) and not self.checkpoint_dir:
            raise ValueError(
                "supervised/recover require a checkpoint_dir for the "
                "session journals")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.resume_timeout < 0:
            raise ValueError("resume_timeout must be >= 0")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff < 0:
            raise ValueError("restart_backoff must be >= 0")

    def supervisor_config(self) -> SupervisorConfig:
        return SupervisorConfig(
            heartbeat_interval=min(0.2, self.heartbeat_timeout / 4),
            heartbeat_timeout=self.heartbeat_timeout,
            max_restarts=self.max_restarts,
            restart_backoff=self.restart_backoff,
            checkpoint_every=self.checkpoint_every,
        )


class _Overload(Exception):
    """Internal: a session's ingest queue stayed full past the timeout."""


class AnalysisServer:
    """The daemon: accept loop + reader threads + analysis worker pool.

    Args:
        config: see :class:`ServerConfig`.
        on_session_end: optional callback fired with each terminal session
            record (the ``repro serve`` CLI prints these live).
    """

    def __init__(self, config: ServerConfig = ServerConfig(),
                 on_session_end: Optional[Callable[[dict], None]] = None):
        self.config = config
        self._on_session_end = on_session_end
        self.archive = None
        if config.archive_dir is not None:
            from ..store.archive import TraceArchive

            self.archive = TraceArchive(config.archive_dir,
                                        namespace=config.archive_namespace)
        self._server: Optional[socket.socket] = None
        self.host = config.host
        self.port: Optional[int] = None
        self._lock = threading.Lock()
        self._sessions: dict[int, Session] = {}      # live (non-terminal)
        self._records: list[dict] = []               # sealed, bounded
        self._next_sid = config.session_id_base
        self._rejected = 0
        self._draining = False
        self._started_at = time.time()
        self._tasks: "queue.Queue[Optional[Session]]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._reader_threads: list[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._idle = threading.Condition(self._lock)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "AnalysisServer":
        """Bind, start the accept loop and the worker pool."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = socket.create_server((self.config.host,
                                             self.config.port))
        self.host, self.port = self._server.getsockname()
        if self.config.recover:
            self._recover_sessions()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True)
        self._accept_thread.start()
        for i in range(self.config.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"repro-server-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def _recover_sessions(self) -> None:
        """Readmit every journaled session under ``checkpoint_dir`` as a
        detached supervised session: its worker restarts immediately and
        replays the journal; the client has a resume window of at least
        ``drain_timeout`` to re-attach by token."""
        journals, skipped = scan_journals(self.config.checkpoint_dir)
        for name, why in skipped:
            _LOG.warning("not recovering %s: %s", name, why)
        sup = self.config.supervisor_config()
        window = max(self.config.resume_timeout, self.config.drain_timeout)
        for journal in journals:
            meta = journal.meta
            hello = Hello(
                mode="attach", program=meta.program,
                n_threads=meta.n_threads, initial=meta.initial,
                spec=meta.spec, fault_tolerant=meta.fault_tolerant,
                engines=meta.engines)
            try:
                durable = 0
                if journal.events_path.exists():
                    durable = len(read_trace_prefix(
                        journal.events_path).messages)
            except (TraceFormatError, OSError):
                durable = 0
            try:
                session = SupervisedSession(
                    meta.session, hello, journal, supervisor=sup,
                    max_queued=self.config.max_queued_events,
                    peer="recovered")
            except Exception as exc:  # noqa: BLE001 - skip, don't crash boot
                _LOG.warning("not recovering session %s: %r",
                             meta.session, exc)
                continue
            session.token = meta.token
            session.epoch = meta.epoch
            session.restore_progress(durable)
            with self._lock:
                self._sessions[meta.session] = session
                self._next_sid = max(self._next_sid, meta.session + 1)
            if self.archive is not None:
                session.attach_archive(self.archive)
            if _metrics.ENABLED:
                _C_RECOVERED.inc()
                _G_ACTIVE.add(1)
                session.meter = _metrics.REGISTRY.counter(
                    "server.session.events", unit="messages",
                    help="events ingested by one session (labelled)",
                    labels={"session": meta.session})
            session.start_worker()
            self._detach(session, window, count=False)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> list[dict]:
        """Stop accepting, drain live sessions, flush records, stop workers.

        With ``drain`` (the default), live sessions get up to ``timeout``
        (default: the config's ``drain_timeout``) to reach a terminal
        state; stragglers are failed with reason ``server shutdown``.
        Returns every session record the server holds, oldest first.
        """
        timeout = self.config.drain_timeout if timeout is None else timeout
        with self._lock:
            already = self._draining
            self._draining = True
        if not already and self._server is not None:
            # close() alone cannot release a listener with a thread parked
            # in accept(): the in-flight syscall pins the kernel socket, so
            # the port would stay in LISTEN and block a --recover rebind.
            # shutdown() wakes the accept with EINVAL first.
            try:
                self._server.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._server.close()
        if drain:
            deadline = time.monotonic() + timeout
            with self._lock:
                live = list(self._sessions.values())
            for s in live:
                s.done.wait(max(0.0, deadline - time.monotonic()))
        with self._lock:
            live = list(self._sessions.values())
        for s in live:
            timer, s.resume_timer = s.resume_timer, None
            if timer is not None:
                timer.cancel()
            if s.fail("server shutdown"):
                # tell the client why, then force its reader loop to end
                conn = getattr(s, "conn", None)
                if conn is not None:
                    try:
                        conn.sendall(encode_frame(
                            {"t": "err", "reason": "server shutdown"}))
                    except OSError:
                        pass
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
        # stop the pool: one poison pill per worker
        for _ in self._threads:
            self._tasks.put(None)
        for t in self._threads:
            t.join(timeout=5.0)
        for t in list(self._reader_threads):
            t.join(timeout=5.0)
        announce = []
        with self._lock:
            for s in list(self._sessions.values()):
                announce.append(self._seal_locked(s))
            records = list(self._records)
        for record in announce:
            self._announce(record)
        return records

    def __enter__(self) -> "AnalysisServer":
        return self.start() if self._server is None else self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- status ---------------------------------------------------------------

    def status(self) -> dict:
        """JSON-able health report: server gauges + every session record."""
        with self._lock:
            live = [s.record() for s in self._sessions.values()]
            sealed = list(self._records)
            active = len(self._sessions)
            rejected = self._rejected
        finished = sum(r["state"] == SessionState.FINISHED.value
                       for r in sealed)
        failed = sum(r["state"] == SessionState.FAILED.value for r in sealed)
        doc = {
            "t": "status",
            "server": {
                "version": _repro_version,
                "host": self.host,
                "port": self.port,
                "uptime_s": round(time.time() - self._started_at, 3),
                "active_sessions": active,
                "max_sessions": self.config.max_sessions,
                "workers": self.config.workers,
                "draining": self._draining,
                "finished": finished,
                "failed": failed,
                "rejected": rejected,
            },
            "sessions": sorted(sealed + live, key=lambda r: r["session"]),
        }
        if _metrics.ENABLED:
            doc["metrics"] = _metrics.REGISTRY.snapshot()
        return doc

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until no live session remains (for tests/benchmarks)."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._sessions:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    # -- accept / reader side -------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        logged: set[int] = set()
        while True:
            try:
                conn, addr = self._server.accept()
            except OSError as exc:
                with self._lock:
                    if self._draining:
                        return   # closed by shutdown
                code = exc.errno if exc.errno is not None else -1
                if _metrics.ENABLED:
                    _metrics.REGISTRY.counter(
                        "server.accept_errors", unit="errors",
                        help="accept() failures in the listener loop "
                             "(labelled by errno)",
                        labels={"errno": code}).inc()
                if code not in logged:
                    logged.add(code)
                    _LOG.warning(
                        "accept() failed on %s:%s with errno %s (%s); "
                        "further occurrences counted in "
                        "server.accept_errors", self.host, self.port,
                        code, exc)
                if code in _FATAL_ACCEPT_ERRNOS:
                    return   # the listening socket itself is gone
                continue     # transient (EMFILE, ECONNABORTED, ...): retry
            # accepted sockets share the listen port but don't inherit
            # SO_REUSEADDR; without it, one lingering FIN_WAIT connection
            # blocks a restarted daemon (--recover) from rebinding the port
            try:
                conn.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            except OSError:
                pass
            t = threading.Thread(
                target=self._serve_connection, args=(conn, addr),
                name=f"repro-server-conn-{addr[1]}", daemon=True)
            self._reader_threads.append(t)
            t.start()

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        peer = f"{addr[0]}:{addr[1]}"
        session: Optional[Session] = None
        epoch = 0
        reason = "connection closed mid-stream"
        try:
            conn.settimeout(self.config.io_timeout)
            with conn, conn.makefile("r", encoding="utf-8") as reader:
                line = reader.readline()
                try:
                    hello = Hello.from_frame(self._parse_hello_line(line))
                except ProtocolError as exc:
                    self._reject(conn, str(exc), why="bad-hello")
                    return
                if hello.mode == "status":
                    conn.sendall(encode_frame(self.status()))
                    return
                if hello.mode == "resume":
                    resumed = self._resume(conn, hello, peer)
                    if resumed is None:
                        return
                    session, start_seq = resumed
                    epoch = session.epoch
                    self._stream(conn, reader, session, start_seq=start_seq)
                else:
                    session = self._admit(conn, hello, peer)
                    if session is None:
                        return
                    epoch = session.epoch
                    self._stream(conn, reader, session)
        except (OSError, ValueError) as exc:
            reason = f"connection lost: {exc!r}"
        finally:
            if session is not None:
                self._end_connection(session, epoch, reason)
            try:
                self._reader_threads.remove(threading.current_thread())
            except ValueError:
                pass

    def _end_connection(self, session: Session, epoch: int,
                        reason: str) -> None:
        """A reader thread is done with its connection: retire, detach, or
        stand aside if the session was already resumed elsewhere."""
        with self._lock:
            if session.epoch != epoch:
                return   # a resume superseded this connection
            resumable = (self.config.resume_timeout > 0
                         and not session.state.terminal
                         and not self._draining)
        if resumable:
            self._detach(session, self.config.resume_timeout)
            return
        session.fail(reason)   # no-op if terminal
        self._retire(session)

    def _detach(self, session: Session, window: float,
                count: bool = True) -> None:
        """Park a session whose connection dropped: analysis keeps going,
        and an expiry timer fails it if no resume arrives in time."""
        session.mark_detached()
        if count and _metrics.ENABLED:
            _C_DETACHED.inc()
        epoch = session.epoch
        timer = threading.Timer(
            window, self._expire_detached, args=(session, epoch, window))
        timer.daemon = True
        session.resume_timer = timer
        timer.start()

    def _expire_detached(self, session: Session, epoch: int,
                         window: float) -> None:
        with self._lock:
            if session.epoch != epoch or session.attached:
                return   # resumed in the meantime
        session.fail(
            f"client did not resume within {window}s of disconnecting")
        self._retire(session)

    def _resume(self, conn: socket.socket, hello: Hello,
                peer: str) -> Optional[tuple[Session, int]]:
        """Validate a resume handshake and re-attach the session.

        Returns ``(session, delivered)`` on success, ``None`` after a
        reject.  A resume with an epoch older than the server's is allowed
        only while the session is detached — that covers a client that
        lost the helloack of a previous resume attempt — while a *live*
        attachment can only be superseded by its own epoch (so a stolen
        stale token cannot hijack a healthy connection).
        """
        reason: Optional[str] = None
        with self._lock:
            session = self._sessions.get(hello.session)
            if session is None or session.state.terminal:
                reason = (f"cannot resume session {hello.session}: "
                          "no such live session")
                session = None
            elif not session.token or not hmac.compare_digest(
                    session.token, hello.token):
                reason = (f"cannot resume session {hello.session}: "
                          "resume token mismatch")
                session = None
            elif hello.epoch > session.epoch or (
                    hello.epoch < session.epoch and session.attached):
                reason = (f"cannot resume session {hello.session}: "
                          f"stale epoch {hello.epoch} "
                          f"(session is at epoch {session.epoch})")
                session = None
            elif self._draining:
                reason = "server is shutting down"
                session = None
        if session is None:
            self._reject(conn, reason or "rejected",
                         why="draining" if reason == "server is shutting down"
                         else "resume")
            return None
        timer, session.resume_timer = session.resume_timer, None
        if timer is not None:
            timer.cancel()
        epoch = session.resume(conn)
        session.peer = peer
        if session.supervised:
            try:
                session.journal.bump_epoch(epoch)
            except OSError:
                pass   # a stale persisted epoch is tolerated on re-recover
        delivered = session.delivered_for_resume()
        if _metrics.ENABLED:
            _C_RESUMED.inc()
        conn.sendall(encode_frame({
            "t": "helloack", "session": session.id, "epoch": epoch,
            "token": session.token, "delivered": delivered}))
        return session, delivered

    @staticmethod
    def _parse_hello_line(line: str) -> dict:
        if not line:
            raise ProtocolError("connection closed before any handshake")
        try:
            d = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(
                f"handshake line is not valid JSON: {exc}") from exc
        if not isinstance(d, dict):
            raise ProtocolError("handshake frame must be a JSON object")
        return d

    def _reject(self, conn: socket.socket, reason: str,
                why: str = "other") -> None:
        """Refuse a handshake.  ``why`` is the structured category — it
        labels ``server.rejects{reason=}`` and rides on the reject frame so
        the fleet router can tell a capacity reject (spill to the next
        shard) from a terminal one (forward to the client)."""
        with self._lock:
            self._rejected += 1
        if _metrics.ENABLED:
            _C_REJECTED.inc()
            _metrics.REGISTRY.counter(
                "server.rejects", unit="sessions",
                help="handshake rejects by structured cause (labelled: "
                     "capacity, overload, strict-spec, draining, bad-hello, "
                     "resume, setup)",
                labels={"reason": why}).inc()
        try:
            conn.sendall(encode_frame(
                {"t": "reject", "reason": reason, "why": why}))
        except OSError:
            pass

    def _admit(self, conn: socket.socket, hello: Hello,
               peer: str) -> Optional[Session]:
        if self.config.strict_specs:
            from ..staticcheck.speccheck import strict_reject_reason

            bad = strict_reject_reason(
                hello.spec, hello.engines or self.config.default_engines)
            if bad is not None:
                if _metrics.ENABLED:
                    _C_SPEC_REJECTED.inc()
                self._reject(conn, bad, why="strict-spec")
                return None
        session: Optional[Session] = None
        reason: Optional[str] = None
        why = "other"
        with self._lock:
            if self._draining:
                reason = "server is shutting down"
                why = "draining"
            elif len(self._sessions) >= self.config.max_sessions:
                reason = (f"server at capacity: {len(self._sessions)} of "
                          f"{self.config.max_sessions} sessions in use")
                why = "capacity"
            else:
                sid = self._next_sid
                self._next_sid += 1
                token = secrets.token_hex(8)
                try:
                    session = self._build_session(sid, hello, token, peer)
                except Exception as exc:  # noqa: BLE001 - told to the client
                    reason = f"session setup failed: {exc}"
                    why = "setup"
                else:
                    session.token = token
                    self._sessions[sid] = session
        if session is None:
            self._reject(conn, reason or "rejected", why=why)
            return None
        session.conn = conn
        sid = session.id
        if self.archive is not None:
            try:
                session.attach_archive(self.archive)
            except OSError:
                pass   # an unwritable archive degrades recording, not analysis
        if _metrics.ENABLED:
            _C_STARTED.inc()
            _G_ACTIVE.add(1)
            session.meter = _metrics.REGISTRY.counter(
                "server.session.events", unit="messages",
                help="events ingested by one session (labelled)",
                labels={"session": sid})
        if session.supervised:
            session.start_worker()
        conn.sendall(encode_frame({
            "t": "helloack", "session": sid, "epoch": session.epoch,
            "token": session.token}))
        return session

    def _build_session(self, sid: int, hello: Hello, token: str,
                       peer: str) -> Session:
        """Construct the right session flavor for this config (called
        under the server lock; raising rejects the attach with reason)."""
        if not self.config.supervised:
            return Session(sid, hello,
                           max_queued=self.config.max_queued_events,
                           peer=peer,
                           default_engines=self.config.default_engines)
        journal = SessionJournal.create(
            self.config.checkpoint_dir, session=sid, token=token,
            program=hello.program, n_threads=hello.n_threads,
            initial=hello.initial, spec=hello.spec,
            fault_tolerant=hello.fault_tolerant,
            engines=hello.engines or self.config.default_engines)
        try:
            return SupervisedSession(
                sid, hello, journal, supervisor=self.config.supervisor_config(),
                max_queued=self.config.max_queued_events, peer=peer,
                default_engines=self.config.default_engines)
        except Exception:
            journal.delete()
            raise

    def _stream(self, conn: socket.socket, reader,
                session: Session, start_seq: int = 0) -> None:
        """Post-handshake read loop: reliable frames in, acks out.

        All writes to the connection go through the session's io lock
        (:meth:`Session.send_bytes`) because checkpoint and error frames
        from supervisor threads share the socket with our acks.
        ``start_seq`` is nonzero on a resumed connection: the decoder then
        re-acks the already-delivered prefix as duplicates.
        """
        meter = getattr(session, "meter", None)
        resumable = self.config.resume_timeout > 0 and not session.supervised

        def ingest(msg) -> None:
            if not session.enqueue(msg, self.config.overload_timeout):
                raise _Overload(
                    f"session {session.id} overloaded: ingest queue held "
                    f"{self.config.max_queued_events} events for more than "
                    f"{self.config.overload_timeout}s"
                    + ("" if session.error is None
                       else f" ({session.error})"))
            if _metrics.ENABLED:
                _C_INGESTED.inc()
                if meter is not None:
                    meter.inc()
            if (resumable
                    and session.received % self.config.checkpoint_every == 0):
                # in-process sessions hold everything in memory, so for
                # connection-drop resumes "accepted" is as durable as it
                # gets: let the client prune its resend buffer
                session.send_frame({"t": "ckpt", "n": session.received})
            self._schedule(session)

        decoder = FrameDecoder(send=session.send_bytes, on_message=ingest,
                               start_seq=start_seq)
        try:
            for line in reader:
                frame = decoder.feed_line(line)
                if frame is None:
                    continue
                if frame.get("t") == "fin" and decoder.complete:
                    result_frame = self._finish_session(session)
                    if result_frame is not None:
                        session.send_bytes(result_frame)
                        session.send_bytes(_frame({"t": "finack"}))
                        self._drain_to_eof(conn, reader, session)
                    return
                # any other control frame mid-stream is ignored: the
                # reliable sender only emits msg/hb/fin after the handshake
        except _Overload as exc:
            if _metrics.ENABLED:
                _metrics.REGISTRY.counter(
                    "server.rejects", unit="sessions",
                    help="handshake rejects by structured cause (labelled: "
                         "capacity, overload, strict-spec, draining, "
                         "bad-hello, resume, setup)",
                    labels={"reason": "overload"}).inc()
            session.fail(str(exc))
            try:
                conn.sendall(encode_frame({"t": "err", "reason": str(exc)}))
            except OSError:
                pass

    @staticmethod
    def _drain_to_eof(conn: socket.socket, reader, session: Session) -> None:
        """Read the connection dry after finack, until the client closes it.

        Closing while unread fin retransmits sit in the receive buffer
        makes the kernel answer with RST, which flushes the peer's receive
        queue — the finack can be discarded before the client ever reads
        it.  Consuming to EOF (re-acking any late fin, in case the finack
        itself was lost) guarantees the client observed the handshake
        complete before the socket goes away.
        """
        try:
            conn.settimeout(5.0)
            for line in reader:
                try:
                    frame = json.loads(line)
                except ValueError:
                    continue
                if frame.get("t") == "fin":
                    session.send_frame({"t": "finack"})
        except (OSError, ValueError):
            pass

    def _finish_session(self, session: Session) -> Optional[bytes]:
        """End of stream: queue the fin, wait for the analysis to complete,
        build the result frame."""
        session.begin_drain()
        self._schedule(session)
        if self.config.workers == 0 and not session.supervised:
            session.fail("no analysis workers configured")
            return None
        if not session.done.wait(self.config.drain_timeout):
            session.fail(
                f"drain timed out after {self.config.drain_timeout}s")
            return None
        record = session.record()
        return encode_frame({
            "t": "result",
            "session": session.id,
            "state": record["state"],
            "violations": record["violations"],
            "counterexamples": record["counterexamples"],
            "sound": record["sound"],
            "analyzed": record["analyzed"],
            "final_clocks": record["final_clocks"],
            "error": record["error"],
            "engines": record.get("engines", []),
        })

    def _retire(self, session: Session) -> None:
        """Reader is done with the connection: ensure a terminal state and
        move the session into the bounded record history."""
        session.fail("connection closed mid-stream")   # no-op if terminal
        with self._lock:
            record = self._seal_locked(session)
            self._idle.notify_all()
        self._announce(record)

    def _announce(self, record: Optional[dict]) -> None:
        if record is not None and self._on_session_end is not None:
            try:
                self._on_session_end(record)
            except Exception:  # noqa: BLE001 - callbacks must not kill readers
                pass

    def _seal_locked(self, session: Session) -> Optional[dict]:
        if session.id not in self._sessions:
            return None
        del self._sessions[session.id]
        record = session.seal()
        self._records.append(record)
        if _metrics.ENABLED:
            _G_ACTIVE.add(-1)
            _H_SESSION_EVENTS.observe(record["received"])
            if record["state"] == SessionState.FINISHED.value:
                _C_FINISHED.inc()
            else:
                _C_FAILED.inc()
        while len(self._records) > self.config.max_records:
            evicted = self._records.pop(0)
            _metrics.REGISTRY.unregister(
                "server.session.events", labels={"session": evicted["session"]})
        if self.config.results_path:
            try:
                with open(self.config.results_path, "a",
                          encoding="utf-8") as fh:
                    fh.write(json.dumps(record, default=str) + "\n")
            except OSError:
                pass
        return record

    # -- worker pool ----------------------------------------------------------

    def _schedule(self, session: Session) -> None:
        """Put the session on the pool's run queue unless a worker already
        holds it (exactly-one-worker-per-session invariant)."""
        with self._lock:
            if session.scheduled or not session.has_pending():
                return
            session.scheduled = True
        self._tasks.put(session)

    def _worker_loop(self) -> None:
        while True:
            session = self._tasks.get()
            if session is None:
                return
            try:
                session.process_batch(self.config.batch)
            finally:
                with self._lock:
                    session.scheduled = False
                self._schedule(session)
