"""Sessions: one observed program inside the multi-session server.

A session owns everything single-program about the pipeline — an
:class:`~repro.observer.observer.Observer` (with its
:class:`~repro.analysis.predictive.OnlinePredictor` when the client sent a
spec) plus a bounded ingest queue between the connection's reader thread
and the analysis worker pool.  Lifecycle::

    HANDSHAKE ──▶ STREAMING ──▶ DRAINING ──▶ FINISHED
                       │             │
                       └─────────────┴─────▶ FAILED (overload, lost
                                             connection, analysis error,
                                             shutdown timeout)

The reader thread *enqueues* (and blocks briefly when the queue is full —
that unacked backlog is what backpressures the remote sender); a worker
*drains* in batches and feeds the observer.  Exactly one worker services a
session at a time (the pool's scheduled flag), so the observer only needs
coarse thread safety, and per-session event order is the reliable
transport's send order.

Orthogonal to the lifecycle, a session tracks its *attachment*: which
client connection (if any) currently owns it, authenticated by a resume
token and versioned by an epoch that increments on every (re)attach.
When the daemon is configured with a resume window, a dropped connection
*detaches* the session (analysis keeps running on whatever is queued)
instead of failing it, and a reconnecting client reclaims it by token.
"""

from __future__ import annotations

import enum
import json
import threading
import time
from collections import deque
from typing import Any, Optional, Sequence

from ..logic.monitor import Monitor
from ..observer.observer import Observer
from .protocol import Hello

__all__ = ["SessionState", "Session"]

#: Queue sentinel: end of stream, run ``Observer.finish`` next.
_FIN = object()


class SessionState(enum.Enum):
    """Where a session is in its lifecycle."""

    HANDSHAKE = "handshake"
    STREAMING = "streaming"
    DRAINING = "draining"
    FINISHED = "finished"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (SessionState.FINISHED, SessionState.FAILED)


class Session:
    """One client's analysis run inside the server.

    Args:
        session_id: server-assigned id (monotone per server).
        hello: the validated attach handshake.
        max_queued: bound on events parked between reader and worker.
        peer: remote address string, for the status report.

    Construction builds the observer eagerly, so a spec whose variables are
    absent from ``hello.initial`` raises here — the daemon turns that into
    a handshake *reject* with the exception text as the reason.
    """

    def __init__(self, session_id: int, hello: Hello, max_queued: int = 1024,
                 peer: str = "",
                 default_engines: Sequence[str] = ()):
        if max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        self.id = session_id
        self.program = hello.program
        self.spec = hello.spec
        self.peer = peer
        self.n_threads = hello.n_threads
        self.initial = dict(hello.initial)
        self._monitor = Monitor(hello.spec) if hello.spec else None
        # engine selection: the client's hello wins, then the server's
        # configured default pipeline, then the classic spec→LTL observer
        self.engines_requested: tuple[str, ...] = (
            hello.engines or tuple(default_engines))
        self.observer = Observer(
            hello.n_threads,
            hello.initial,
            spec=self._monitor,
            fault_tolerant=hello.fault_tolerant,
            thread_safe=True,
            engines=list(self.engines_requested) or None,
        )
        self._max_queued = max_queued
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._state = SessionState.STREAMING
        self.error: Optional[str] = None
        self.received = 0        # events accepted off the wire
        self.analyzed = 0        # events fed to the observer
        self.queue_high_water = 0
        self.started_at = time.time()
        self.finished_at: Optional[float] = None
        self._t0 = time.monotonic()
        self._elapsed: Optional[float] = None
        self.done = threading.Event()
        self._sealed: Optional[dict] = None
        # daemon-owned plumbing: the connection socket, the optional
        # labelled per-session counter, and the worker-pool scheduled flag
        # (the latter guarded by the pool's lock, not ours)
        self.conn = None
        self.meter = None
        self.scheduled = False
        # trace-archive plumbing (repro.store): a PendingTrace when the
        # daemon was configured with archive_dir, else None
        self._pending = None
        self.archive_id: Optional[str] = None
        # attachment: which connection owns this session.  The epoch
        # counts (re)attaches; the token authenticates a resume; the io
        # lock serializes everything written to the current conn (acks
        # from the reader thread, ckpt/err frames from other threads).
        self.token: str = ""
        self.epoch = 1
        self.attached = True
        self.resume_timer = None        # daemon-managed threading.Timer
        self._io_lock = threading.Lock()
        self.final_clocks: list[tuple[int, ...]] = [
            (0,) * hello.n_threads for _ in range(hello.n_threads)]
        #: True for sessions whose analysis runs in a supervised
        #: subprocess (repro.server.supervisor) rather than on the pool.
        self.supervised = False

    # -- state ----------------------------------------------------------------

    @property
    def state(self) -> SessionState:
        return self._state

    @property
    def pending(self) -> int:
        """Events parked between reader and worker right now."""
        return len(self._queue)

    def _enter_terminal(self, state: SessionState) -> None:
        self._state = state
        self.finished_at = time.time()
        self._elapsed = time.monotonic() - self._t0
        self.done.set()

    # -- connection io --------------------------------------------------------

    def send_bytes(self, data: bytes) -> bool:
        """Write raw bytes to the currently attached connection under the
        per-session io lock (acks, ckpt and err frames come from different
        threads).  Detached or dead connections are a silent no-op — the
        reliable transport's retransmit/resume machinery recovers."""
        with self._io_lock:
            conn = self.conn
            if conn is None:
                return False
            try:
                conn.sendall(data)
                return True
            except OSError:
                return False

    def send_frame(self, obj: dict) -> bool:
        return self.send_bytes(
            (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8"))

    # -- attachment -----------------------------------------------------------

    def mark_detached(self) -> None:
        """The owning connection dropped but the session survives inside
        its resume window: analysis keeps draining the queue, a resume
        with the right token reclaims it."""
        with self._io_lock:
            self.attached = False
            self.conn = None

    def resume(self, conn) -> int:
        """Attach a new connection, bumping the epoch.  Closes any stale
        connection first (waking its blocked reader).  Returns the new
        epoch."""
        with self._io_lock:
            old, self.conn = self.conn, conn
            self.attached = True
            self.epoch += 1
            epoch = self.epoch
        if old is not None and old is not conn:
            try:
                old.close()
            except OSError:
                pass
        return epoch

    def delivered_for_resume(self) -> int:
        """How many ``msg`` frames a resuming client may skip.

        For an in-process session every accepted event lives in our queue
        or observer, so the received count is safe to re-ack from."""
        return self.received

    def fail(self, reason: str) -> bool:
        """Move to FAILED (idempotent; terminal states win).  Returns
        whether this call performed the transition."""
        with self._cond:
            if self._state.terminal:
                return False
            self.error = reason
            self._queue.clear()
            self._enter_terminal(SessionState.FAILED)
            self._cond.notify_all()
        # outside the condition: file I/O must not block enqueuers.  A
        # failed session is never archived — the partial trace is removed.
        self._abort_archive()
        return True

    # -- trace archive --------------------------------------------------------

    def attach_archive(self, archive) -> None:
        """Record this session into ``archive`` (a
        :class:`~repro.store.archive.TraceArchive`): every analyzed message
        is streamed into a pending trace, committed with the verdict when
        the session finishes, aborted (file removed) when it fails."""
        self._pending = archive.begin(
            program=self.program, n_threads=self.n_threads,
            initial=self.initial, spec=self.spec)
        self.archive_id = self._pending.id

    def _archive_write(self, msg) -> None:
        pending = self._pending
        if pending is None:
            return
        try:
            pending.write(msg)
        except (OSError, RuntimeError):
            # a full disk (or a racing abort) degrades the archive, never
            # the analysis: drop the recording, keep the session alive
            self._pending = None
            pending.abort()

    def _commit_archive(self) -> None:
        pending = self._pending
        if pending is None:
            return
        try:
            pending.commit(self.violations_pretty(),
                           self.observer.health.sound_everywhere,
                           time.monotonic() - self._t0,
                           engines=self.observer.engine_verdicts())
        except OSError:
            pending.abort()

    def _abort_archive(self) -> None:
        pending, self._pending = self._pending, None
        if pending is not None:
            pending.abort()

    # -- reader side ----------------------------------------------------------

    def enqueue(self, msg: Any, timeout: float) -> bool:
        """Park one message for the worker pool.

        Blocks up to ``timeout`` while the queue is full — during that
        window the reader is not acking, which is exactly the backpressure
        signal the remote sender's bounded window responds to.  Returns
        False if the queue is *still* full after the timeout (the caller
        declares overload) or the session already left STREAMING.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while (len(self._queue) >= self._max_queued
                   and self._state is SessionState.STREAMING):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if len(self._queue) >= self._max_queued:
                        return False
            if self._state is not SessionState.STREAMING:
                return False
            self._queue.append(msg)
            self.received += 1
            if len(self._queue) > self.queue_high_water:
                self.queue_high_water = len(self._queue)
            return True

    def begin_drain(self) -> None:
        """End of stream (fin seen, all frames delivered): no more
        enqueues; the worker will run ``finish`` after the backlog."""
        with self._cond:
            if self._state is SessionState.STREAMING:
                self._state = SessionState.DRAINING
                self._queue.append(_FIN)
                self._cond.notify_all()

    # -- worker side ----------------------------------------------------------

    def process_batch(self, max_batch: int = 64) -> bool:
        """Drain up to ``max_batch`` queued events into the observer.

        Runs on a worker-pool thread; never on the reader.  The backlog is
        popped as one chunk (stopping at the fin sentinel) and handed to
        :meth:`Observer.receive_batch`, so the whole chunk costs one arena
        write and one lattice advance instead of one per event.  Returns
        whether work remains queued.  Any exception out of the analysis
        marks the session FAILED with the exception text.
        """
        with self._cond:
            if self._state.terminal or not self._queue:
                return False
            batch: list = []
            saw_fin = False
            while self._queue and len(batch) < max_batch:
                item = self._queue.popleft()
                if item is _FIN:
                    saw_fin = True
                    break
                batch.append(item)
            self._cond.notify_all()   # freed queue space → reader resumes
        try:
            if batch:
                self.observer.receive_batch(batch)
                self.analyzed += len(batch)
                for item in batch:
                    self.final_clocks[item.thread] = tuple(item.clock)
                    self._archive_write(item)
            if saw_fin:
                self.observer.finish()
                # archive the verdict before `done` is published: once the
                # reader sees `done` it may seal() and drop the observer
                # this commit still reads from
                self._commit_archive()
                with self._cond:
                    if not self._state.terminal:
                        self._enter_terminal(SessionState.FINISHED)
                return False
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            self.fail(f"analysis error: {exc}")
            return False
        with self._cond:
            return bool(self._queue) and not self._state.terminal

    def has_pending(self) -> bool:
        with self._cond:
            return bool(self._queue) and not self._state.terminal

    # -- results --------------------------------------------------------------

    def violations_pretty(self) -> list[str]:
        """Every engine's pretty-printed findings, in engine order (equal
        to the classic LTL counterexample list for single-LTL sessions)."""
        return self.observer.counterexamples()

    def engine_verdicts_json(self) -> list[dict]:
        return [v.to_json() for v in self.observer.engine_verdicts()]

    def seal(self) -> dict:
        """Freeze the final record and drop the observer (and its lattice
        state) so a long-running server does not accumulate one analyzer
        per finished session.  Only meaningful in a terminal state."""
        if self._sealed is None:
            self._sealed = self.record()
            self.observer = None  # type: ignore[assignment]
            self._abort_archive()   # no-op when already committed/aborted
        return self._sealed

    def record(self) -> dict:
        """JSON-able status record — one line of ``repro sessions``."""
        if self._sealed is not None:
            return dict(self._sealed)
        elapsed = (self._elapsed if self._elapsed is not None
                   else time.monotonic() - self._t0)
        health = self.observer.health
        verdicts = self.observer.engine_verdicts()
        return {
            "session": self.id,
            "program": self.program,
            "peer": self.peer,
            "state": self._state.value,
            "spec": self.spec,
            "n_threads": self.n_threads,
            "received": self.received,
            "analyzed": self.analyzed,
            "pending": self.pending,
            "queue_high_water": self.queue_high_water,
            "violations": sum(v.violations for v in verdicts),
            "counterexamples": self.violations_pretty(),
            "engines": [v.to_json() for v in verdicts],
            "sound": health.sound_everywhere,
            "final_clocks": [list(c) for c in self.final_clocks],
            "epoch": self.epoch,
            "attached": self.attached,
            "archive": self.archive_id,
            "error": self.error,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": round(elapsed, 6),
        }
