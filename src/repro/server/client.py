"""Client side of the multi-session analysis server.

The instrumented program (or the ``repro attach`` CLI) uses this module to
open a session: a synchronous one-line handshake, then the stock
:class:`~repro.observer.reliable.ReliableSender` owns the socket and
streams messages with acks, retransmission and backpressure exactly as in
the two-process pipeline.  Closing the session completes the fin/finack
handshake and returns the server's verdicts.

Usage::

    from repro.server import attach

    with attach(port=4040, n_threads=2, initial={"x": -1, "y": 0, "z": 0},
                spec=XYZ_PROPERTY, program="xyz") as session:
        run_program(xyz_program(), scheduler, sink=session.send)
    print(session.verdict.counterexamples)
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..core.events import Message, VarName
from ..observer.reliable import (
    ReliableSender,
    ReliableTransportError,
    RetransmitConfig,
)
from .protocol import Hello, ProtocolError, encode_frame, read_frame_line

__all__ = ["ServerRejected", "SessionVerdict", "AttachedSession", "attach",
           "fetch_status"]


class ServerRejected(ConnectionError):
    """The server refused the attach; :attr:`reason` is its explanation
    (capacity, shutdown in progress, malformed hello, bad spec)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class SessionVerdict:
    """The server's final word on one session."""

    session: int
    state: str
    violations: int
    counterexamples: tuple[str, ...] = ()
    sound: bool = True
    analyzed: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Finished cleanly with no predicted violation."""
        return self.state == "finished" and self.violations == 0


@dataclass(frozen=True)
class _HandshakeReply:
    session: int


def _handshake(host: str, port: int, hello: Hello,
               timeout: float) -> tuple[socket.socket, dict]:
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.sendall(encode_frame(hello.to_frame()))
        reply = read_frame_line(sock)
    except BaseException:
        sock.close()
        raise
    kind = reply.get("t")
    if kind == "reject":
        sock.close()
        raise ServerRejected(reply.get("reason", "rejected (no reason given)"))
    return sock, reply


class AttachedSession:
    """A live session: ``send`` messages, ``close`` for the verdict.

    Create via :func:`attach`.  The underlying reliable sender enforces
    the bounded in-flight window, so a slow server backpressures the
    instrumented program instead of buffering without bound; a server-side
    overload or failure surfaces as :class:`ReliableTransportError`
    carrying the server's reason.
    """

    def __init__(self, session_id: int, sender: ReliableSender,
                 result_event: threading.Event, result_box: dict):
        self.session_id = session_id
        self._sender = sender
        self._result_event = result_event
        self._result_box = result_box
        self.verdict: Optional[SessionVerdict] = None

    def send(self, msg: Message) -> None:
        """Stream one message (usable directly as Algorithm A's sink)."""
        self._sender.send(msg)

    def close(self, timeout: float = 30.0) -> SessionVerdict:
        """Flush, complete the fin/finack handshake and return the server's
        verdict.  Raises :class:`ReliableTransportError` if the stream
        could not be completed or the server never produced a result."""
        self._sender.close(timeout=timeout)
        # the result frame precedes the finack on the wire, so it has
        # already been captured by the sender's reader thread
        if not self._result_event.wait(timeout=1.0):
            raise ReliableTransportError(
                f"session {self.session_id}: server acknowledged the stream "
                "but sent no result frame")
        d = self._result_box["frame"]
        self.verdict = SessionVerdict(
            session=d.get("session", self.session_id),
            state=d.get("state", "unknown"),
            violations=d.get("violations", 0),
            counterexamples=tuple(d.get("counterexamples") or ()),
            sound=bool(d.get("sound", False)),
            analyzed=d.get("analyzed", 0),
            error=d.get("error"),
        )
        return self.verdict

    def abort(self) -> None:
        """Drop the connection without the close handshake (the server
        fails the session with ``connection lost``)."""
        with self._sender._sock_lock:
            sock = self._sender._sock
            try:
                # shutdown, not close: the sender's ack reader holds a
                # makefile reference, so a bare close would be deferred
                # until that thread exits -- which it only does on EOF
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    def __enter__(self) -> "AttachedSession":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def attach(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    n_threads: int,
    initial: Mapping[VarName, Any],
    spec: Optional[str] = None,
    program: str = "unknown",
    fault_tolerant: bool = False,
    config: Optional[RetransmitConfig] = None,
    connect_timeout: float = 10.0,
) -> AttachedSession:
    """Open an analysis session on a running ``repro serve`` daemon.

    Raises :class:`ServerRejected` when the server refuses (capacity,
    shutdown, invalid spec/initial combination) — an explicit answer, by
    design, rather than a hang.
    """
    hello = Hello(mode="attach", program=program, n_threads=n_threads,
                  initial={str(k): v for k, v in initial.items()},
                  spec=spec, fault_tolerant=fault_tolerant)
    sock, reply = _handshake(host, port, hello, connect_timeout)
    if reply.get("t") != "helloack" or not isinstance(
            reply.get("session"), int):
        sock.close()
        raise ProtocolError(f"expected a helloack frame, got {reply!r}")
    sock.settimeout(None)
    result_event = threading.Event()
    result_box: dict = {}

    def on_frame(d: dict) -> None:
        if d.get("t") == "result":
            result_box["frame"] = d
            result_event.set()

    sender = ReliableSender(sock=sock, config=config, on_frame=on_frame)
    return AttachedSession(reply["session"], sender, result_event, result_box)


def fetch_status(host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 10.0) -> dict:
    """One status round-trip: server health plus every session record."""
    sock, reply = _handshake(host, port, Hello(mode="status"), timeout)
    sock.close()
    if reply.get("t") != "status":
        raise ProtocolError(f"expected a status frame, got {reply!r}")
    return reply
