"""Client side of the multi-session analysis server.

The instrumented program (or the ``repro attach`` CLI) uses this module to
open a session: a synchronous one-line handshake, then the stock
:class:`~repro.observer.reliable.ReliableSender` owns the socket and
streams messages with acks, retransmission and backpressure exactly as in
the two-process pipeline.  Closing the session completes the fin/finack
handshake and returns the server's verdicts.

With a :class:`ReconnectPolicy` the session also survives the *connection*
dying: every sent message is buffered until the server checkpoints it
(``ckpt`` frames prune the buffer), and a transport failure triggers a
transparent resume — reconnect with capped exponential backoff, present
the resume token, and idempotently resend everything past the server's
delivered count.  The server re-acks replayed duplicates, so the stream
the analysis sees is exactly-once regardless of how many times the wire
dropped.

Usage::

    from repro.server import attach

    with attach(port=4040, n_threads=2, initial={"x": -1, "y": 0, "z": 0},
                spec=XYZ_PROPERTY, program="xyz") as session:
        run_program(xyz_program(), scheduler, sink=session.send)
    print(session.verdict.counterexamples)
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Union

from ..core.events import Message, VarName
from ..obs import metrics as _metrics
from ..observer.reliable import (
    ReliableSender,
    ReliableTransportError,
    RetransmitConfig,
)
from .protocol import Hello, ProtocolError, encode_frame, read_frame_line

__all__ = ["ServerRejected", "ResultTimeout", "ReconnectPolicy",
           "SessionVerdict", "AttachedSession", "attach", "fetch_status"]

_C_RECONNECTS = _metrics.REGISTRY.counter(
    "client.reconnects", unit="reconnects",
    help="successful resume handshakes after a dropped connection")
_C_RESENT = _metrics.REGISTRY.counter(
    "client.resent_messages", unit="messages",
    help="buffered messages replayed to the server during a resume")


class ServerRejected(ConnectionError):
    """The server refused the attach; :attr:`reason` is its explanation
    (capacity, shutdown in progress, malformed hello, bad spec)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class ResultTimeout(ReliableTransportError):
    """The server acknowledged the whole stream (finack) but produced no
    ``result`` frame within the caller's timeout."""


@dataclass(frozen=True)
class ReconnectPolicy:
    """Re-attach behavior after a transport failure.

    Attributes:
        max_attempts: resume attempts per failure before giving up and
            re-raising the original transport error.
        backoff / backoff_cap: capped exponential delay before each
            attempt (``backoff * 2**n``, at most ``backoff_cap``).
        connect_timeout: per-attempt dial + handshake budget.
    """

    max_attempts: int = 6
    backoff: float = 0.1
    backoff_cap: float = 2.0
    connect_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoffs must be >= 0")
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be > 0")


@dataclass(frozen=True)
class SessionVerdict:
    """The server's final word on one session."""

    session: int
    state: str
    violations: int
    counterexamples: tuple[str, ...] = ()
    sound: bool = True
    analyzed: int = 0
    final_clocks: tuple[tuple[int, ...], ...] = ()
    error: Optional[str] = None
    #: Per-engine verdict documents (:meth:`EngineVerdict.to_json` shape),
    #: in engine order; empty when talking to a pre-bus server.
    engines: tuple[dict, ...] = ()

    @property
    def ok(self) -> bool:
        """Finished cleanly with no predicted violation."""
        return self.state == "finished" and self.violations == 0


def _handshake(host: str, port: int, hello: Hello,
               timeout: float) -> tuple[socket.socket, dict]:
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.sendall(encode_frame(hello.to_frame()))
        reply = read_frame_line(sock)
    except BaseException:
        sock.close()
        raise
    kind = reply.get("t")
    if kind == "reject":
        sock.close()
        raise ServerRejected(reply.get("reason", "rejected (no reason given)"))
    return sock, reply


class AttachedSession:
    """A live session: ``send`` messages, ``close`` for the verdict.

    Create via :func:`attach`.  The underlying reliable sender enforces
    the bounded in-flight window, so a slow server backpressures the
    instrumented program instead of buffering without bound; a server-side
    overload or failure surfaces as :class:`ReliableTransportError`
    carrying the server's reason.

    With a reconnect policy, transport failures inside :meth:`send` and
    :meth:`close` trigger a transparent resume instead; only a server-side
    reject of the resume (session failed, token expired) re-raises the
    original error.  ``send``/``close`` remain single-caller: the resume
    buffer assumes the instrumented program streams from one thread, as
    Algorithm A's sink does.
    """

    def __init__(self, session_id: int, sender: ReliableSender, *,
                 host: str = "", port: int = 0, token: str = "",
                 epoch: int = 1,
                 reconnect: Optional[ReconnectPolicy] = None,
                 config: Optional[RetransmitConfig] = None):
        self.session_id = session_id
        self._sender = sender
        self._host, self._port = host, port
        self._token, self.epoch = token, epoch
        self._policy = reconnect
        self._config = config
        self._lock = threading.Lock()
        self._buffer: deque[tuple[int, Message]] = deque()
        self._seq = 0
        self._result_event = threading.Event()
        self._result_box: dict = {}
        self.reconnects = 0
        self.verdict: Optional[SessionVerdict] = None

    # Called from each sender's ack-reader thread with reverse frames the
    # transport itself does not consume.
    def _on_frame(self, d: dict) -> None:
        kind = d.get("t")
        if kind == "result":
            self._result_box["frame"] = d
            self._result_event.set()
        elif kind == "ckpt":
            n = d.get("n")
            if isinstance(n, int):
                with self._lock:
                    while self._buffer and self._buffer[0][0] < n:
                        self._buffer.popleft()

    def send(self, msg: Message) -> None:
        """Stream one message (usable directly as Algorithm A's sink)."""
        if self._policy is not None:
            with self._lock:
                self._buffer.append((self._seq, msg))
        self._seq += 1
        try:
            self._sender.send(msg)
        except (ReliableTransportError, OSError) as exc:
            # _reattach replays the buffer — this message included — or
            # raises; either way delivery is settled when it returns
            self._reattach(exc)

    def close(self, timeout: float = 30.0) -> SessionVerdict:
        """Flush, complete the fin/finack handshake and return the server's
        verdict.  Raises :class:`ReliableTransportError` if the stream
        could not be completed, :class:`ResultTimeout` if the server
        acknowledged it but never produced a result frame."""
        attempts = self._policy.max_attempts if self._policy else 1
        for _ in range(max(1, attempts)):
            try:
                self._sender.close(timeout=timeout)
                break
            except (ReliableTransportError, OSError) as exc:
                self._reattach(exc)   # raises when resume is impossible
        else:
            raise ReliableTransportError(
                f"session {self.session_id}: close did not complete after "
                f"{attempts} resume attempts")
        # the result frame precedes the finack on the wire, so it normally
        # has already been captured by the sender's reader thread; the wait
        # honors the caller's own budget
        if not self._result_event.wait(timeout=timeout):
            raise ResultTimeout(
                f"session {self.session_id}: server acknowledged the stream "
                f"but sent no result frame within {timeout}s")
        d = self._result_box["frame"]
        self.verdict = SessionVerdict(
            session=d.get("session", self.session_id),
            state=d.get("state", "unknown"),
            violations=d.get("violations", 0),
            counterexamples=tuple(d.get("counterexamples") or ()),
            sound=bool(d.get("sound", False)),
            analyzed=d.get("analyzed", 0),
            final_clocks=tuple(tuple(c) for c in d.get("final_clocks") or ()),
            error=d.get("error"),
            engines=tuple(d.get("engines") or ()),
        )
        return self.verdict

    def _reattach(self, cause: BaseException) -> None:
        """Resume the session on a fresh connection, replaying the unpruned
        buffer.  Re-raises ``cause`` when reconnecting is off, rejected by
        the server, or still failing after the policy's attempts."""
        policy = self._policy
        if policy is None:
            raise cause
        for attempt in range(policy.max_attempts):
            time.sleep(min(policy.backoff * (2 ** attempt),
                           policy.backoff_cap))
            hello = Hello(mode="resume", session=self.session_id,
                          token=self._token, epoch=self.epoch)
            try:
                sock, reply = _handshake(self._host, self._port, hello,
                                         policy.connect_timeout)
            except ServerRejected as rej:
                # the server's answer is final — and `cause` usually
                # carries the more informative server-side err reason
                raise cause from rej
            except (OSError, ProtocolError):
                continue
            delivered = reply.get("delivered")
            epoch = reply.get("epoch")
            if (reply.get("t") != "helloack"
                    or not isinstance(delivered, int)
                    or not isinstance(epoch, int)):
                sock.close()
                continue
            sock.settimeout(None)
            self._poison(self._sender)
            sender = ReliableSender(sock=sock, config=self._config,
                                    on_frame=self._on_frame,
                                    first_seq=delivered)
            self.epoch = epoch
            with self._lock:
                while self._buffer and self._buffer[0][0] < delivered:
                    self._buffer.popleft()
                replay = list(self._buffer)
            try:
                for _seq, msg in replay:
                    sender.send(msg)
            except (ReliableTransportError, OSError):
                self._poison(sender)
                continue
            self._sender = sender
            self.reconnects += 1
            if _metrics.ENABLED:
                _C_RECONNECTS.inc()
                if replay:
                    _C_RESENT.inc(len(replay))
            return
        raise cause

    @staticmethod
    def _poison(sender: ReliableSender) -> None:
        """Make an abandoned sender's threads exit: kill its socket."""
        with sender._sock_lock:
            try:
                sender._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sender._sock.close()
            except OSError:
                pass

    def abort(self) -> None:
        """Drop the connection without the close handshake (the server
        fails the session with ``connection lost`` — or parks it for
        resume when the server runs with a resume window)."""
        self._policy = None
        self._poison(self._sender)

    def __enter__(self) -> "AttachedSession":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def attach(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    n_threads: int,
    initial: Mapping[VarName, Any],
    spec: Optional[str] = None,
    program: str = "unknown",
    fault_tolerant: bool = False,
    engines: Optional[Sequence[str]] = None,
    config: Optional[RetransmitConfig] = None,
    connect_timeout: float = 10.0,
    reconnect: Union[ReconnectPolicy, bool, None] = None,
) -> AttachedSession:
    """Open an analysis session on a running ``repro serve`` daemon.

    Raises :class:`ServerRejected` when the server refuses (capacity,
    shutdown, invalid spec/initial combination) — an explicit answer, by
    design, rather than a hang.

    ``reconnect`` (a :class:`ReconnectPolicy`, or ``True`` for the
    defaults) makes the session survive dropped connections by resuming
    with the server-issued token; it only helps against servers running
    with ``resume_timeout > 0``, which also emit the ``ckpt`` frames that
    bound the client-side resend buffer.
    """
    if reconnect is True:
        reconnect = ReconnectPolicy()
    elif reconnect is False:
        reconnect = None
    hello = Hello(mode="attach", program=program, n_threads=n_threads,
                  initial={str(k): v for k, v in initial.items()},
                  spec=spec, fault_tolerant=fault_tolerant,
                  engines=tuple(engines or ()))
    sock, reply = _handshake(host, port, hello, connect_timeout)
    if reply.get("t") != "helloack" or not isinstance(
            reply.get("session"), int):
        sock.close()
        raise ProtocolError(f"expected a helloack frame, got {reply!r}")
    sock.settimeout(None)
    session = AttachedSession(
        reply["session"],
        sender=None,  # type: ignore[arg-type]  # set below, same statement
        host=host, port=port,
        token=reply.get("token") or "",
        epoch=reply.get("epoch") or 1,
        reconnect=reconnect, config=config)
    session._sender = ReliableSender(sock=sock, config=config,
                                     on_frame=session._on_frame)
    return session


def fetch_status(host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: float = 10.0) -> dict:
    """One status round-trip: server health plus every session record.

    ``port`` is required (keyword or positional): there is no default
    daemon port, and dialing port 0 can never reach one.  Against a fleet
    router the reply additionally carries a ``fleet`` section with
    per-shard health (docs/FLEET.md).
    """
    if not port:
        raise ValueError(
            "fetch_status needs the daemon's port, e.g. "
            "fetch_status(port=4040) — there is no default and port 0 is "
            "never routable")
    sock, reply = _handshake(host, port, Hello(mode="status"), timeout)
    sock.close()
    if reply.get("t") != "status":
        raise ProtocolError(f"expected a status frame, got {reply!r}")
    return reply
