"""Deterministic schedulers over cooperative programs.

``(program, scheduler)`` fully determines an execution, which is what the
experiments need: exact replay of the paper's observed runs (Figs. 5 and 6),
seeded random schedules for detection-rate sweeps (E4), and exhaustive
enumeration of *all* interleavings as ground truth for feasibility of
predicted runs.

The scheduler executes operations atomically and in a single Python thread,
so the sequential-consistency assumption of Section 2.1 holds by
construction.  Every operation is fed to an
:class:`~repro.core.algorithm_a.AlgorithmA` instance, i.e. the program runs
*instrumented* exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator, Mapping, Optional, Sequence

from ..core.algorithm_a import AlgorithmA, RelevancePredicate, relevant_writes
from ..core.computation import Computation
from ..core.events import Event, EventKind, Message, VarName
from .program import (Acquire, Internal, Join, Notify, Op, Program, Read,
                      Release, Spawn, Wait, Write)

__all__ = [
    "ExecutionResult",
    "DeadlockError",
    "StepLimitExceeded",
    "Scheduler",
    "FixedScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "PCTScheduler",
    "run_program",
    "explore_all",
]


class DeadlockError(RuntimeError):
    """No runnable thread remains but some threads have not finished."""

    def __init__(self, blocked: Mapping[int, str]):
        self.blocked = dict(blocked)
        detail = ", ".join(f"T{t + 1}: {why}" for t, why in sorted(self.blocked.items()))
        super().__init__(f"deadlock — all live threads blocked ({detail})")


class StepLimitExceeded(RuntimeError):
    """The execution did not terminate within ``max_steps`` operations."""


@dataclass
class ExecutionResult:
    """Everything recorded about one instrumented execution."""

    program_name: str
    n_threads: int
    #: All events in execution (total) order, including irrelevant ones.
    events: list[Event]
    #: Messages emitted by Algorithm A (relevant events only), emission order.
    messages: list[Message]
    #: Thread index chosen at each step (the schedule actually realized).
    schedule: list[int]
    #: Final shared store.
    final_store: dict[VarName, Any]
    #: Initial shared store (for state reconstruction).
    initial_store: dict[VarName, Any]
    #: The instrumentation state, for clock introspection in tests.
    algorithm: AlgorithmA = field(repr=False, default=None)

    def computation(self) -> Computation:
        """Ground-truth causal partial order of this execution (§2.2)."""
        return Computation(self.events)

    def state_sequence(self, variables: Sequence[VarName]) -> list[tuple]:
        """Global states over ``variables`` along the *observed* run: the
        initial state followed by the state after each write of one of them.

        This is the flat view a JPaX-style single-trace checker sees.
        """
        store = dict(self.initial_store)
        out = [tuple(store[v] for v in variables)]
        for e in self.events:
            if e.kind.is_write and e.var in set(variables):
                store[e.var] = e.value
                out.append(tuple(store[v] for v in variables))
        return out

    def relevant_state_sequence(self, variables: Sequence[VarName]) -> list[tuple]:
        """States after each *relevant* event (what the observer's own copy
        of the observed run looks like)."""
        store = dict(self.initial_store)
        out = [tuple(store[v] for v in variables)]
        for m in self.messages:
            e = m.event
            if e.kind.is_write and e.var in set(variables):
                store[e.var] = e.value
            out.append(tuple(store[v] for v in variables))
        return out


class Scheduler:
    """Base class: picks which runnable thread advances at each step."""

    def pick(self, runnable: Sequence[int], step: int) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Called at the start of each execution (stateful schedulers)."""


class FixedScheduler(Scheduler):
    """Replays an explicit choice sequence, then falls back deterministically.

    Used for exact figure replays and as the workhorse of
    :func:`explore_all`.  If a prescribed choice is not runnable at its step,
    a ``ValueError`` is raised (the schedule is infeasible) unless
    ``strict=False``, in which case the fallback rule applies.
    """

    def __init__(self, choices: Sequence[int], strict: bool = True):
        self._choices = list(choices)
        self._strict = strict

    def pick(self, runnable: Sequence[int], step: int) -> int:
        if step < len(self._choices):
            want = self._choices[step]
            if want in runnable:
                return want
            if self._strict:
                raise ValueError(
                    f"schedule infeasible: step {step} wants T{want + 1}, "
                    f"runnable = {[t + 1 for t in runnable]}"
                )
        return runnable[0]


class RoundRobinScheduler(Scheduler):
    """Cycles through threads, giving each ``quantum`` consecutive steps."""

    def __init__(self, quantum: int = 1):
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self._quantum = quantum
        self._current = 0
        self._used = 0

    def reset(self) -> None:
        self._current = 0
        self._used = 0

    def pick(self, runnable: Sequence[int], step: int) -> int:
        if self._current in runnable and self._used < self._quantum:
            self._used += 1
            return self._current
        # rotate to the next runnable thread after _current
        candidates = sorted(runnable)
        nxt = next((t for t in candidates if t > self._current), candidates[0])
        self._current = nxt
        self._used = 1
        return nxt


class RandomScheduler(Scheduler):
    """Uniformly random runnable thread at each step, from a seeded RNG.

    Models an adversarial/unknown JVM scheduler while staying reproducible.
    """

    def __init__(self, seed: int = 0):
        import random

        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        import random

        self._rng = random.Random(self._seed)

    def pick(self, runnable: Sequence[int], step: int) -> int:
        return self._rng.choice(list(runnable))


class PCTScheduler(Scheduler):
    """Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS'10).

    Threads get random distinct priorities; the scheduler always runs the
    highest-priority runnable thread, except at ``depth - 1`` pre-chosen
    step indices where the running thread's priority drops below everyone
    else's.  For a bug of *depth* d (d ordering constraints needed to
    trigger it), one run finds it with probability >= 1/(n · k^(d-1)) —
    often far better than uniform random scheduling at flushing out rare
    interleavings, which makes it a natural extra baseline for experiment
    E4's detection-rate comparisons.

    Args:
        seed: RNG seed (priorities and change points are drawn from it).
        depth: bug depth d; ``depth - 1`` priority change points are used.
        expected_steps: estimated execution length k, the range from which
            change points are drawn.
    """

    def __init__(self, seed: int = 0, depth: int = 2, expected_steps: int = 64):
        import random

        if depth < 1:
            raise ValueError("depth must be >= 1")
        if expected_steps < 1:
            raise ValueError("expected_steps must be >= 1")
        self._seed = seed
        self._depth = depth
        self._k = expected_steps
        self.reset()

    def reset(self) -> None:
        import random

        self._rng = random.Random(self._seed)
        # Priorities are assigned lazily, high to low, as threads appear.
        self._priorities: dict[int, float] = {}
        self._change_points = sorted(
            self._rng.sample(range(self._k), min(self._depth - 1, self._k))
        )
        self._low_counter = 0.0

    def _priority(self, thread: int) -> float:
        p = self._priorities.get(thread)
        if p is None:
            p = self._rng.random() + 1.0  # initial priorities in (1, 2)
            self._priorities[thread] = p
        return p

    def pick(self, runnable: Sequence[int], step: int) -> int:
        chosen = max(runnable, key=self._priority)
        if self._change_points and step == self._change_points[0]:
            self._change_points.pop(0)
            # demote below every priority ever assigned
            self._low_counter -= 1.0
            self._priorities[chosen] = self._low_counter
            chosen = max(runnable, key=self._priority)
        return chosen


@dataclass
class _ThreadState:
    """Per-thread scheduler state with *op prefetching*.

    The next operation a thread will perform is fetched eagerly (the
    generator is advanced right after the previous op executes), so the
    scheduler always knows whether a thread has more work, whether its next
    op is a blocked Acquire, etc.  One scheduling step == one event, and
    generator exhaustion costs no step — which keeps interleaving counts
    exact (``explore_all`` relies on this).
    """

    gen: Generator[Op, Any, None]
    next_op: Optional[Op] = None  # prefetched op; None while waiting/finished
    finished: bool = False
    waiting_on: Optional[VarName] = None  # condition being waited on
    woken: bool = False  # notified; must emit WAKE on next schedule
    primed: bool = False  # generator advanced at least once
    spawned: bool = False  # dynamically created via Spawn (emits exit marker)


def run_program(
    program: Program,
    scheduler: Scheduler,
    relevance: Optional[RelevancePredicate] = None,
    max_steps: int = 100_000,
    sink: Optional[Callable[[Message], None]] = None,
    record_choices: Optional[list[tuple[tuple[int, ...], int]]] = None,
    sync_only_clocks: bool = False,
    clock_backend: str = "flat",
) -> ExecutionResult:
    """Execute ``program`` under ``scheduler`` with Algorithm A attached.

    Args:
        relevance: Algorithm A's relevant-set predicate; defaults to JMPaX's
            rule over ``program.default_relevance_vars()``.
        max_steps: guard against non-terminating interleavings.
        sink: streamed to the observer as messages are emitted (online mode).
        record_choices: if given, appends ``(runnable_tuple, chosen)`` per
            step — the hook :func:`explore_all` uses to branch.
        clock_backend: Algorithm A's clock representation — ``"flat"``,
            ``"tree"`` or ``"auto"`` (see ``docs/PERFORMANCE.md``); never
            changes emitted messages, only the cost of computing them.

    Raises:
        DeadlockError: if all unfinished threads are blocked (this is itself
            a reportable analysis outcome; see ``analysis`` tests).
        StepLimitExceeded: if the execution exceeds ``max_steps``.
    """
    scheduler.reset()
    if relevance is None:
        relevance = relevant_writes(program.default_relevance_vars())
    algo = AlgorithmA(
        program.n_threads,
        relevance=relevance,
        sink=sink,
        dynamic_threads=True,  # Spawn ops may add threads mid-run
        sync_only_clocks=sync_only_clocks,
        clock_backend=clock_backend,
    )

    store: dict[VarName, Any] = dict(program.initial)
    lock_owner: dict[VarName, Optional[int]] = {}
    # Pending notifications per condition.  Notify credits are *sticky*
    # (semaphore-like): a Wait that arrives after the Notify still proceeds.
    # This deliberately deviates from Java's lost-notification semantics so
    # that workloads terminate deterministically; the §3.1 MVC treatment
    # (write before notify, write after wake) is unaffected.
    notify_credits: dict[VarName, int] = {}
    threads = [_ThreadState(gen=g) for g in program.spawn()]
    events: list[Event] = []
    schedule: list[int] = []

    def record(msg_kind: EventKind, thread: int, var=None, value=None, label=None) -> None:
        msg = algo.process(thread, msg_kind, var, value, label)
        events.append(
            Event(
                thread=thread,
                seq=algo.events_of(thread),
                kind=msg_kind,
                var=var if msg_kind.is_access else None,
                value=value,
                relevant=msg is not None,
                label=label,
            )
        )

    def prefetch(i: int, send_value: Any, first: bool = False) -> None:
        """Advance the generator to its next yield; mark finished on return.

        Code between yields touches no shared state (that is the contract of
        the Op protocol), so running it eagerly is unobservable.
        """
        ts = threads[i]
        first = first or not ts.primed
        ts.primed = True
        try:
            op = next(ts.gen) if first else ts.gen.send(send_value)
        except StopIteration:
            ts.next_op = None
            ts.finished = True
            if ts.spawned:
                # Exit marker: write-weight event on the exit dummy so a
                # parent's Join happens-after everything the child did.
                record(EventKind.NOTIFY, i, var=f"__exit:{i}",
                       label=f"exit(T{i + 1})")
            return
        if isinstance(op, Wait):
            # Entering a wait generates no event, so it is not a schedulable
            # step: the thread blocks immediately; its wake step emits the
            # §3.1 WAKE write and resumes it.
            ts.waiting_on = op.cond
            ts.next_op = None
        else:
            ts.next_op = op

    def runnable_threads() -> list[int]:
        out = []
        for i, ts in enumerate(threads):
            if ts.finished:
                continue
            if ts.waiting_on is not None:
                if ts.woken or notify_credits.get(ts.waiting_on, 0) > 0:
                    out.append(i)
                continue
            op = ts.next_op
            if isinstance(op, Acquire):
                owner = lock_owner.get(op.lock)
                if owner is not None and owner != i:
                    continue  # blocked; owner == i falls through to raise
            elif isinstance(op, Join):
                if not (0 <= op.thread < len(threads)):
                    out.append(i)  # let advance raise a clear error
                elif not threads[op.thread].finished:
                    continue  # blocked on the child
            out.append(i)
        return out

    def advance(i: int) -> None:
        ts = threads[i]
        # A woken waiter's step emits the post-notification write (§3.1).
        if ts.waiting_on is not None:
            cond = ts.waiting_on
            if not ts.woken:
                # Runnable only because a sticky notify credit is available.
                notify_credits[cond] -= 1
            ts.woken = False
            ts.waiting_on = None
            record(EventKind.WAKE, i, var=cond, label=f"wake({cond})")
            prefetch(i, None)
            return
        op = ts.next_op
        if isinstance(op, Read):
            if op.var not in store:
                raise KeyError(
                    f"T{i + 1} read of undeclared shared variable {op.var!r}"
                )
            value = store[op.var]
            record(EventKind.READ, i, var=op.var, value=value)
            prefetch(i, value)
        elif isinstance(op, Write):
            if op.var not in store:
                raise KeyError(
                    f"T{i + 1} write of undeclared shared variable {op.var!r}"
                )
            store[op.var] = op.value
            record(EventKind.WRITE, i, var=op.var, value=op.value,
                   label=op.label or f"{op.var}={op.value!r}")
            prefetch(i, None)
        elif isinstance(op, Internal):
            record(EventKind.INTERNAL, i, label=op.label)
            prefetch(i, None)
        elif isinstance(op, Acquire):
            owner = lock_owner.get(op.lock)
            if owner == i:
                raise RuntimeError(f"T{i + 1} re-acquiring held lock {op.lock!r}")
            assert owner is None, "scheduler picked a blocked thread"
            lock_owner[op.lock] = i
            record(EventKind.ACQUIRE, i, var=op.lock, label=f"acquire({op.lock})")
            prefetch(i, None)
        elif isinstance(op, Release):
            if lock_owner.get(op.lock) != i:
                raise RuntimeError(
                    f"T{i + 1} releasing lock {op.lock!r} it does not hold"
                )
            lock_owner[op.lock] = None
            record(EventKind.RELEASE, i, var=op.lock, label=f"release({op.lock})")
            prefetch(i, None)
        elif isinstance(op, Notify):
            # notifyAll semantics on current waiters; if none, bank a sticky
            # credit so a later Wait proceeds (see notify_credits above).
            record(EventKind.NOTIFY, i, var=op.cond, label=f"notify({op.cond})")
            woke_any = False
            for other in threads:
                if other.waiting_on == op.cond and not other.woken:
                    other.woken = True
                    woke_any = True
            if not woke_any:
                notify_credits[op.cond] = notify_credits.get(op.cond, 0) + 1
            prefetch(i, None)
        elif isinstance(op, Spawn):
            child = len(threads)
            record(EventKind.NOTIFY, i, var=f"__spawn:{child}",
                   label=f"spawn(T{child + 1})")
            # The child starts life 'woken' on the spawn dummy: its first
            # scheduled step emits the matching WAKE (post-spawn write,
            # §3.1 treatment) and then prefetches its first op.
            threads.append(_ThreadState(
                gen=op.body(),
                waiting_on=f"__spawn:{child}",
                woken=True,
                spawned=True,
            ))
            prefetch(i, child)  # the parent receives the child's index
        elif isinstance(op, Join):
            if not (0 <= op.thread < len(threads)):
                raise ValueError(f"T{i + 1} joining unknown thread {op.thread}")
            target = threads[op.thread]
            if not target.spawned:
                raise ValueError(
                    f"T{i + 1} joining static thread {op.thread}; only "
                    f"Spawn-created threads have exit markers"
                )
            assert target.finished, "scheduler picked a blocked Join"
            record(EventKind.WAKE, i, var=f"__exit:{op.thread}",
                   label=f"join(T{op.thread + 1})")
            prefetch(i, None)
        else:  # pragma: no cover - Wait is consumed in prefetch
            raise TypeError(f"unknown operation {op!r}")

    for i in range(len(threads)):
        prefetch(i, None, first=True)

    steps = 0
    while True:
        runnable = runnable_threads()
        if not runnable:
            if all(ts.finished for ts in threads):
                break
            blocked = {}
            for i, ts in enumerate(threads):
                if ts.finished:
                    continue
                if ts.waiting_on is not None:
                    blocked[i] = f"waiting on {ts.waiting_on!r}"
                elif isinstance(ts.next_op, Acquire):
                    lock = ts.next_op.lock
                    blocked[i] = (
                        f"acquire({lock!r}) held by T{lock_owner.get(lock, -1) + 1}"
                    )
                elif isinstance(ts.next_op, Join):
                    blocked[i] = f"join(T{ts.next_op.thread + 1})"

                else:  # pragma: no cover - cannot happen
                    blocked[i] = "unknown"
            raise DeadlockError(blocked)
        if steps >= max_steps:
            raise StepLimitExceeded(
                f"{program.name}: exceeded {max_steps} steps "
                f"(livelock or max_steps too small)"
            )
        chosen = scheduler.pick(runnable, steps)
        if chosen not in runnable:
            raise ValueError(
                f"scheduler picked non-runnable thread T{chosen + 1} at step {steps}"
            )
        if record_choices is not None:
            record_choices.append((tuple(runnable), chosen))
        schedule.append(chosen)
        advance(chosen)
        steps += 1

    final_n = len(threads)
    return ExecutionResult(
        program_name=program.name,
        n_threads=final_n,
        events=events,
        messages=_pad_clocks(algo.emitted, final_n),
        schedule=schedule,
        final_store=store,
        initial_store=dict(program.initial),
        algorithm=algo,
    )


def _pad_clocks(messages: list[Message], width: int) -> list[Message]:
    """Pad message clocks to the final thread count.

    Threads created mid-run (Spawn) make earlier messages narrower than the
    final MVC width; zero components carry exactly "no knowledge of that
    thread", so padding preserves the Theorem 3 order while letting fixed-
    width observer structures (CausalityIndex, lattices) ingest the stream.
    """
    out: list[Message] = []
    for m in messages:
        if m.clock.width == width:
            out.append(m)
        else:
            from ..core.vectorclock import VectorClock

            padded = VectorClock(
                tuple(m.clock) + (0,) * (width - m.clock.width)
            )
            out.append(Message(event=m.event, thread=m.thread, clock=padded,
                               emit_index=m.emit_index))
    return out


def explore_all(
    program: Program,
    relevance: Optional[RelevancePredicate] = None,
    max_executions: int = 100_000,
    max_steps: int = 10_000,
) -> Iterator[ExecutionResult]:
    """Enumerate every interleaving of ``program`` (depth-first, no revisits).

    Standard stateless search: each execution is replayed from scratch under
    a :class:`FixedScheduler` prefix; at every step the set of runnable
    threads is recorded, and unexplored siblings are pushed as new prefixes.
    The number of executions is exponential in concurrency width — callers
    bound it with ``max_executions``.

    This gives the reproduction something the paper's authors could not get
    mechanically: *ground truth* on which multithreaded runs are actually
    feasible, against which the lattice's predicted runs are validated.

    Yields executions in depth-first order; the first one is the
    all-lowest-thread-first interleaving.
    """
    pending: list[list[int]] = [[]]
    produced = 0
    while pending:
        prefix = pending.pop()
        choices: list[tuple[tuple[int, ...], int]] = []
        try:
            result = run_program(
                program,
                FixedScheduler(prefix, strict=True),
                relevance=relevance,
                max_steps=max_steps,
                record_choices=choices,
            )
        except DeadlockError:
            # Deadlocked interleavings are not yielded, but the choice trace
            # recorded up to the deadlock still drives sibling branching.
            result = None
        # Branch on every decision point at or after the prefix, trying
        # alternatives *larger* than the chosen thread (chosen is always the
        # smallest runnable beyond the prefix, so this enumerates each node
        # exactly once).
        for depth in range(len(choices) - 1, len(prefix) - 1, -1):
            runnable, chosen = choices[depth]
            for alt in runnable:
                if alt > chosen:
                    pending.append([c for _, c in choices[:depth]] + [alt])
        if result is not None:
            produced += 1
            yield result
            if produced >= max_executions:
                return
