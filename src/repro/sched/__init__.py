"""Deterministic multithreading substrate (schedulers + cooperative programs).

The paper relies on the JVM to schedule threads; this package replaces it
with a reproducible scheduler so that executions can be replayed exactly,
sampled with seeds, or enumerated exhaustively (ground truth for E3/E4).
"""

from .program import (
    Acquire,
    Internal,
    Join,
    Notify,
    Op,
    Program,
    Read,
    Release,
    Spawn,
    ThreadBody,
    Wait,
    Write,
    straightline,
)
from .scheduler import (
    DeadlockError,
    ExecutionResult,
    PCTScheduler,
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    StepLimitExceeded,
    explore_all,
    run_program,
)

__all__ = [
    "Acquire",
    "Internal",
    "Join",
    "Notify",
    "Op",
    "Program",
    "Read",
    "Release",
    "Spawn",
    "ThreadBody",
    "Wait",
    "Write",
    "straightline",
    "DeadlockError",
    "ExecutionResult",
    "FixedScheduler",
    "PCTScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "StepLimitExceeded",
    "explore_all",
    "run_program",
]
