"""Programs for the deterministic multithreading substrate.

The paper instruments Java bytecode and lets the JVM schedule threads.  For a
reproducible laptop-scale testbed we additionally provide *cooperative*
multithreading: a thread body is a Python generator that yields an
:class:`Op` whenever it touches shared state and receives the result of that
operation back via ``send``.  A scheduler (`repro.sched.scheduler`) picks
which thread advances at every step, so an execution is fully determined by
``(program, schedule)`` — which is what lets the test-suite replay runs,
enumerate *all* interleavings as ground truth, and measure detection rates
over random schedules (experiment E4).

Thread body example (the landing controller's first thread)::

    def thread1():
        radio = yield Read("radio")
        approved = 0 if radio == 0 else 1
        yield Write("approved", approved)
        approved = yield Read("approved")
        if approved == 1:
            yield Write("landing", 1)

Supported operations: :class:`Read`, :class:`Write`, :class:`Internal`,
:class:`Acquire`, :class:`Release`, :class:`Notify`, :class:`Wait`.
Synchronization ops follow Section 3.1: they act on a lock/condition *shared
variable* and generate write-weight events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Mapping, Optional, Sequence

from ..core.events import VarName

__all__ = [
    "Op",
    "Read",
    "Write",
    "Internal",
    "Acquire",
    "Release",
    "Notify",
    "Wait",
    "Spawn",
    "Join",
    "ThreadBody",
    "Program",
]


class Op:
    """Base class of operations a thread may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Read(Op):
    """Read a shared variable; the scheduler sends back its current value."""

    var: VarName


@dataclass(frozen=True)
class Write(Op):
    """Write a concrete value to a shared variable."""

    var: VarName
    value: Any
    # Optional display label for figures (e.g. "landing = 1").
    label: Optional[str] = None


@dataclass(frozen=True)
class Internal(Op):
    """An event that touches no shared state (the paper's *internal*).

    Internal events never affect the causal order; they exist so workloads
    can model 'code that is not relevant' (Example 2's ``...``).
    """

    label: Optional[str] = None


@dataclass(frozen=True)
class Acquire(Op):
    """Block until the lock is free, then take it (a write of the lock var)."""

    lock: VarName


@dataclass(frozen=True)
class Release(Op):
    """Release a held lock (a write of the lock var)."""

    lock: VarName


@dataclass(frozen=True)
class Notify(Op):
    """Wake every thread waiting on the condition (writes its dummy var)."""

    cond: VarName


@dataclass(frozen=True)
class Wait(Op):
    """Block until some thread notifies the condition; on wake-up the waiter
    writes the condition's dummy variable (Section 3.1)."""

    cond: VarName


@dataclass(frozen=True)
class Spawn(Op):
    """Create a new thread running ``body`` (paper §2: "dynamically created
    and/or destroyed" threads; worked out in the authors' [28]).

    The scheduler sends back the child's thread index.  Causality: the spawn
    generates a write-weight event on a dummy shared variable and the
    child's first step generates the matching post-spawn write (§3.1's
    wait/notify treatment), so everything the parent did before the spawn
    causally precedes everything the child does.
    """

    body: "ThreadBody"


@dataclass(frozen=True)
class Join(Op):
    """Block until a dynamically spawned child (by index from :class:`Spawn`)
    has finished.

    The child's exhaustion emits a write-weight event on an exit dummy
    variable, and the join emits the matching wake event, installing
    child-everything ≺ parent-after-join.  Only valid for spawned children
    (static threads have no exit marker).
    """

    thread: int


# A thread body is a no-argument callable returning the operation generator.
ThreadBody = Callable[[], Generator[Op, Any, None]]


@dataclass
class Program:
    """A multithreaded program: initial shared store + one body per thread.

    Attributes:
        initial: initial values of the shared variables.  Variables written
            or read by threads must appear here (reading an undeclared
            variable is an error — it catches workload typos early).
        threads: thread bodies, index 0..n-1.
        relevant_vars: default set of specification variables; schedulers use
            it (via JMPaX's writes-are-relevant rule) unless overridden.
        name: for reports.
    """

    initial: Mapping[VarName, Any]
    threads: Sequence[ThreadBody]
    relevant_vars: Optional[frozenset] = None
    name: str = "program"
    # Locks that should start in the 'held-by-nobody' state; purely
    # declarative — any Acquire target is implicitly a lock.
    locks: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.threads:
            raise ValueError("program needs at least one thread")
        self.initial = dict(self.initial)
        if self.relevant_vars is not None:
            self.relevant_vars = frozenset(self.relevant_vars)

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def spawn(self) -> list[Generator[Op, Any, None]]:
        """Fresh generators for one execution (programs are re-runnable)."""
        return [body() for body in self.threads]

    def default_relevance_vars(self) -> frozenset:
        """Specification variables; all store variables if not narrowed."""
        if self.relevant_vars is not None:
            return frozenset(self.relevant_vars)
        return frozenset(self.initial)


def straightline(ops: Iterable[Op]) -> ThreadBody:
    """Build a thread body from a fixed op list (workload generators use
    this for random programs whose control flow is data-independent)."""
    ops = tuple(ops)

    def body() -> Generator[Op, Any, None]:
        for op in ops:
            yield op

    return body
