"""Static shared-state analysis for instrumented programs.

Two cooperating passes over program source, run *before* execution:

* **Soundness lint** (:mod:`.soundness`) — escape analysis over every
  function reachable from the instrumented entry points, reporting
  shared-state accesses the AST rewriter would miss or miscompile
  (aliases, closures, attribute mutation, un-instrumented helpers, …)
  as :class:`~repro.staticcheck.diagnostics.Diagnostic` findings with
  stable SC-codes and ``file:line:col`` spans.
* **Spec-relevance slicer** (:mod:`.slicer`) — computes the
  transitively-closed set of variables that can influence the
  specification (JMPaX §4.1's "extract the shared variables from the
  spec"), feeding the ``relevant_only=`` instrumentation mode.

``repro lint`` is the CLI front door; docs/STATIC.md holds the
diagnostic catalogue.
"""

from .diagnostics import (
    CATALOGUE,
    Diagnostic,
    DiagnosticSpec,
    JSON_SCHEMA_VERSION,
    LintReport,
    Severity,
)
from .slicer import (
    SliceResult,
    close_slice,
    minilang_flows,
    python_flows,
    slice_minilang,
    slice_python_functions,
    spec_variables,
)
from .soundness import (
    lint_function,
    lint_minilang_source,
    lint_path,
    lint_paths,
    lint_python_source,
)

__all__ = [
    "CATALOGUE",
    "Diagnostic",
    "DiagnosticSpec",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "Severity",
    "SliceResult",
    "close_slice",
    "minilang_flows",
    "python_flows",
    "slice_minilang",
    "slice_python_functions",
    "spec_variables",
    "lint_function",
    "lint_minilang_source",
    "lint_path",
    "lint_paths",
    "lint_python_source",
]
