"""Static shared-state analysis for instrumented programs.

Two cooperating passes over program source, run *before* execution:

* **Soundness lint** (:mod:`.soundness`) — escape analysis over every
  function reachable from the instrumented entry points, reporting
  shared-state accesses the AST rewriter would miss or miscompile
  (aliases, closures, attribute mutation, un-instrumented helpers, …)
  as :class:`~repro.staticcheck.diagnostics.Diagnostic` findings with
  stable SC-codes and ``file:line:col`` spans.
* **Spec-relevance slicer** (:mod:`.slicer`) — computes the
  transitively-closed set of variables that can influence the
  specification (JMPaX §4.1's "extract the shared variables from the
  spec"), feeding the ``relevant_only=`` instrumentation mode.
* **Spec consistency checker** (:mod:`.speccheck`) — bounded
  satisfiability / falsifiability / vacuity analysis of specification
  formulas and ``pattern:STEPS`` engine selections, with synthesized
  witness and counter traces (SC3xx codes, ``repro spec check``).

``repro lint`` / ``repro spec check`` are the CLI front doors;
docs/STATIC.md and docs/SPECCHECK.md hold the diagnostic catalogues.
"""

from .diagnostics import (
    CATALOGUE,
    Diagnostic,
    DiagnosticSpec,
    JSON_SCHEMA_VERSION,
    LintReport,
    Severity,
)
from .slicer import (
    SliceResult,
    close_slice,
    minilang_flows,
    python_flows,
    slice_minilang,
    slice_python_functions,
    spec_variables,
)
from .soundness import (
    lint_function,
    lint_minilang_source,
    lint_path,
    lint_paths,
    lint_python_source,
)
from .speccheck import (
    STRICT_REJECT_WARNS,
    SpecCheckOptions,
    SpecCheckReport,
    SpecCheckResult,
    SpecSource,
    WitnessTrace,
    check_formula,
    check_pattern,
    check_selection,
    check_spec_file,
    check_spec_text,
    scan_python_specs,
    strict_reject_reason,
    validate_selection_syntax,
    validate_spec_syntax,
)

__all__ = [
    "CATALOGUE",
    "Diagnostic",
    "DiagnosticSpec",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "Severity",
    "SliceResult",
    "close_slice",
    "minilang_flows",
    "python_flows",
    "slice_minilang",
    "slice_python_functions",
    "spec_variables",
    "lint_function",
    "lint_minilang_source",
    "lint_path",
    "lint_paths",
    "lint_python_source",
    "STRICT_REJECT_WARNS",
    "SpecCheckOptions",
    "SpecCheckReport",
    "SpecCheckResult",
    "SpecSource",
    "WitnessTrace",
    "check_formula",
    "check_pattern",
    "check_selection",
    "check_spec_file",
    "check_spec_text",
    "scan_python_specs",
    "strict_reject_reason",
    "validate_selection_syntax",
    "validate_spec_syntax",
]
