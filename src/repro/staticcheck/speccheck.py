"""Static consistency, vacuity, and witness synthesis for specifications.

``repro spec check`` — the pre-flight pass ROADMAP open item 2 asks for:
prove, *before* a fleet of sessions monitors a spec, that it is

(a) **satisfiable** within a bounded horizon,
(b) **falsifiable** (not trivially true), and
(c) **non-vacuous** — no subformula that never matters,

and ship evidence with every verdict: a concrete witness trace for
satisfiable specs, a counter-trace for falsifiable ones, both printed in
the same step/valuation format the predictor's counterexamples use and
re-checked through :class:`~repro.logic.monitor.Monitor` before being
reported.

Method (zero dependencies — the tableau/SMT design of the
Consistency_Check line of work adapted to small-scope enumeration):

* **Value domain.** Per-variable candidate values are derived from the
  formula's integer constants: ``{c-1, c, c+1}`` for each constant ``c``
  plus ``{0, 1}``.  Comparisons over integers are order-theoretic, so any
  satisfiable/falsifiable atom valuation is realized by values adjacent
  to a constant (documented caveat: non-linear arithmetic like
  ``x // 3 == 2`` may need ``--values`` to extend the domain).
* **Representative states.**  The full product of candidate values is
  deduplicated by *atom signature* (the truth vector of the formula's
  comparisons): monitor transitions depend only on atom values, so one
  concrete state per signature suffices — and doubles as the concrete
  valuation printed in witnesses.
* **Past fragment** (monitorable online): the synthesized monitor is a
  finite automaton over ``MonitorState``; exhaustive BFS over
  (monitor-state × representative-state) transitions decides
  satisfiability (an all-True path exists), falsifiability (a False
  verdict is reachable) and per-subformula constancy *exactly* within
  the explored domain.  Witness = a longest all-True path up to the
  horizon; counter-trace = a shortest path ending in a False verdict.
* **Future fragment**: bounded lasso enumeration ``u · vω`` over the
  representative states, evaluated by
  :func:`~repro.logic.lasso.evaluate_lasso` (satisfiable) and its
  negation (falsifiable).
* **Vacuity** — the standard mutation check: subformula ``g`` never
  matters iff ``φ[g←true] ≡ φ ≡ φ[g←false]``; equivalence is decided by
  a product-automaton BFS (past) or over the enumerated lassos (future).

Findings are :class:`~repro.staticcheck.diagnostics.Diagnostic` values in
the SC3xx range; docs/SPECCHECK.md holds the catalogue and the
bounded-horizon caveat.
"""

from __future__ import annotations

import itertools
import os
import re
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..logic.ast import (
    Always,
    And,
    Atom,
    BinArith,
    Bool,
    Compare,
    Const,
    End,
    Eventually,
    Expr,
    Formula,
    Historically,
    Iff,
    Implies,
    Interval,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Start,
    Until,
    is_past_time,
    subformulas,
    variables_of,
)
from ..logic.lasso import evaluate_lasso
from ..logic.monitor import Monitor
from ..logic.parser import ParseError, parse
from .diagnostics import Diagnostic, JSON_SCHEMA_VERSION, Severity

__all__ = [
    "SpecCheckOptions",
    "SpecCheckResult",
    "SpecCheckReport",
    "SpecSource",
    "WitnessTrace",
    "candidate_domain",
    "representative_states",
    "check_formula",
    "check_pattern",
    "check_selection",
    "check_spec_text",
    "check_spec_file",
    "scan_python_specs",
    "strict_reject_reason",
    "validate_spec_syntax",
    "validate_selection_syntax",
    "STRICT_REJECT_WARNS",
]

_PAST_TYPES = (Prev, Once, Historically, Since, Interval, Start, End)
_FUTURE_TYPES = (Always, Eventually, Until, Next)
_UNARY_TYPES = (Not, Prev, Once, Historically, Start, End,
                Always, Eventually, Next)
_BINARY_TYPES = (And, Or, Implies, Iff, Since, Until)

#: WARN codes that :func:`strict_reject_reason` treats as fatal at the
#: server handshake: a trivially-true, vacuous, or never-opening spec
#: burns a worker for nothing even though it "works".
STRICT_REJECT_WARNS = frozenset({"SC302", "SC303", "SC304"})

#: Engine-selection prefixes recognized by :func:`check_spec_text`.
_SELECTION_NAMES = ("ltl", "pattern", "atomicity")


@dataclass(frozen=True)
class SpecCheckOptions:
    """Bounds for the (deliberately bounded) exploration.

    Attributes:
        horizon: target witness-trace length (steps) for satisfiable specs.
        max_values: per-variable candidate-domain size cap.
        max_states: cap on full valuations enumerated while collecting
            representative states.
        max_mstates: cap on monitor states visited per BFS.
        lasso_prefix / lasso_loop: bounds on ``|u|`` / ``|v|`` for the
            future-fragment lasso search.
        max_lassos: cap on lassos enumerated for the future fragment.
        extra_values: extra integers merged into every variable's domain
            (the ``--values`` escape hatch for non-linear arithmetic).
    """

    horizon: int = 5
    max_values: int = 8
    max_states: int = 4096
    max_mstates: int = 20000
    lasso_prefix: int = 2
    lasso_loop: int = 2
    max_lassos: int = 4096
    extra_values: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.lasso_loop < 1:
            raise ValueError("lasso_loop must be >= 1")


@dataclass(frozen=True)
class SpecSource:
    """A spec string found in source (by :func:`scan_python_specs`)."""

    file: str
    line: int
    col: int
    text: str


@dataclass(frozen=True)
class WitnessTrace:
    """A concrete trace of variable valuations, one tuple per step.

    ``loop_start`` is set for lasso witnesses (``u · vω``: the loop begins
    at that index); ``violation_index`` for counter-traces (the step whose
    verdict is False).  :meth:`pretty` renders the same arrow-joined
    valuation tuples as the predictor's counterexamples
    (:meth:`repro.lattice.full.Run.pretty`).
    """

    variables: tuple[str, ...]
    states: tuple[tuple[int, ...], ...]
    loop_start: Optional[int] = None
    violation_index: Optional[int] = None

    def as_states(self) -> list[dict[str, int]]:
        return [dict(zip(self.variables, vals)) for vals in self.states]

    def __len__(self) -> int:
        return len(self.states)

    def pretty(self) -> str:
        cells = [str(tuple(vals)) for vals in self.states]
        if self.loop_start is None:
            return " --> ".join(cells)
        prefix = cells[: self.loop_start]
        loop = cells[self.loop_start:]
        body = "[ " + " --> ".join(loop) + " ]ω"
        return " --> ".join(prefix + [body]) if prefix else body

    def to_json(self) -> dict:
        return {
            "variables": list(self.variables),
            "states": [list(vals) for vals in self.states],
            "loop_start": self.loop_start,
            "violation_index": self.violation_index,
        }


@dataclass
class SpecCheckResult:
    """The verdict for one spec (one formula, pattern, or selection)."""

    spec: str
    kind: str                       # "ltl" | "ltl-future" | "pattern" | "atomicity"
    file: str = "<spec>"
    line: int = 1
    col: int = 1
    satisfiable: Optional[bool] = None
    falsifiable: Optional[bool] = None
    vacuous: tuple[str, ...] = ()
    witness: Optional[WitnessTrace] = None
    counter: Optional[WitnessTrace] = None
    witness_verified: Optional[bool] = None
    counter_verified: Optional[bool] = None
    diagnostics: list[Diagnostic] = field(default_factory=list)
    variables: tuple[str, ...] = ()
    domain: tuple[int, ...] = ()
    subformulas_checked: int = 0
    capped: bool = False
    notes: tuple[str, ...] = ()
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def span(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def to_json(self) -> dict:
        return {
            "spec": self.spec,
            "kind": self.kind,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "satisfiable": self.satisfiable,
            "falsifiable": self.falsifiable,
            "vacuous": list(self.vacuous),
            "witness": self.witness.to_json() if self.witness else None,
            "counter": self.counter.to_json() if self.counter else None,
            "witness_verified": self.witness_verified,
            "counter_verified": self.counter_verified,
            "variables": list(self.variables),
            "domain": list(self.domain),
            "subformulas_checked": self.subformulas_checked,
            "capped": self.capped,
            "notes": list(self.notes),
            "elapsed_ms": round(self.elapsed_ms, 3),
            "ok": self.ok,
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def pretty(self) -> str:
        def yn(v: Optional[bool]) -> str:
            return "-" if v is None else ("yes" if v else "NO")

        lines = [f"{self.span}: {self.kind} spec {self.spec!r}"]
        if self.kind in ("ltl", "ltl-future"):
            sat = f"  satisfiable: {yn(self.satisfiable)}"
            if self.witness is not None:
                sat += f" — witness length {len(self.witness)}"
            lines.append(sat)
            fal = f"  falsifiable: {yn(self.falsifiable)}"
            if self.counter is not None:
                fal += (f" — counter-trace length {len(self.counter)} "
                        f"(violates at step "
                        f"{(self.counter.violation_index or 0) + 1})")
            lines.append(fal)
            if self.subformulas_checked:
                vac = (f"  vacuity: {self.subformulas_checked} "
                       f"subformula(s) checked"
                       + (", none vacuous" if not self.vacuous
                          else f", vacuous: {', '.join(self.vacuous)}"))
                lines.append(vac)
            if self.witness is not None:
                lines.append(f"  variables: ({', '.join(self.variables)})")
                lines.append(f"  witness:   {self.witness.pretty()}")
            if self.counter is not None:
                lines.append(f"  counter:   {self.counter.pretty()}")
        for n in self.notes:
            lines.append(f"  note: {n}")
        for d in self.diagnostics:
            lines.append("  " + d.pretty())
        return "\n".join(lines)


@dataclass
class SpecCheckReport:
    """Aggregated results; same exit-code/JSON contract as ``repro lint``."""

    results: list[SpecCheckResult] = field(default_factory=list)

    def add(self, result: SpecCheckResult) -> None:
        self.results.append(result)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [d for r in self.results for d in r.diagnostics]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARN]

    @property
    def ok(self) -> bool:
        return not self.errors

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def to_json(self) -> dict:
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro.staticcheck.speccheck",
            "summary": {
                "specs": len(self.results),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "ok": self.ok,
            },
            "specs": [r.to_json() for r in self.results],
            "diagnostics": [
                d.to_json()
                for d in sorted(self.diagnostics,
                                key=lambda d: (d.file, d.line, d.col, d.code))
            ],
        }

    def pretty(self) -> str:
        lines = [r.pretty() for r in self.results]
        lines.append(
            f"{len(self.results)} spec(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Domain derivation and representative states
# ---------------------------------------------------------------------------


def _expr_constants(e: Expr) -> set[int]:
    if isinstance(e, Const):
        return {e.value} if isinstance(e.value, int) else set()
    if isinstance(e, BinArith):
        return _expr_constants(e.left) | _expr_constants(e.right)
    return set()


def candidate_domain(formula: Formula,
                     options: Optional[SpecCheckOptions] = None) -> tuple[int, ...]:
    """Candidate values shared by every variable: constants ± 1 plus {0, 1}."""
    opts = options or SpecCheckOptions()
    consts: set[int] = set()
    for g in subformulas(formula):
        if isinstance(g, Compare):
            consts |= _expr_constants(g.left) | _expr_constants(g.right)
    values = {0, 1} | set(opts.extra_values)
    for c in consts:
        values |= {c - 1, c, c + 1}
    ordered = sorted(values)
    if len(ordered) > opts.max_values:
        # keep the constants themselves first, then 0/1, then neighbours
        keep = sorted(consts | {0, 1} | set(opts.extra_values))[: opts.max_values]
        rest = [v for v in ordered if v not in set(keep)]
        ordered = sorted(set(keep) | set(rest[: opts.max_values - len(keep)]))
    return tuple(ordered)


def representative_states(
    formula: Formula,
    options: Optional[SpecCheckOptions] = None,
) -> tuple[list[dict[str, int]], bool]:
    """One concrete valuation per reachable atom signature.

    Returns ``(states, capped)`` — ``capped`` is True when the product
    enumeration hit :attr:`SpecCheckOptions.max_states` before finishing
    (verdicts are then relative to the explored subset).
    """
    opts = options or SpecCheckOptions()
    variables = sorted(variables_of(formula))
    atoms = [g for g in _dedup_nodes(formula) if isinstance(g, Compare)]
    domain = candidate_domain(formula, opts)
    reps: dict[tuple[bool, ...], dict[str, int]] = {}
    capped = False
    for n, combo in enumerate(itertools.product(domain, repeat=len(variables))):
        if n >= opts.max_states:
            capped = True
            break
        state = dict(zip(variables, combo))
        sig = tuple(a.test(state) for a in atoms)
        if sig not in reps:
            reps[sig] = state
    return list(reps.values()), capped


def _dedup_nodes(formula: Formula) -> list[Formula]:
    """Post-order subformulas, deduplicated by identity (Monitor's order)."""
    out: list[Formula] = []
    seen: set[int] = set()
    for n in subformulas(formula):
        if id(n) not in seen:
            seen.add(id(n))
            out.append(n)
    return out


def _replace(node: Formula, target: Formula, repl: Formula) -> Formula:
    """Rebuild ``node`` with the (identity-matched) ``target`` replaced."""
    if node is target:
        return repl
    if isinstance(node, _UNARY_TYPES):
        return type(node)(_replace(node.operand, target, repl))
    if isinstance(node, _BINARY_TYPES):
        return type(node)(_replace(node.left, target, repl),
                          _replace(node.right, target, repl))
    if isinstance(node, Interval):
        return Interval(_replace(node.start, target, repl),
                        _replace(node.stop, target, repl))
    return node  # Bool / Compare / Atom leaves


# ---------------------------------------------------------------------------
# Past fragment: monitor-automaton reachability
# ---------------------------------------------------------------------------


def _explore_past(monitor: Monitor, states: Sequence[Mapping[str, int]],
                  opts: SpecCheckOptions):
    """Exhaustive BFS over the monitor automaton.

    Returns ``(visited, first_false, capped)`` where ``visited`` maps each
    reachable monitor state to ``(parent_mstate, state_index)`` (parent is
    ``None`` for step-1 states) and ``first_false`` is the first reached
    monitor state whose root verdict is False (BFS order ⇒ shortest).
    """
    visited: dict = {}
    queue: deque = deque()
    first_false = None
    capped = False
    frontier = [(None, i) for i in range(len(states))]
    for parent, i in frontier:
        m, _ok = monitor.step(parent, states[i])
        if m not in visited:
            visited[m] = (parent, i)
            queue.append(m)
            if first_false is None and not m[monitor._root]:
                first_false = m
    while queue:
        if len(visited) >= opts.max_mstates:
            capped = True
            break
        m = queue.popleft()
        for i, s in enumerate(states):
            m2, _ok = monitor.step(m, s)
            if m2 not in visited:
                visited[m2] = (m, i)
                queue.append(m2)
                if first_false is None and not m2[monitor._root]:
                    first_false = m2
    return visited, first_false, capped


def _path_to(visited: dict, mstate) -> list[int]:
    """State-index path from the initial state to ``mstate`` (via parents)."""
    path: list[int] = []
    m = mstate
    while m is not None:
        parent, i = visited[m]
        path.append(i)
        m = parent
    path.reverse()
    return path


def _longest_true_path(monitor: Monitor, states: Sequence[Mapping[str, int]],
                       horizon: int) -> list[int]:
    """Longest all-True-verdict path (≤ horizon), by memoized DFS."""
    memo: dict = {}

    def dfs(m, remaining: int) -> list[int]:
        if remaining == 0:
            return []
        key = (m, remaining)
        if key in memo:
            return memo[key]
        memo[key] = []          # cycle guard while computing
        best: list[int] = []
        for i, s in enumerate(states):
            m2, ok = monitor.step(m, s)
            if not ok:
                continue
            sub = dfs(m2, remaining - 1)
            if len(sub) + 1 > len(best):
                best = [i] + sub
                if len(best) == remaining:
                    break
        memo[key] = best
        return best

    return dfs(None, horizon)


def _equivalent_past(f1: Formula, f2: Formula,
                     states: Sequence[Mapping[str, int]],
                     opts: SpecCheckOptions) -> bool:
    """Product-automaton equivalence: same verdict on every explored trace."""
    m1, m2 = Monitor(f1), Monitor(f2)
    visited: set = {(None, None)}
    queue: deque = deque([(None, None)])
    while queue:
        a, b = queue.popleft()
        for s in states:
            a2, ok1 = m1.step(a, s)
            b2, ok2 = m2.step(b, s)
            if ok1 != ok2:
                return False
            if (a2, b2) not in visited:
                if len(visited) >= opts.max_mstates:
                    return True        # bounded: no difference found
                visited.add((a2, b2))
                queue.append((a2, b2))
    return True


def _trace_from_indices(variables: Sequence[str],
                        states: Sequence[Mapping[str, int]],
                        indices: Sequence[int], **kw) -> WitnessTrace:
    return WitnessTrace(
        variables=tuple(variables),
        states=tuple(tuple(states[i][v] for v in variables) for i in indices),
        **kw)


# ---------------------------------------------------------------------------
# Future fragment: bounded lasso enumeration
# ---------------------------------------------------------------------------


def _enumerate_lassos(n_states: int, opts: SpecCheckOptions):
    """Yield ``(u_indices, v_indices)`` shapes in size order, capped."""
    budget = opts.max_lassos
    for total in range(1, opts.lasso_prefix + opts.lasso_loop + 1):
        for lv in range(1, min(opts.lasso_loop, total) + 1):
            lu = total - lv
            if lu > opts.lasso_prefix:
                continue
            for combo in itertools.product(range(n_states), repeat=total):
                if budget <= 0:
                    return
                budget -= 1
                yield combo[:lu], combo[lu:]


def _check_future(formula: Formula, result: SpecCheckResult,
                  states: Sequence[Mapping[str, int]],
                  opts: SpecCheckOptions) -> None:
    variables = tuple(sorted(variables_of(formula)))
    negated = Not(formula)
    witness = counter = None
    exhausted = True
    count = 0
    for u_idx, v_idx in _enumerate_lassos(len(states), opts):
        count += 1
        u = [states[i] for i in u_idx]
        v = [states[i] for i in v_idx]
        if witness is None and evaluate_lasso(formula, u, v):
            witness = _trace_from_indices(
                variables, states, list(u_idx) + list(v_idx),
                loop_start=len(u_idx))
        if counter is None and evaluate_lasso(negated, u, v):
            counter = _trace_from_indices(
                variables, states, list(u_idx) + list(v_idx),
                loop_start=len(u_idx))
        if witness is not None and counter is not None:
            break
    else:
        exhausted = count < opts.max_lassos
    result.satisfiable = witness is not None
    result.falsifiable = counter is not None
    result.witness = witness
    result.counter = counter
    if witness is not None:
        result.witness_verified = evaluate_lasso(
            formula, witness.as_states()[: witness.loop_start],
            witness.as_states()[witness.loop_start:])
    if counter is not None:
        result.counter_verified = evaluate_lasso(
            negated, counter.as_states()[: counter.loop_start],
            counter.as_states()[counter.loop_start:])
    if not exhausted:
        result.capped = True
        result.notes += (
            f"lasso search capped at {opts.max_lassos} candidates; "
            "unsat/trivial verdicts suppressed",)
    if witness is None and exhausted:
        result.diagnostics.append(_diag(
            "SC301", result,
            f"no lasso u·vω with |u| <= {opts.lasso_prefix}, "
            f"|v| <= {opts.lasso_loop} over domain {result.domain} "
            f"satisfies the formula"))
    if counter is None and exhausted and witness is not None:
        result.diagnostics.append(_diag(
            "SC302", result,
            f"every lasso within bounds satisfies the formula; "
            f"monitoring it can never report a violation"))
    # vacuity over a smaller lasso sample (bounded equivalence)
    sample: list[tuple] = []
    for u_idx, v_idx in _enumerate_lassos(len(states), opts):
        sample.append(([states[i] for i in u_idx],
                       [states[i] for i in v_idx]))
        if len(sample) >= 256:
            break
    candidates = [g for g in _dedup_nodes(formula)
                  if g is not formula and not isinstance(g, Bool)]
    result.subformulas_checked = len(candidates)
    for g in candidates:
        top = _replace(formula, g, Bool(True))
        bot = _replace(formula, g, Bool(False))
        if (all(evaluate_lasso(top, u, v) == evaluate_lasso(formula, u, v)
                for u, v in sample)
                and all(evaluate_lasso(bot, u, v)
                        == evaluate_lasso(formula, u, v)
                        for u, v in sample)):
            result.vacuous += (str(g),)
            result.diagnostics.append(_diag(
                "SC303", result,
                f"subformula {g} never matters: replacing it by true or "
                f"false leaves the property equivalent on every "
                f"enumerated lasso"))


# ---------------------------------------------------------------------------
# The checkers
# ---------------------------------------------------------------------------


def _diag(code: str, result: SpecCheckResult, message: str) -> Diagnostic:
    return Diagnostic(code, message, result.file, result.line, result.col,
                      symbol=result.spec if len(result.spec) < 60 else None)


def check_formula(
    formula: Union[Formula, str],
    *,
    file: str = "<spec>",
    line: int = 1,
    col: int = 1,
    options: Optional[SpecCheckOptions] = None,
    spec_text: Optional[str] = None,
) -> SpecCheckResult:
    """Run the full consistency/vacuity analysis on one LTL formula."""
    opts = options or SpecCheckOptions()
    started = time.perf_counter()
    text = spec_text if spec_text is not None else (
        formula if isinstance(formula, str) else str(formula))
    result = SpecCheckResult(spec=text, kind="ltl",
                             file=file, line=line, col=col)
    if isinstance(formula, str):
        try:
            formula = parse(formula,
                            filename=None if file == "<spec>" else file)
        except ParseError as exc:
            result.line = line + exc.line - 1
            result.col = exc.col if exc.line > 1 else col + exc.col - 1
            result.diagnostics.append(_diag(
                "SC300", result, f"specification does not parse: "
                f"{exc.problem}"))
            result.elapsed_ms = (time.perf_counter() - started) * 1000
            return result

    nodes = _dedup_nodes(formula)
    if any(isinstance(g, Atom) for g in nodes):
        result.notes += ("formula contains an opaque Atom predicate; "
                         "consistency is not statically checkable",)
        result.elapsed_ms = (time.perf_counter() - started) * 1000
        return result
    has_past = any(isinstance(g, _PAST_TYPES) for g in nodes)
    has_future = any(isinstance(g, _FUTURE_TYPES) for g in nodes)
    if has_past and has_future:
        result.kind = "ltl-mixed"
        result.diagnostics.append(_diag(
            "SC306", result,
            "formula mixes past- and future-time operators; neither the "
            "online monitor nor the lasso checker supports the mix"))
        result.elapsed_ms = (time.perf_counter() - started) * 1000
        return result

    states, capped = representative_states(formula, opts)
    result.variables = tuple(sorted(variables_of(formula)))
    result.domain = candidate_domain(formula, opts)
    result.capped = capped
    if capped:
        result.notes += (
            f"state enumeration capped at {opts.max_states} valuations; "
            "verdicts are relative to the explored subset",)

    if has_future:
        result.kind = "ltl-future"
        _check_future(formula, result, states, opts)
        result.elapsed_ms = (time.perf_counter() - started) * 1000
        return result

    monitor = Monitor(formula)
    visited, first_false, bfs_capped = _explore_past(monitor, states, opts)
    result.capped = result.capped or bfs_capped

    # (a) satisfiability + witness: a longest all-True path up to horizon
    witness_idx = _longest_true_path(monitor, states, opts.horizon)
    result.satisfiable = bool(witness_idx)
    if witness_idx:
        result.witness = _trace_from_indices(result.variables, states,
                                             witness_idx)
        ok, _k = monitor.check_trace(result.witness.as_states())
        result.witness_verified = ok
    elif not result.capped:
        result.diagnostics.append(_diag(
            "SC301", result,
            f"no valuation over domain {result.domain} satisfies the "
            f"formula at the first state: every monitored trace violates "
            f"it immediately"))

    # (b) falsifiability + counter-trace (shortest path to a False verdict)
    result.falsifiable = first_false is not None
    if first_false is not None:
        cex_idx = _path_to(visited, first_false)
        result.counter = _trace_from_indices(
            result.variables, states, cex_idx,
            violation_index=len(cex_idx) - 1)
        ok, k = monitor.check_trace(result.counter.as_states())
        result.counter_verified = (not ok) and k == len(cex_idx) - 1
    elif not result.capped and result.satisfiable:
        result.diagnostics.append(_diag(
            "SC302", result,
            f"no reachable valuation over domain {result.domain} ever "
            f"produces a False verdict: the property is trivially true"))

    # (c) constancy: per-subformula observed values across all reachable
    # monitor states (SC304 for intervals, SC305 otherwise)
    observed: list[set[bool]] = [set() for _ in range(monitor.width)]
    for m in visited:
        for i, v in enumerate(m):
            observed[i].add(v)
    for i, node in enumerate(monitor._nodes):
        if node is formula or isinstance(node, Bool):
            continue
        if len(observed[i]) == 1 and not result.capped:
            value = next(iter(observed[i]))
            if isinstance(node, Interval):
                result.diagnostics.append(_diag(
                    "SC304", result,
                    f"interval {node} never opens: it is constantly "
                    f"false on every explored trace"))
            else:
                result.diagnostics.append(_diag(
                    "SC305", result,
                    f"subformula {node} is constantly "
                    f"{'true' if value else 'false'} on every explored "
                    f"trace; the branch it guards is dead"))

    # (c') vacuity: the mutation check, per proper non-literal subformula
    candidates = [g for g in nodes
                  if g is not formula and not isinstance(g, Bool)]
    result.subformulas_checked = len(candidates)
    for g in candidates:
        top = _replace(formula, g, Bool(True))
        bot = _replace(formula, g, Bool(False))
        if (_equivalent_past(formula, top, states, opts)
                and _equivalent_past(formula, bot, states, opts)):
            result.vacuous += (str(g),)
            result.diagnostics.append(_diag(
                "SC303", result,
                f"subformula {g} never matters: replacing it by true or "
                f"false leaves the property equivalent on every explored "
                f"trace"))
    result.elapsed_ms = (time.perf_counter() - started) * 1000
    return result


def check_pattern(
    steps_text: str,
    *,
    file: str = "<spec>",
    line: int = 1,
    col: int = 1,
) -> SpecCheckResult:
    """Static checks for a ``pattern:STEPS`` engine spec."""
    from ..core.events import EventKind
    from ..engines.base import EngineError
    from ..engines.pattern import parse_pattern

    started = time.perf_counter()
    result = SpecCheckResult(spec=f"pattern:{steps_text}", kind="pattern",
                             file=file, line=line, col=col)
    try:
        steps = parse_pattern(steps_text)
    except EngineError as exc:
        result.diagnostics.append(_diag("SC310", result, str(exc)))
        result.elapsed_ms = (time.perf_counter() - started) * 1000
        return result

    lock_kinds = {EventKind.ACQUIRE, EventKind.RELEASE}
    for idx, step in enumerate(steps, start=1):
        if step.thread is not None and step.thread < 0:
            result.diagnostics.append(_diag(
                "SC311", result,
                f"step {idx} ({step.text!r}) can never match: threads "
                f"are 1-based, @T0 names no thread"))
        if (step.value is not None and set(step.kinds) <= lock_kinds
                and step.value != "None"):
            result.diagnostics.append(_diag(
                "SC311", result,
                f"step {idx} ({step.text!r}) can never match: lock "
                f"acquire/release events carry no value"))
    if len(steps) == 1 and not result.diagnostics:
        result.diagnostics.append(_diag(
            "SC312", result,
            "single-step pattern: it matches on the first qualifying "
            "event, no predictive ordering is involved"))
    result.satisfiable = result.ok
    result.falsifiable = True      # a stream with no matching events is clean
    if result.ok:
        chain = " ; ".join(s.text for s in steps)
        result.notes += (
            f"realizable witness: any single-thread schedule emitting "
            f"{chain} in program order",)
    result.elapsed_ms = (time.perf_counter() - started) * 1000
    return result


def check_selection(
    selection: str,
    *,
    default_spec: Optional[str] = None,
    file: str = "<spec>",
    line: int = 1,
    col: int = 1,
    options: Optional[SpecCheckOptions] = None,
) -> SpecCheckResult:
    """Check one ``--engine`` selection string (``ltl[:F]`` etc.)."""
    from ..engines.base import ENGINE_FACTORIES, EngineError, parse_engine_spec
    from ..engines import atomicity, ltl, pattern  # noqa: F401 (register)

    result = SpecCheckResult(spec=selection, kind="ltl",
                             file=file, line=line, col=col)
    try:
        name, arg = parse_engine_spec(selection)
    except EngineError as exc:
        result.diagnostics.append(_diag("SC300", result, str(exc)))
        return result
    if name == "ltl":
        formula = arg if arg is not None else default_spec
        if formula is None:
            result.diagnostics.append(_diag(
                "SC300", result,
                "ltl selection names no formula and no session spec is "
                "available to default to"))
            return result
        inner = check_formula(formula, file=file, line=line, col=col,
                              options=options, spec_text=selection)
        return inner
    if name == "pattern":
        if arg is None:
            result.kind = "pattern"
            result.diagnostics.append(_diag(
                "SC310", result, "pattern selection names no steps"))
            return result
        return check_pattern(arg, file=file, line=line, col=col)
    if name in ENGINE_FACTORIES:
        result.kind = name
        result.notes += (f"engine {name!r} carries no specification; "
                         "nothing to check",)
        return result
    result.diagnostics.append(_diag(
        "SC300", result,
        f"unknown engine {name!r} (available: "
        f"{', '.join(sorted(ENGINE_FACTORIES))})"))
    return result


def check_spec_text(
    text: str,
    *,
    default_spec: Optional[str] = None,
    file: str = "<spec>",
    line: int = 1,
    col: int = 1,
    options: Optional[SpecCheckOptions] = None,
) -> SpecCheckResult:
    """Dispatch: an engine-selection string or a bare LTL formula."""
    head = text.split(":", 1)[0].strip().lower()
    if head in _SELECTION_NAMES:
        return check_selection(text, default_spec=default_spec, file=file,
                               line=line, col=col, options=options)
    return check_formula(text, file=file, line=line, col=col,
                         options=options)


def check_spec_file(
    path: str,
    *,
    options: Optional[SpecCheckOptions] = None,
) -> list[SpecCheckResult]:
    """Check every spec in a file: one selection or formula per line,
    ``#`` comments and blank lines ignored."""
    results: list[SpecCheckResult] = []
    with open(path, encoding="utf-8") as fh:
        for i, raw in enumerate(fh, start=1):
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            results.append(check_spec_text(text, file=path, line=i,
                                           options=options))
    return results


# ---------------------------------------------------------------------------
# Scanning Python sources for spec literals
# ---------------------------------------------------------------------------

_SPEC_NAME_RE = re.compile(r"(_PROPERTY|_SPEC)$|^(spec|SPEC)$")


def scan_python_specs(paths: Iterable[str]) -> list[SpecSource]:
    """Find spec string literals in Python sources.

    Picks up assignments to names matching ``*_PROPERTY`` / ``*_SPEC`` /
    ``spec``, ``spec="..."`` keyword arguments, and string elements of
    ``engines=[...]`` keyword lists — each with its real ``file:line:col``.
    """
    import ast as _pyast

    found: list[SpecSource] = []
    seen: set[tuple[str, int, int]] = set()

    def emit(fname: str, node, text: str) -> None:
        key = (fname, node.lineno, node.col_offset + 1)
        if key not in seen and isinstance(text, str) and text.strip():
            seen.add(key)
            found.append(SpecSource(fname, node.lineno,
                                    node.col_offset + 1, text))

    def walk_file(fname: str) -> None:
        try:
            with open(fname, encoding="utf-8") as fh:
                tree = _pyast.parse(fh.read(), filename=fname)
        except (OSError, SyntaxError):
            return
        for node in _pyast.walk(tree):
            targets = []
            if isinstance(node, _pyast.Assign):
                targets = node.targets
            elif isinstance(node, _pyast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for t in targets:
                if (isinstance(t, _pyast.Name)
                        and _SPEC_NAME_RE.search(t.id)
                        and isinstance(node.value, _pyast.Constant)
                        and isinstance(node.value.value, str)):
                    emit(fname, node.value, node.value.value)
            if isinstance(node, _pyast.Call):
                for kw in node.keywords:
                    if (kw.arg == "spec"
                            and isinstance(kw.value, _pyast.Constant)
                            and isinstance(kw.value.value, str)):
                        emit(fname, kw.value, kw.value.value)
                    if (kw.arg == "engines"
                            and isinstance(kw.value, (_pyast.List,
                                                      _pyast.Tuple))):
                        for el in kw.value.elts:
                            if (isinstance(el, _pyast.Constant)
                                    and isinstance(el.value, str)):
                                emit(fname, el, el.value)

    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for f in sorted(files):
                    if f.endswith(".py"):
                        walk_file(os.path.join(root, f))
        elif path.endswith(".py"):
            walk_file(path)
    found.sort(key=lambda s: (s.file, s.line, s.col))
    return found


# ---------------------------------------------------------------------------
# CLI / server validation entry points
# ---------------------------------------------------------------------------


def validate_spec_syntax(spec: str) -> Optional[str]:
    """Parse-only validation; returns a span'd error message or None."""
    try:
        parse(spec)
    except ParseError as exc:
        return f"{exc.span}: {exc}"
    return None


def validate_selection_syntax(selection: str,
                              default_spec: Optional[str] = None,
                              ) -> Optional[str]:
    """Parse-only validation of an ``--engine`` selection string."""
    from ..engines.base import ENGINE_FACTORIES, EngineError, parse_engine_spec
    from ..engines import atomicity, ltl, pattern  # noqa: F401 (register)

    try:
        name, arg = parse_engine_spec(selection)
    except EngineError as exc:
        return str(exc)
    if name not in ENGINE_FACTORIES:
        return (f"unknown engine {name!r} (available: "
                f"{', '.join(sorted(ENGINE_FACTORIES))})")
    if name == "ltl" and arg is not None:
        err = validate_spec_syntax(arg)
        if err:
            return err
    if name == "pattern":
        from ..engines.pattern import parse_pattern
        if arg is None:
            return "pattern selection names no steps"
        try:
            parse_pattern(arg)
        except EngineError as exc:
            return str(exc)
    return None


def strict_reject_reason(
    spec: Optional[str],
    engines: Sequence[str] = (),
    options: Optional[SpecCheckOptions] = None,
) -> Optional[str]:
    """The ``serve --strict-specs`` handshake gate.

    Returns a human-readable rejection reason when the session's spec (or
    any of its engine selections) carries an ERROR-level finding or one of
    :data:`STRICT_REJECT_WARNS`; None admits the session.
    """
    results: list[SpecCheckResult] = []
    if engines:
        for sel in engines:
            results.append(check_selection(sel, default_spec=spec,
                                           options=options))
    elif spec:
        results.append(check_formula(spec, options=options))
    for r in results:
        for d in r.diagnostics:
            if d.severity is Severity.ERROR or d.code in STRICT_REJECT_WARNS:
                return (f"spec rejected by strict-specs: {d.code} "
                        f"({d.title}) {d.message}")
    return None
