"""Static shared-state soundness lint.

Algorithm A is only as sound as the event stream it sees.  The AST
rewriter (:mod:`repro.instrument.rewriter`) redirects accesses to
*declared shared names inside registered functions*; anything that smuggles
a shared value out of that window — aliases, closures handed to other
threads, attribute mutation through a shared binding, un-instrumented
helpers — produces shared-state traffic the observer never hears about.
This module finds those escapes **before** the program runs.

Analysis scope ("whole program" here = one module):

* entry points are the functions registered with the instrumentor —
  detected from ``instrument_function(fn, {...}, rt)`` call sites, from
  ``# repro-instrument: f, g`` directives, or passed explicitly;
* the shared set comes from literal sets at those call sites, from
  ``InstrumentedRuntime({...})`` literals, or ``# repro-shared: x, y``
  directives;
* every module-level function reachable through calls from an entry point
  is analyzed; shared accesses inside un-instrumented callees are
  escapes (SC106).

Each finding carries a stable code from
:data:`~repro.staticcheck.diagnostics.CATALOGUE` and a ``file:line:col``
span.  ERROR means the captured trace would be unsound; WARN means
suspicious-but-instrumented.  MiniLang sources get the SC2xx checks (the
compiler's rejections, surfaced as diagnostics instead of exceptions).
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from typing import Callable, Iterable, Optional, Union

from .diagnostics import Diagnostic, LintReport
from .slicer import minilang_flows, python_flows, close_slice, spec_variables

__all__ = [
    "lint_function",
    "lint_python_source",
    "lint_minilang_source",
    "lint_path",
    "lint_paths",
]

#: Builtins that neither retain nor mutate their arguments — passing a
#: shared value to them is not an escape.
_SAFE_BUILTINS = frozenset({
    "print", "len", "range", "int", "float", "str", "bool", "abs", "min",
    "max", "sum", "sorted", "repr", "format", "divmod", "round", "pow",
    "enumerate", "zip", "isinstance", "hash", "ord", "chr", "any", "all",
    "tuple", "list", "set", "frozenset", "dict",
})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
    "__setitem__", "__delitem__", "write", "writelines",
})

_DIRECTIVE_SHARED = re.compile(r"#\s*repro-shared:[ \t]*([\w, \t]+)")
_DIRECTIVE_INSTRUMENT = re.compile(r"#\s*repro-instrument:[ \t]*([\w, \t]+)")


def _names_in(m: re.Match) -> list[str]:
    return [n for n in re.split(r"[,\s]+", m.group(1).strip()) if n]


# ---------------------------------------------------------------------------
# Per-function escape analysis
# ---------------------------------------------------------------------------


class _FunctionLinter(ast.NodeVisitor):
    """Walk one instrumented function, reporting escapes of ``shared``.

    ``helpers`` maps module-level function names to their defs;
    ``instrumented`` names functions that are themselves registered (calls
    between instrumented functions are fine).
    """

    def __init__(
        self,
        shared: frozenset[str],
        filename: str,
        function: str,
        helpers: Optional[dict[str, ast.FunctionDef]] = None,
        instrumented: frozenset[str] = frozenset(),
    ):
        self.shared = shared
        self.filename = filename
        self.function = function
        self.helpers = helpers or {}
        self.instrumented = instrumented
        self.diags: list[Diagnostic] = []
        self._depth = 0  # 0 = entry function body, >0 = nested scope
        self._helper_touch_cache: dict[str, frozenset[str]] = {}

    # -- plumbing -------------------------------------------------------------

    def _emit(self, code: str, node: ast.AST, message: str,
              symbol: Optional[str] = None) -> None:
        self.diags.append(Diagnostic(
            code=code, message=message, file=self.filename,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            symbol=symbol, function=self.function))

    def _shared_loads(self, node: ast.AST) -> list[ast.Name]:
        return [n for n in ast.walk(node)
                if isinstance(n, ast.Name) and n.id in self.shared
                and isinstance(n.ctx, ast.Load)]

    def _shared_stores(self, node: ast.AST) -> list[ast.Name]:
        return [n for n in ast.walk(node)
                if isinstance(n, ast.Name) and n.id in self.shared
                and isinstance(n.ctx, ast.Store)]

    # -- entry ---------------------------------------------------------------

    def lint(self, fdef: ast.FunctionDef) -> list[Diagnostic]:
        self._check_params(fdef, entry=True)
        for stmt in fdef.body:
            self.visit(stmt)
        return self.diags

    def _check_params(self, fdef, entry: bool) -> None:
        args = fdef.args
        every = (args.posonlyargs + args.args + args.kwonlyargs
                 + ([args.vararg] if args.vararg else [])
                 + ([args.kwarg] if args.kwarg else []))
        for a in every:
            if a.arg in self.shared:
                self._emit(
                    "SC108", a,
                    f"parameter {a.arg!r} rebinds the shared variable "
                    f"{a.arg!r}", symbol=a.arg)
        if entry:
            for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None]:
                for name in self._shared_loads(default):
                    self._emit(
                        "SC104", name,
                        f"shared variable {name.id!r} read in a parameter "
                        f"default, which evaluates outside the monitored "
                        f"execution", symbol=name.id)

    # -- assignments ----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        # alias = shared  (bare-name copy)
        if isinstance(node.value, ast.Name) and node.value.id in self.shared:
            for tgt in node.targets:
                if isinstance(tgt, ast.Name) and tgt.id not in self.shared:
                    self._emit(
                        "SC101", node,
                        f"{tgt.id!r} aliases the shared variable "
                        f"{node.value.id!r}; accesses through the alias "
                        f"emit no events", symbol=node.value.id)
        # tuple RHS with bare shared elements into plain locals
        if isinstance(node.value, ast.Tuple):
            for tgt in node.targets:
                if isinstance(tgt, (ast.Tuple, ast.List)):
                    for t_el, v_el in zip(tgt.elts, node.value.elts):
                        if (isinstance(v_el, ast.Name)
                                and v_el.id in self.shared
                                and isinstance(t_el, ast.Name)
                                and t_el.id not in self.shared):
                            self._emit(
                                "SC101", v_el,
                                f"{t_el.id!r} aliases the shared variable "
                                f"{v_el.id!r} through tuple unpacking",
                                symbol=v_el.id)
        for tgt in node.targets:
            self._check_store_target(tgt, allow_plain_name=True)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store_target(node.target, allow_plain_name=True)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target, allow_plain_name=True)
        self.generic_visit(node)

    def _check_store_target(self, tgt: ast.expr,
                            allow_plain_name: bool) -> None:
        """Stores through shared bindings or destructuring shared names."""
        if isinstance(tgt, ast.Name):
            return  # plain `x = e` (shared or local) is instrumented
        if isinstance(tgt, (ast.Attribute, ast.Subscript)):
            base = tgt.value
            if isinstance(base, ast.Name) and base.id in self.shared:
                kind = ("attribute" if isinstance(tgt, ast.Attribute)
                        else "subscript")
                self._emit(
                    "SC102", tgt,
                    f"{kind} store through the shared binding "
                    f"{base.id!r} mutates the shared value without a "
                    f"WRITE event", symbol=base.id)
            return
        if isinstance(tgt, (ast.Tuple, ast.List, ast.Starred)):
            for name in self._shared_stores(tgt):
                self._emit(
                    "SC111", name,
                    f"destructuring write to shared variable {name.id!r} "
                    f"is not instrumented", symbol=name.id)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        if node.target.id in self.shared:
            self._emit(
                "SC111", node,
                f"assignment expression (':=') targets shared variable "
                f"{node.target.id!r}, which is not instrumented",
                symbol=node.target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        for name in self._shared_stores(node.target):
            self._emit(
                "SC111", name,
                f"for-loop target rebinds shared variable {name.id!r}",
                symbol=name.id)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for tgt in node.targets:
            if isinstance(tgt, ast.Name) and tgt.id in self.shared:
                self._emit(
                    "SC110", tgt,
                    f"cannot delete shared variable {tgt.id!r}",
                    symbol=tgt.id)
            else:
                self._check_store_target(tgt, allow_plain_name=False)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            if name in self.shared:
                self._emit(
                    "SC107", node,
                    f"'global' declaration of shared variable {name!r}",
                    symbol=name)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        for name in node.names:
            if name in self.shared:
                self._emit(
                    "SC107", node,
                    f"'nonlocal' declaration of shared variable {name!r}",
                    symbol=name)

    # -- shadowing binders -----------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._with_items(node)
        self.generic_visit(node)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def _with_items(self, node) -> None:
        for item in node.items:
            if item.optional_vars is None:
                continue
            for name in self._shared_stores(item.optional_vars):
                self._emit(
                    "SC109", name,
                    f"'with ... as {name.id}' rebinds the shared variable "
                    f"{name.id!r} for the rest of the scope",
                    symbol=name.id)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name and node.name in self.shared:
            self._emit(
                "SC109", node,
                f"'except ... as {node.name}' rebinds the shared variable "
                f"{node.name!r}", symbol=node.name)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        self._import_aliases(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._import_aliases(node)

    def _import_aliases(self, node) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if bound in self.shared:
                self._emit(
                    "SC109", node,
                    f"import binds {bound!r}, shadowing the shared "
                    f"variable", symbol=bound)

    # -- comprehensions --------------------------------------------------------

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            for name in self._shared_stores(gen.target):
                self._emit(
                    "SC105", name,
                    f"comprehension target rebinds shared variable "
                    f"{name.id!r}; reads inside the comprehension stop "
                    f"being shared accesses", symbol=name.id)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    # -- closures --------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested_scope(node, kind="nested function")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested_scope(node, kind="nested function")

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._nested_scope(node, kind="lambda")

    def _nested_scope(self, node, kind: str) -> None:
        self._check_params(node, entry=False)
        body = node.body if isinstance(node.body, list) else [node.body]
        captured = sorted({n.id for stmt in body
                           for n in self._shared_loads(stmt)})
        if captured:
            label = (f"{kind} {node.name!r}"
                     if hasattr(node, "name") else kind)
            self._emit(
                "SC103", node,
                f"{label} captures shared "
                f"variable(s) {captured}; its accesses are attributed to "
                f"whatever thread eventually calls it",
                symbol=captured[0])
        self._depth += 1
        try:
            for stmt in body:
                self.visit(stmt)
        finally:
            self._depth -= 1

    # -- calls ----------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (isinstance(base, ast.Name) and base.id in self.shared
                    and node.func.attr in _MUTATORS):
                self._emit(
                    "SC102", node,
                    f"method .{node.func.attr}() mutates the shared value "
                    f"bound to {base.id!r} without a WRITE event",
                    symbol=base.id)
        elif isinstance(node.func, ast.Name):
            callee = node.func.id
            if callee in self.helpers and callee not in self.instrumented:
                touched = self._helper_touches(callee)
                if touched:
                    self._emit(
                        "SC106", node,
                        f"call into un-instrumented helper {callee!r}, "
                        f"which touches shared variable(s) "
                        f"{sorted(touched)}", symbol=callee)
            elif (callee not in self.helpers
                  and callee not in _SAFE_BUILTINS
                  and callee not in self.instrumented):
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in self.shared:
                        self._emit(
                            "SC112", arg,
                            f"shared variable {arg.id!r} passed to "
                            f"unresolvable callee {callee!r}; a mutable "
                            f"value can be mutated invisibly there",
                            symbol=arg.id)
        self.generic_visit(node)

    def _helper_touches(self, name: str,
                        _stack: Optional[frozenset[str]] = None) -> frozenset[str]:
        """Shared names a helper (transitively) touches — the reachability
        walk over the module call graph."""
        if name in self._helper_touch_cache:
            return self._helper_touch_cache[name]
        stack = _stack or frozenset()
        if name in stack:  # recursion cycle
            return frozenset()
        fdef = self.helpers.get(name)
        if fdef is None:
            return frozenset()
        touched: set[str] = set()
        for n in ast.walk(fdef):
            if isinstance(n, ast.Name) and n.id in self.shared:
                touched.add(n.id)
            elif (isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
                  and n.func.id in self.helpers
                  and n.func.id not in self.instrumented):
                touched |= self._helper_touches(n.func.id,
                                               stack | {name})
        result = frozenset(touched)
        self._helper_touch_cache[name] = result
        return result


def lint_function(
    fn_or_def: Union[Callable, ast.FunctionDef, str],
    shared: Iterable[str],
    filename: Optional[str] = None,
    helpers: Optional[dict[str, ast.FunctionDef]] = None,
    instrumented: Iterable[str] = (),
) -> list[Diagnostic]:
    """Lint one function against a declared shared set.

    Accepts a live callable (source via ``inspect``), a parsed
    ``FunctionDef``, or a source string containing a single def.
    """
    line_offset = 0
    if isinstance(fn_or_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        fdef = fn_or_def
        name = fdef.name
    else:
        if callable(fn_or_def):
            src = textwrap.dedent(inspect.getsource(fn_or_def))
            filename = filename or (inspect.getsourcefile(fn_or_def)
                                    or "<unknown>")
            line_offset = fn_or_def.__code__.co_firstlineno - 1
        else:
            src = textwrap.dedent(fn_or_def)
        tree = ast.parse(src)
        if line_offset:
            ast.increment_lineno(tree, line_offset)
        fdef = next(n for n in tree.body
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))
        name = fdef.name
    linter = _FunctionLinter(
        frozenset(shared), filename or "<string>", name,
        helpers=helpers, instrumented=frozenset(instrumented) | {name})
    return linter.lint(fdef)


# ---------------------------------------------------------------------------
# Module-level (whole-program) analysis
# ---------------------------------------------------------------------------


def _literal_str_elems(node: ast.expr) -> Optional[list[str]]:
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out = []
        for el in node.elts:
            if isinstance(el, ast.Constant) and isinstance(el.value, str):
                out.append(el.value)
            else:
                return None
        return out
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set") and node.args:
        return _literal_str_elems(node.args[0])
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def lint_python_source(
    text: str,
    filename: str = "<string>",
    spec: Optional[str] = None,
) -> list[Diagnostic]:
    """Whole-module lint: discover the instrumented entry points and the
    shared set, then run the escape analysis over everything reachable.

    Detection sources (all unioned):

    * ``instrument_function(f, {"x", "y"}, rt)`` call sites — ``f`` becomes
      an entry, the literal becomes shared names;
    * ``InstrumentedRuntime({"x": 0, ...})`` literals — keys become shared;
    * ``# repro-shared: x, y`` and ``# repro-instrument: f, g`` directives.
    """
    tree = ast.parse(text, filename)
    functions: dict[str, ast.FunctionDef] = {
        n.name: n for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}

    shared: set[str] = set()
    entries: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        cname = _call_name(node)
        if cname == "instrument_function" and node.args:
            if isinstance(node.args[0], ast.Name):
                entries.append(node.args[0].id)
            if len(node.args) >= 2:
                elems = _literal_str_elems(node.args[1])
                if elems:
                    shared.update(elems)
        elif cname == "InstrumentedRuntime" and node.args:
            arg0 = node.args[0]
            if isinstance(arg0, ast.Dict):
                for k in arg0.keys:
                    if isinstance(k, ast.Constant) and isinstance(k.value, str):
                        shared.add(k.value)

    for m in _DIRECTIVE_SHARED.finditer(text):
        shared.update(_names_in(m))
    for m in _DIRECTIVE_INSTRUMENT.finditer(text):
        entries.extend(_names_in(m))

    entry_defs = [(n, functions[n]) for n in dict.fromkeys(entries)
                  if n in functions]
    if not entry_defs or not shared:
        return []

    shared_set = frozenset(shared)
    instrumented = frozenset(n for n, _ in entry_defs)
    diags: list[Diagnostic] = []
    for name, fdef in entry_defs:
        linter = _FunctionLinter(shared_set, filename, name,
                                 helpers=functions,
                                 instrumented=instrumented)
        diags.extend(linter.lint(fdef))

    if spec:
        diags.extend(_spec_relevance_python(
            spec, shared_set, [f for _, f in entry_defs], functions,
            instrumented, filename))
    return diags


def _spec_relevance_python(
    spec: str,
    shared: frozenset[str],
    entry_defs: list[ast.FunctionDef],
    functions: dict[str, ast.FunctionDef],
    instrumented: frozenset[str],
    filename: str,
) -> list[Diagnostic]:
    """SC113: instrumented variables outside the spec's relevant slice."""
    analyzed = list(entry_defs) + [
        f for n, f in functions.items() if n not in instrumented]
    flows = python_flows(analyzed, shared)
    result = close_slice(spec_variables(spec), flows, shared=shared)
    diags = []
    for var in sorted(result.irrelevant):
        node = _first_write_of(var, entry_defs) or entry_defs[0]
        diags.append(Diagnostic(
            code="SC113",
            message=(f"shared variable {var!r} is instrumented but not in "
                     f"the specification's relevant slice "
                     f"{sorted(result.relevant)}; consider relevant_only= "
                     f"slicing"),
            file=filename, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1, symbol=var))
    return diags


def _first_write_of(var: str, defs: list[ast.FunctionDef]):
    for fdef in defs:
        for node in ast.walk(fdef):
            if isinstance(node, ast.Name) and node.id == var \
                    and isinstance(node.ctx, ast.Store):
                return node
    return None


# ---------------------------------------------------------------------------
# MiniLang analysis
# ---------------------------------------------------------------------------


def lint_minilang_source(
    text: str,
    filename: str = "<minilang>",
    spec: Optional[str] = None,
) -> list[Diagnostic]:
    """SC2xx checks over a MiniLang source: parse errors, undeclared
    names, local-shadows-shared, and (with a spec) slice membership."""
    from ..lang.ast import (
        Assign, Binary, Block, If, LocalDecl, Name, Unary, While,
    )
    from ..lang.parser import MiniLangError, parse_source

    try:
        program = parse_source(text, filename=filename)
    except MiniLangError as exc:
        return [Diagnostic(
            code="SC200", message=str(exc), file=filename,
            line=exc.line or 1, col=exc.col or 1)]

    shared = frozenset(program.shared_names())
    diags: list[Diagnostic] = []

    def expr_names(e):
        if isinstance(e, Name):
            yield e
        elif isinstance(e, Unary):
            yield from expr_names(e.operand)
        elif isinstance(e, Binary):
            yield from expr_names(e.left)
            yield from expr_names(e.right)

    def span(node) -> tuple[int, int]:
        return (getattr(node, "line", None) or 1,
                getattr(node, "col", None) or 1)

    for thread in program.threads:
        locals_seen: set[str] = set()

        def walk(stmts):
            for s in stmts:
                if isinstance(s, LocalDecl):
                    line, col = span(s)
                    if s.name in shared:
                        diags.append(Diagnostic(
                            code="SC202",
                            message=(f"local {s.name!r} shadows the shared "
                                     f"variable {s.name!r}"),
                            file=filename, line=line, col=col,
                            symbol=s.name, function=thread.name))
                    locals_seen.add(s.name)
                    check_expr(s.value)
                elif isinstance(s, Assign):
                    line, col = span(s)
                    if s.target not in shared and s.target not in locals_seen:
                        diags.append(Diagnostic(
                            code="SC201",
                            message=(f"assignment to undeclared variable "
                                     f"{s.target!r}"),
                            file=filename, line=line, col=col,
                            symbol=s.target, function=thread.name))
                    check_expr(s.value)
                elif isinstance(s, If):
                    check_expr(s.cond)
                    walk(s.then.statements)
                    if s.orelse is not None:
                        walk(s.orelse.statements)
                elif isinstance(s, While):
                    check_expr(s.cond)
                    walk(s.body.statements)
                elif isinstance(s, Block):
                    walk(s.statements)

        def check_expr(e):
            for name in expr_names(e):
                if name.ident not in shared and name.ident not in locals_seen:
                    line, col = span(name)
                    diags.append(Diagnostic(
                        code="SC201",
                        message=(f"use of undeclared variable "
                                 f"{name.ident!r}"),
                        file=filename, line=line, col=col,
                        symbol=name.ident, function=thread.name))

        walk(thread.body.statements)

    if spec:
        flows = minilang_flows(program)
        result = close_slice(spec_variables(spec), flows, shared=shared)
        for var in sorted(result.irrelevant):
            diags.append(Diagnostic(
                code="SC203",
                message=(f"shared variable {var!r} is not in the "
                         f"specification's relevant slice "
                         f"{sorted(result.relevant)}"),
                file=filename, line=1, col=1, symbol=var))
    return diags


# ---------------------------------------------------------------------------
# File / path front door
# ---------------------------------------------------------------------------


def lint_path(path, spec: Optional[str] = None) -> list[Diagnostic]:
    """Lint one ``.py`` or ``.ml`` file."""
    from pathlib import Path

    p = Path(path)
    text = p.read_text(encoding="utf-8")
    if p.suffix == ".ml":
        return lint_minilang_source(text, filename=str(p), spec=spec)
    return lint_python_source(text, filename=str(p), spec=spec)


def lint_paths(paths: Iterable, spec: Optional[str] = None) -> LintReport:
    """Lint files and directories (recursing for ``*.py`` and ``*.ml``)."""
    from pathlib import Path

    report = LintReport()
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
            files.extend(sorted(p.rglob("*.ml")))
        else:
            files.append(p)
    for f in files:
        report.add_file(str(f))
        report.extend(lint_path(f, spec=spec))
    return report
