"""Spec-relevance instrumentation slicing.

JMPaX instruments exactly the variables the specification mentions plus
whatever feeds them (§4.1: the instrumentor "extracts the set of shared
variables from the specification").  This module computes that set
statically:

1. :func:`spec_variables` — the variable support of a formula (via the
   :mod:`repro.logic` AST);
2. flow extraction — for each *write* of a shared variable, the set of
   shared variables whose values can flow into it (through local-variable
   taint), from either Python sources (rewriter-style functions *and*
   generator workloads yielding ``Read``/``Write`` ops) or MiniLang ASTs;
3. :func:`close_slice` — the transitive closure: a variable is *relevant*
   iff the spec mentions it or its value can reach a relevant write.

Soundness caveat (documented in docs/STATIC.md): slicing preserves the
*values* of relevant writes, but accesses to sliced-out variables generate
no events, so happens-before edges that travel only through sliced-out
data variables disappear from the captured partial order.  Verdicts of
"no violation" stay sound; predicted violations can gain counterexamples
that the dropped edges would have excluded.  Synchronization variables
(locks, conditions) are never sliced out.
"""

from __future__ import annotations

import ast as pyast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Union

from ..lang.ast import (
    Assign as MlAssign,
    Binary as MlBinary,
    Block as MlBlock,
    Expr as MlExpr,
    If as MlIf,
    LocalDecl as MlLocalDecl,
    Name as MlName,
    ProgramAst,
    Stmt as MlStmt,
    Unary as MlUnary,
    While as MlWhile,
)
from ..logic.ast import Formula, variables_of

__all__ = [
    "SliceResult",
    "spec_variables",
    "close_slice",
    "python_flows",
    "minilang_flows",
    "slice_python_functions",
    "slice_minilang",
]

SpecLike = Union[str, Formula]


def spec_variables(spec: SpecLike) -> frozenset[str]:
    """The variable support of a specification (string or parsed formula)."""
    if isinstance(spec, str):
        from ..logic.parser import parse

        spec = parse(spec)
    return variables_of(spec)


@dataclass(frozen=True)
class SliceResult:
    """Outcome of the relevance closure.

    ``flows`` maps each written shared variable to the shared variables
    whose values may flow into it (the union over all analyzed writes).
    """

    spec_vars: frozenset[str]
    relevant: frozenset[str]
    shared: frozenset[str]
    flows: Mapping[str, frozenset[str]]

    @property
    def irrelevant(self) -> frozenset[str]:
        return self.shared - self.relevant

    def predicate(self):
        """Algorithm A relevance predicate emitting only sliced writes."""
        from ..core.algorithm_a import relevant_writes

        return relevant_writes(self.relevant)

    def why(self, var: str) -> str:
        """One-line human explanation of a variable's slice membership."""
        if var in self.spec_vars:
            return f"{var}: mentioned by the specification"
        if var in self.relevant:
            sinks = sorted(w for w, deps in self.flows.items()
                           if var in deps and w in self.relevant)
            return f"{var}: flows into relevant write(s) of {sinks}"
        return f"{var}: no flow into any relevant write"


def close_slice(
    spec_vars: Iterable[str],
    flows: Mapping[str, Iterable[str]],
    shared: Optional[Iterable[str]] = None,
) -> SliceResult:
    """Transitively close ``spec_vars`` over the write data-flow edges.

    ``flows[w] = deps`` means a write of ``w`` reads from ``deps``; if
    ``w`` is relevant every dep becomes relevant, to fixpoint.
    """
    frozen_flows = {w: frozenset(deps) for w, deps in flows.items()}
    relevant = set(spec_vars)
    changed = True
    while changed:
        changed = False
        for w, deps in frozen_flows.items():
            if w in relevant and not deps <= relevant:
                relevant |= deps
                changed = True
    shared_set = (frozenset(shared) if shared is not None
                  else frozenset(frozen_flows) | relevant)
    return SliceResult(
        spec_vars=frozenset(spec_vars),
        relevant=frozenset(relevant),
        shared=shared_set,
        flows=frozen_flows,
    )


# ---------------------------------------------------------------------------
# Python flow extraction
# ---------------------------------------------------------------------------

_OP_READ_METHODS = frozenset({"read", "read_quiet"})
_OP_WRITE_METHODS = frozenset({"write", "write_quiet"})


def _const_var(node: pyast.expr) -> Optional[str]:
    if isinstance(node, pyast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _PyFlows:
    """Per-function taint propagation: local name -> shared deps.

    Handles three access styles uniformly:

    * rewriter-style bare shared names (``y = x + 1``);
    * runtime calls (``rt.read("x")`` / ``rt.write("x", e)`` /
      ``rt.update("x", f)``);
    * generator workloads (``v = yield Read("x")`` / ``yield Write("x", e)``).
    """

    def __init__(self, shared: frozenset[str]):
        self.shared = shared
        self.locals: dict[str, frozenset[str]] = {}
        self.flows: dict[str, set[str]] = {}

    # -- expression taint -----------------------------------------------------

    def taint(self, node: Optional[pyast.expr]) -> frozenset[str]:
        if node is None:
            return frozenset()
        if isinstance(node, pyast.Name):
            if node.id in self.shared:
                return frozenset({node.id})
            return self.locals.get(node.id, frozenset())
        if isinstance(node, pyast.Yield):
            # `v = yield Read("x")` — the sent-back value is the read.
            inner = node.value
            var = self._op_read_var(inner)
            if var is not None:
                return frozenset({var})
            return self.taint(inner)
        if isinstance(node, pyast.Call):
            var = self._runtime_read_var(node)
            if var is not None:
                return frozenset({var})
            out: frozenset[str] = self.taint(node.func)
            for a in node.args:
                out |= self.taint(a)
            for kw in node.keywords:
                out |= self.taint(kw.value)
            return out
        out = frozenset()
        for child in pyast.iter_child_nodes(node):
            if isinstance(child, pyast.expr):
                out |= self.taint(child)
            elif isinstance(child, pyast.comprehension):
                out |= self.taint(child.iter)
                for cond in child.ifs:
                    out |= self.taint(cond)
        return out

    def _op_read_var(self, node: Optional[pyast.expr]) -> Optional[str]:
        """``Read("x")`` op constructors in generator workloads."""
        if (isinstance(node, pyast.Call) and isinstance(node.func, pyast.Name)
                and node.func.id == "Read" and node.args):
            return _const_var(node.args[0])
        return None

    def _runtime_read_var(self, node: pyast.Call) -> Optional[str]:
        """``<anything>.read("x")`` runtime-method reads."""
        if (isinstance(node.func, pyast.Attribute)
                and node.func.attr in _OP_READ_METHODS and node.args):
            return _const_var(node.args[0])
        return None

    # -- statement walk -------------------------------------------------------

    def _record_write(self, var: str, deps: frozenset[str]) -> None:
        self.flows.setdefault(var, set()).update(deps)

    def visit_stmt(self, node: pyast.stmt) -> None:
        if isinstance(node, pyast.Assign):
            deps = self.taint(node.value)
            for tgt in node.targets:
                self._bind_target(tgt, deps)
        elif isinstance(node, pyast.AnnAssign) and node.value is not None:
            self._bind_target(node.target, self.taint(node.value))
        elif isinstance(node, pyast.AugAssign):
            if isinstance(node.target, pyast.Name):
                name = node.target.id
                deps = self.taint(node.value)
                if name in self.shared:
                    self._record_write(name, deps | {name})
                else:
                    self.locals[name] = (
                        self.locals.get(name, frozenset()) | deps)
        elif isinstance(node, pyast.Expr):
            self._scan_effect(node.value)
        elif isinstance(node, pyast.Return):
            pass
        elif isinstance(node, pyast.For):
            deps = self.taint(node.iter)
            self._bind_target(node.target, deps)
            for s in node.body + node.orelse:
                self.visit_stmt(s)
        elif isinstance(node, (pyast.While, pyast.If)):
            for s in node.body + node.orelse:
                self.visit_stmt(s)
        elif isinstance(node, pyast.With):
            for item in node.items:
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars,
                                      self.taint(item.context_expr))
            for s in node.body:
                self.visit_stmt(s)
        elif isinstance(node, pyast.Try):
            for s in (node.body + node.orelse + node.finalbody
                      + [s for h in node.handlers for s in h.body]):
                self.visit_stmt(s)
        elif isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef)):
            # Nested bodies run in the same shared store; analyze inline.
            for s in node.body:
                self.visit_stmt(s)
        # remaining statement kinds carry no shared writes

    def _bind_target(self, tgt: pyast.expr, deps: frozenset[str]) -> None:
        if isinstance(tgt, pyast.Name):
            if tgt.id in self.shared:
                self._record_write(tgt.id, deps)
            else:
                self.locals[tgt.id] = self.locals.get(tgt.id, frozenset()) | deps
        elif isinstance(tgt, (pyast.Tuple, pyast.List)):
            for elt in tgt.elts:
                self._bind_target(elt, deps)
        elif isinstance(tgt, pyast.Starred):
            self._bind_target(tgt.value, deps)
        # attribute/subscript targets never bind shared *names*

    def _scan_effect(self, node: pyast.expr) -> None:
        """Expression statements that perform writes."""
        if isinstance(node, pyast.Yield):
            node = node.value  # `yield Write(...)`
            if node is None:
                return
        if not isinstance(node, pyast.Call):
            return
        # Write("x", e) op constructor
        if (isinstance(node.func, pyast.Name) and node.func.id == "Write"
                and len(node.args) >= 2):
            var = _const_var(node.args[0])
            if var is not None:
                self._record_write(var, self.taint(node.args[1]))
                return
        if isinstance(node.func, pyast.Attribute) and node.args:
            var = _const_var(node.args[0])
            if var is None:
                return
            if node.func.attr in _OP_WRITE_METHODS and len(node.args) >= 2:
                self._record_write(var, self.taint(node.args[1]))
            elif node.func.attr == "update" and len(node.args) >= 2:
                # rt.update("x", fn): read-modify-write of x
                self._record_write(var, self.taint(node.args[1]) | {var})


def _function_defs(source_or_fn) -> list[pyast.FunctionDef]:
    """All function definitions (including nested ones) in a callable's
    source or a source string."""
    if callable(source_or_fn):
        src = textwrap.dedent(inspect.getsource(source_or_fn))
    else:
        src = textwrap.dedent(source_or_fn)
    tree = pyast.parse(src)
    return [n for n in pyast.walk(tree)
            if isinstance(n, (pyast.FunctionDef, pyast.AsyncFunctionDef))]


def python_flows(
    sources: Iterable[Union[Callable, str, pyast.FunctionDef]],
    shared: Iterable[str],
) -> dict[str, frozenset[str]]:
    """Write data-flow edges over Python sources.

    ``sources`` may mix callables (source fetched via ``inspect``), source
    strings, and already-parsed function definitions.  Bodies are iterated
    to a fixpoint so taint survives loops (``a = b; x = a`` in a ``while``
    converges in two passes).
    """
    shared_set = frozenset(shared)
    defs: list[pyast.FunctionDef] = []
    for src in sources:
        if isinstance(src, (pyast.FunctionDef, pyast.AsyncFunctionDef)):
            defs.append(src)
        else:
            defs.extend(_function_defs(src))
    flows: dict[str, set[str]] = {}
    for fdef in defs:
        fl = _PyFlows(shared_set)
        # Fixpoint: loop bodies can feed taints backwards.
        for _ in range(max(2, len(shared_set))):
            before = ({k: frozenset(v) for k, v in fl.flows.items()},
                      dict(fl.locals))
            for stmt in fdef.body:
                fl.visit_stmt(stmt)
            after = ({k: frozenset(v) for k, v in fl.flows.items()},
                     dict(fl.locals))
            if before == after:
                break
        for w, deps in fl.flows.items():
            flows.setdefault(w, set()).update(deps)
    return {w: frozenset(deps) for w, deps in flows.items()}


def slice_python_functions(
    fns: Iterable[Union[Callable, str]],
    shared: Iterable[str],
    spec: SpecLike,
) -> SliceResult:
    """Slice ``shared`` down to the spec-relevant closure over ``fns``."""
    shared_set = frozenset(shared)
    flows = python_flows(fns, shared_set)
    return close_slice(spec_variables(spec), flows, shared=shared_set)


# ---------------------------------------------------------------------------
# MiniLang flow extraction
# ---------------------------------------------------------------------------


def _ml_expr_vars(e: MlExpr, shared: frozenset[str],
                  locals_taint: Mapping[str, frozenset[str]]) -> frozenset[str]:
    if isinstance(e, MlName):
        if e.ident in shared:
            return frozenset({e.ident})
        return locals_taint.get(e.ident, frozenset())
    if isinstance(e, MlUnary):
        return _ml_expr_vars(e.operand, shared, locals_taint)
    if isinstance(e, MlBinary):
        return (_ml_expr_vars(e.left, shared, locals_taint)
                | _ml_expr_vars(e.right, shared, locals_taint))
    return frozenset()


def minilang_flows(program: ProgramAst) -> dict[str, frozenset[str]]:
    """Write data-flow edges over every thread of a MiniLang program."""
    shared = frozenset(program.shared_names())
    flows: dict[str, set[str]] = {}

    def walk(stmts: Iterable[MlStmt],
             taint: dict[str, frozenset[str]]) -> None:
        for s in stmts:
            if isinstance(s, MlAssign):
                deps = _ml_expr_vars(s.value, shared, taint)
                if s.target in shared:
                    flows.setdefault(s.target, set()).update(deps)
                else:
                    taint[s.target] = taint.get(s.target, frozenset()) | deps
            elif isinstance(s, MlLocalDecl):
                taint[s.name] = _ml_expr_vars(s.value, shared, taint)
            elif isinstance(s, MlIf):
                walk(s.then.statements, taint)
                if s.orelse is not None:
                    walk(s.orelse.statements, taint)
            elif isinstance(s, MlWhile):
                walk(s.body.statements, taint)
            elif isinstance(s, MlBlock):
                walk(s.statements, taint)
            # sync/skip/spawn statements carry no data flow

    for thread in program.threads:
        taint: dict[str, frozenset[str]] = {}
        # Fixpoint for while-loop back-edges.
        for _ in range(max(2, len(shared))):
            before = (dict(taint), {k: frozenset(v) for k, v in flows.items()})
            walk(thread.body.statements, taint)
            after = (dict(taint), {k: frozenset(v) for k, v in flows.items()})
            if before == after:
                break
    return {w: frozenset(deps) for w, deps in flows.items()}


def slice_minilang(
    source_or_ast: Union[str, ProgramAst],
    spec: SpecLike,
    filename: Optional[str] = None,
) -> SliceResult:
    """Slice a MiniLang program's shared set against a specification."""
    if isinstance(source_or_ast, str):
        from ..lang.parser import parse_source

        program = parse_source(source_or_ast, filename=filename)
    else:
        program = source_or_ast
    shared = frozenset(program.shared_names())
    flows = minilang_flows(program)
    return close_slice(spec_variables(spec), flows, shared=shared)
