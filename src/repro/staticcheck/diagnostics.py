"""Diagnostic model for the static shared-state soundness checker.

Every finding is a :class:`Diagnostic` with a stable code from the
:data:`CATALOGUE`, an ERROR/WARN severity, and a ``file:line:col`` span —
the same span format :class:`~repro.observer.trace.TraceFormatError` and
:class:`~repro.lang.parser.MiniLangError` use, so every tool in the
repository points at source the same way.

Severity semantics (docs/STATIC.md has the full catalogue with repros):

* **ERROR** — the AST rewriter would *miss or miscompile* a shared-state
  access: the resulting event stream is unsound and Algorithm A's causal
  order can no longer be trusted for this program.
* **WARN** — the construct is instrumented correctly today but is fragile
  (escaping closures, values handed to opaque callees) or wasteful
  (instrumenting variables the specification never mentions).

The JSON shape emitted by :meth:`LintReport.to_json` is a stable contract
(``version`` is bumped on any incompatible change); CI publishes it as an
artifact and tests pin the schema.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticSpec",
    "CATALOGUE",
    "LintReport",
    "JSON_SCHEMA_VERSION",
]

#: Bumped whenever the ``repro lint --json`` document shape changes
#: incompatibly.  Consumers should reject versions they do not know.
JSON_SCHEMA_VERSION = 1


class Severity(enum.Enum):
    ERROR = "error"
    WARN = "warn"

    def __str__(self) -> str:  # pragma: no cover - display sugar
        return self.value


@dataclass(frozen=True)
class DiagnosticSpec:
    """Catalogue entry: the invariant part of every diagnostic with a code."""

    code: str
    severity: Severity
    title: str
    summary: str


#: The diagnostic catalogue.  Codes are stable API: tests, CI filters and
#: the fixture-corpus manifest all reference them, so existing codes are
#: never renumbered (retired codes are left reserved).
#:
#: SC1xx — Python functions registered with the AST instrumentor.
#: SC2xx — MiniLang sources.
#: SC3xx — specification consistency (``repro spec check``, docs/SPECCHECK.md).
CATALOGUE: dict[str, DiagnosticSpec] = {
    spec.code: spec
    for spec in [
        DiagnosticSpec(
            "SC101", Severity.ERROR, "shared-alias",
            "a shared name is copied into a plain local alias; accesses "
            "through the alias bypass the runtime and emit no events"),
        DiagnosticSpec(
            "SC102", Severity.ERROR, "shared-mutation",
            "attribute/subscript store or mutating method call through a "
            "shared binding; the mutation produces no WRITE event"),
        DiagnosticSpec(
            "SC103", Severity.WARN, "closure-capture",
            "a lambda or nested def captures a shared name; accesses are "
            "instrumented but execute on whatever thread later calls the "
            "closure, which can misattribute events"),
        DiagnosticSpec(
            "SC104", Severity.ERROR, "default-arg-read",
            "a shared name appears in the instrumented function's own "
            "parameter defaults, which evaluate at definition time, "
            "outside the monitored execution"),
        DiagnosticSpec(
            "SC105", Severity.ERROR, "comprehension-shadow",
            "a comprehension target rebinds a shared name; reads inside "
            "the comprehension silently switch to the loop variable"),
        DiagnosticSpec(
            "SC106", Severity.ERROR, "helper-escape",
            "call into an un-instrumented helper whose body (transitively) "
            "touches shared names; those accesses emit no events"),
        DiagnosticSpec(
            "SC107", Severity.ERROR, "global-decl",
            "'global'/'nonlocal' declaration of a shared name; shared "
            "variables live in the runtime, not module globals"),
        DiagnosticSpec(
            "SC108", Severity.ERROR, "param-shadow",
            "a function or lambda parameter rebinds a shared name; reads "
            "of the parameter would be miscompiled into runtime reads"),
        DiagnosticSpec(
            "SC109", Severity.WARN, "binding-shadow",
            "a with/except/import binding rebinds a shared name, shadowing "
            "it for the rest of the scope"),
        DiagnosticSpec(
            "SC110", Severity.ERROR, "del-shared",
            "'del' of a shared name; shared variables cannot be unbound"),
        DiagnosticSpec(
            "SC111", Severity.ERROR, "destructuring-write",
            "tuple/starred/for-target/walrus write to a shared name, a "
            "pattern the rewriter does not instrument"),
        DiagnosticSpec(
            "SC112", Severity.WARN, "arg-escape",
            "a shared value is passed to an unresolvable callee; if the "
            "value is mutable the callee can mutate it invisibly"),
        DiagnosticSpec(
            "SC113", Severity.WARN, "spec-irrelevant",
            "a shared variable is instrumented but outside the "
            "specification's relevant slice; its events only cost "
            "observer bandwidth"),
        DiagnosticSpec(
            "SC200", Severity.ERROR, "minilang-syntax",
            "MiniLang source does not parse"),
        DiagnosticSpec(
            "SC201", Severity.ERROR, "minilang-undeclared",
            "use of a name declared neither 'shared int' nor 'local int'"),
        DiagnosticSpec(
            "SC202", Severity.ERROR, "minilang-shadow",
            "a local declaration rebinds a shared name"),
        DiagnosticSpec(
            "SC203", Severity.WARN, "minilang-irrelevant",
            "a shared variable is outside the specification's relevant "
            "slice"),
        DiagnosticSpec(
            "SC300", Severity.ERROR, "spec-syntax",
            "the specification does not parse (or names an unknown "
            "engine); nothing downstream can run"),
        DiagnosticSpec(
            "SC301", Severity.ERROR, "spec-unsat",
            "the formula is unsatisfiable within the explored value "
            "domain: every trace violates it at the first state, so "
            "every monitored session reports a violation immediately"),
        DiagnosticSpec(
            "SC302", Severity.WARN, "spec-trivial",
            "the formula is trivially true: no reachable valuation ever "
            "produces a False verdict, so monitoring it can never find "
            "anything"),
        DiagnosticSpec(
            "SC303", Severity.WARN, "spec-vacuous",
            "a subformula never matters: replacing it by either true or "
            "false leaves the property equivalent on every explored "
            "trace"),
        DiagnosticSpec(
            "SC304", Severity.WARN, "spec-interval-empty",
            "an interval [p, q) subformula never opens: it is constantly "
            "false on every explored trace (q subsumes p, or p is "
            "unreachable)"),
        DiagnosticSpec(
            "SC305", Severity.WARN, "spec-constant",
            "a non-literal subformula is constant on every explored "
            "trace; the branch it guards is dead"),
        DiagnosticSpec(
            "SC306", Severity.WARN, "spec-mixed-fragment",
            "the formula mixes past- and future-time operators; neither "
            "the online monitor nor the lasso checker supports the mix, "
            "so consistency cannot be proven"),
        DiagnosticSpec(
            "SC310", Severity.ERROR, "pattern-syntax",
            "the pattern:STEPS selection does not parse"),
        DiagnosticSpec(
            "SC311", Severity.ERROR, "pattern-step-unreachable",
            "a pattern step can never match any event (thread @T0 — "
            "threads are 1-based — or a value constraint on a lock "
            "acquire/release, which carries no value)"),
        DiagnosticSpec(
            "SC312", Severity.WARN, "pattern-trivial",
            "a single-step pattern matches on the first qualifying event; "
            "no predictive ordering is involved"),
    ]
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a ``file:line:col`` span.

    ``symbol`` names the shared variable (or helper function) involved;
    ``function`` the enclosing analyzed function, when known.
    """

    code: str
    message: str
    file: str
    line: int
    col: int = 1
    symbol: Optional[str] = None
    function: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CATALOGUE:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return CATALOGUE[self.code].severity

    @property
    def title(self) -> str:
        return CATALOGUE[self.code].title

    @property
    def span(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"

    def pretty(self) -> str:
        where = f" [in {self.function}]" if self.function else ""
        return (f"{self.span}: {self.severity.value.upper()} {self.code} "
                f"({self.title}) {self.message}{where}")

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "title": self.title,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "function": self.function,
        }


@dataclass
class LintReport:
    """Aggregated findings over one or more analyzed files."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files: list[str] = field(default_factory=list)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def add_file(self, path: str) -> None:
        if path not in self.files:
            self.files.append(path)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARN]

    @property
    def ok(self) -> bool:
        """True when no ERROR-level finding exists (WARNs do not fail)."""
        return not self.errors

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics,
                      key=lambda d: (d.file, d.line, d.col, d.code))

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def to_json(self) -> dict:
        """The stable ``repro lint --json`` document."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro.staticcheck",
            "files": list(self.files),
            "summary": {
                "files": len(self.files),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "ok": self.ok,
            },
            "diagnostics": [d.to_json() for d in self.sorted()],
        }

    def pretty(self) -> str:
        lines = [d.pretty() for d in self.sorted()]
        lines.append(
            f"{len(self.files)} file(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)
