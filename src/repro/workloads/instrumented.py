"""AST-instrumented landing controller: the rewriter route as a workload.

The other workloads are generator programs for the cooperative scheduler;
this one is the paper's headline pipeline end to end — *uninstrumented*
Python thread functions, rewritten by :func:`instrument_function`, run on
real threads.  It exists so the AST route has a first-class workload for
the slicing parity tests, the benchmarks, and ``repro lint`` in CI (the
linter discovers the entry points from the ``instrument_function`` call
sites below).

The thread bodies mirror Fig. 1's flight controller: the controller
approves the landing off the radio signal while the watchdog clears the
signal, plus an uninstrumentable-looking but perfectly sound amount of
local computation (`ticks`) that slicing should ignore.
"""

from __future__ import annotations

from typing import Optional

from ..instrument import InstrumentedRuntime, instrument_function
from ..instrument.threads import run_threads, to_execution_result

__all__ = [
    "LANDING_AST_PROPERTY",
    "LANDING_AST_SHARED",
    "controller",
    "radio_watchdog",
    "run_instrumented_landing",
]

#: Same safety property as :mod:`repro.workloads.landing`, phrased over the
#: variables the AST route instruments.
LANDING_AST_PROPERTY = "start(landing == 1) -> [approved == 1, radio == 0)"

LANDING_AST_SHARED = ("landing", "approved", "radio", "ticks")

# repro-shared: landing, approved, radio, ticks
_INITIAL = {"landing": 0, "approved": 0, "radio": 1, "ticks": 0}


def controller() -> None:
    # askLandingApproval(): decide off the radio signal.
    if radio == 0:          # noqa: F821 - rewritten into runtime reads
        approved = 0        # noqa: F841
    else:
        approved = 1        # noqa: F841
    ticks = ticks + 1       # noqa: F821,F841 - bookkeeping, spec-irrelevant
    if approved == 1:       # noqa: F821
        landing = 1         # noqa: F841


def radio_watchdog() -> None:
    # checkRadio(): the signal drops; bookkeeping again.
    local_polls = 2
    ticks = ticks + local_polls  # noqa: F821,F841
    radio = 0               # noqa: F841


def run_instrumented_landing(
    relevant_only: Optional[frozenset] = None,
    sink=None,
):
    """Instrument both thread functions, run them on real threads, and
    return ``(runtime, execution_result)``.

    ``relevant_only`` flows into :func:`instrument_function`, so a sliced
    run exercises the quiet access path end to end.
    """
    runtime = InstrumentedRuntime(dict(_INITIAL), sink=sink,
                                  relevant_only=relevant_only)
    t1 = instrument_function(controller, set(LANDING_AST_SHARED), runtime,
                             relevant_only=relevant_only)
    t2 = instrument_function(radio_watchdog, set(LANDING_AST_SHARED), runtime,
                             relevant_only=relevant_only)
    run_threads(runtime, [lambda rt: t1(), lambda rt: t2()])
    return runtime, to_execution_result(runtime, "ast-landing")
