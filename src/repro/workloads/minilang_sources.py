"""The bundled workloads as MiniLang source text.

Having the same programs both as hand-built generators
(:mod:`repro.workloads`) and as compilable source gives the test-suite a
strong cross-validation axis: the compiled programs must produce the same
events, messages, and clocks as the native ones under the same schedules.
They also serve as ready-made inputs for ``python -m repro run``.
"""

from __future__ import annotations

__all__ = ["LANDING_SOURCE", "XYZ_SOURCE", "PHILOSOPHERS_SOURCE", "POOL_SOURCE"]

#: Paper Fig. 1 (the landing controller); watchdog drops the radio on its
#: second check, mirroring ``landing_controller(radio_down_iteration=1)``.
LANDING_SOURCE = """
shared int landing = 0, approved = 0, radio = 1;

thread controller {
    // askLandingApproval()
    if (radio == 0) { approved = 0; } else { approved = 1; }
    if (approved == 1) {
        landing = 1;
    }
}

thread watchdog {
    local int i = 0;
    local int go = 1;
    while (go == 1 && i < 4) {
        local int r = 0;
        r = radio;
        if (r == 0) { go = 0; } else {
            if (i == 1) { radio = 0; } else { skip; }
            i = i + 1;
        }
    }
}
"""

#: Paper Example 2: x++ ; ... ; y = x + 1  ‖  z = x + 1 ; ... ; x++ .
XYZ_SOURCE = """
shared int x = -1, y = 0, z = 0;

thread t1 {
    x = x + 1;      // x++
    skip;           // ...
    y = x + 1;
}

thread t2 {
    z = x + 1;
    skip;           // ...
    x = x + 1;      // x++
}
"""

#: Four dining philosophers, naive fork order (deadlock predicted).
PHILOSOPHERS_SOURCE = """
shared int meals = 0;

thread p0 { lock(fork0); skip; lock(fork1); meals = meals + 1;
            unlock(fork1); unlock(fork0); }
thread p1 { lock(fork1); skip; lock(fork2); meals = meals + 1;
            unlock(fork2); unlock(fork1); }
thread p2 { lock(fork2); skip; lock(fork3); meals = meals + 1;
            unlock(fork3); unlock(fork2); }
thread p3 { lock(fork3); skip; lock(fork0); meals = meals + 1;
            unlock(fork0); unlock(fork3); }
"""

#: A spawn/join worker pool (the §2 dynamic-thread extension).
POOL_SOURCE = """
shared int total = 0, done = 0;

worker adder {
    lock(m);
    total = total + 1;
    unlock(m);
}

thread main {
    spawn adder;
    spawn adder;
    spawn adder;
    join adder;
    join adder;
    join adder;
    done = 1;
}
"""
