"""Readers-writer and barrier workloads.

Two classic synchronization patterns built from the primitive ops, used to
exercise the analyses on realistic shapes:

* :func:`readers_writer` — a counting readers-writer lock: readers bump a
  reader count under a mutex and writers take the mutex for the whole
  write.  The *buggy* variant omits the mutex around the reader count,
  producing both data races and predicted invariant violations.
* :func:`barrier_program` — a sense-reversing-ish single-use barrier: every
  thread increments ``arrived`` under a lock and the last one notifies; the
  property "nobody proceeds before everyone arrived" holds in every
  consistent run.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sched.program import (
    Acquire,
    Internal,
    Notify,
    Op,
    Program,
    Read,
    Release,
    Wait,
    Write,
)

__all__ = ["readers_writer", "barrier_program", "RW_PROPERTY"]

#: A reader must never observe a torn write: data is written as two halves
#: (lo, hi) that must agree at the instant a read completes.
RW_PROPERTY = "start(observed == 1) -> lo == hi"


def readers_writer(
    n_readers: int = 1,
    writes: int = 2,
    safe: bool = True,
) -> Program:
    """One writer updating a two-part value; readers snapshotting it.

    The writer stores ``value`` as two shared halves ``lo``/``hi`` that must
    always agree when observed.  With ``safe=True`` both sides use the
    mutex; with ``safe=False`` the reader skips it, so the lattice contains
    runs in which the reader observes a torn (half-updated) value — a
    predicted violation of :data:`RW_PROPERTY` from a clean run.
    """

    def writer() -> Generator[Op, Any, None]:
        for k in range(1, writes + 1):
            yield Acquire("mutex")
            yield Write("lo", k, label=f"lo={k}")
            yield Internal(label="mid-write")
            yield Write("hi", k, label=f"hi={k}")
            yield Release("mutex")

    def reader() -> Generator[Op, Any, None]:
        # The whole observation — reads plus the 'observed' pulse the
        # property anchors on — sits inside the mutex in the safe variant;
        # the racy variant takes no lock at all.
        if safe:
            yield Acquire("mutex")
        _lo = yield Read("lo")
        _hi = yield Read("hi")
        yield Write("observed", 1, label="observed=1")
        yield Write("observed", 0, label="observed=0")
        if safe:
            yield Release("mutex")

    return Program(
        initial={"lo": 0, "hi": 0, "observed": 0, "mutex": 0},
        threads=[writer] + [reader] * n_readers,
        relevant_vars=frozenset({"lo", "hi", "observed"}),
        name=f"readers-writer-{'safe' if safe else 'racy'}",
        locks=frozenset({"mutex"}),
    )


def barrier_program(n_workers: int = 3) -> Program:
    """Single-use counting barrier: workers arrive, the last notifies, all
    proceed.  ``done_i`` writes happen strictly after every arrival in every
    consistent run — the lattice proves the barrier right."""
    if n_workers < 2:
        raise ValueError("a barrier needs at least two workers")

    def worker(me: int):
        def body() -> Generator[Op, Any, None]:
            yield Acquire("lock")
            n = yield Read("arrived")
            yield Write("arrived", n + 1, label=f"arrive T{me + 1}")
            is_last = (n + 1) == n_workers
            yield Release("lock")
            if is_last:
                yield Notify("gate")
            else:
                yield Wait("gate")
                yield Notify("gate")  # cascade the wake to the next waiter
            yield Write(f"done{me}", 1, label=f"done T{me + 1}")

        return body

    initial = {"arrived": 0, "lock": 0, "gate": 0}
    initial.update({f"done{i}": 0 for i in range(n_workers)})
    return Program(
        initial=initial,
        threads=[worker(i) for i in range(n_workers)],
        relevant_vars=frozenset({"arrived"} | {f"done{i}" for i in range(n_workers)}),
        name=f"barrier-{n_workers}",
        locks=frozenset({"lock"}),
    )
