"""The x/y/z workload (paper Example 2, Fig. 6).

Initially ``x = -1, y = 0, z = 0``; one thread runs ``x++; ...; y = x + 1``
and the other ``z = x + 1; ...; x++`` (the dots are code that touches no
shared variable — modeled as an :class:`~repro.sched.program.Internal`
event).

The monitored property: *"if (x > 0) then (y = 0) has been true in the past,
and since then (y > z) was always false"*, compactly ``(x > 0) -> [y = 0,
y > z)`` in the paper's interval notation.

The paper's observed execution passes through states ``(-1,0,0), (0,0,0),
(0,0,1), (1,0,1), (1,1,1)`` and generates the four messages of Fig. 6::

    e1: ⟨x=0, T1, (1,0)⟩     e2: ⟨z=1, T2, (1,1)⟩
    e3: ⟨y=1, T1, (2,0)⟩     e4: ⟨x=1, T2, (1,2)⟩

whose computation lattice has exactly three runs; the run
``e1, e3, e2, e4`` violates the property while the observed run does not.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sched.program import Internal, Op, Program, Read, Write

__all__ = ["xyz_program", "XYZ_PROPERTY", "XYZ_VARS", "OBSERVED_SCHEDULE"]

XYZ_VARS = ("x", "y", "z")

#: The Example 2 property in this library's spec language.
XYZ_PROPERTY = "(x > 0) -> [y == 0, y > z)"


def xyz_program() -> Program:
    """Build the Example 2 program (data values computed from actual reads)."""

    def thread1() -> Generator[Op, Any, None]:
        x = yield Read("x")
        yield Write("x", x + 1, label=f"x={x + 1}")  # x++
        yield Internal(label="...")
        x = yield Read("x")
        yield Write("y", x + 1, label=f"y={x + 1}")  # y = x + 1

    def thread2() -> Generator[Op, Any, None]:
        x = yield Read("x")
        yield Write("z", x + 1, label=f"z={x + 1}")  # z = x + 1
        yield Internal(label="...")
        x = yield Read("x")
        yield Write("x", x + 1, label=f"x={x + 1}")  # x++

    return Program(
        initial={"x": -1, "y": 0, "z": 0},
        threads=[thread1, thread2],
        relevant_vars=frozenset(XYZ_VARS),
        name="xyz",
    )


#: Thread choices realizing the paper's observed execution
#: (state sequence (-1,0,0), (0,0,0), (0,0,1), (1,0,1), (1,1,1)): thread 1
#: increments x and *reads* x for y's computation before thread 2's x++,
#: but performs the write of y after it.
OBSERVED_SCHEDULE = [0, 0, 1, 1, 0, 0, 1, 1, 1, 0]
