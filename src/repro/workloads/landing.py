"""The flight-controller workload (paper Fig. 1, Example 1, Fig. 5).

A two-threaded landing controller with shared variables ``landing``,
``approved`` and ``radio``::

    int landing = 0, approved = 0, radio = 1;
    void thread1() {
        askLandingApproval();            // if (radio==0) approved=0 else approved=1
        if (approved == 1) { landing = 1; }
    }
    void thread2() {
        while (radio) { checkRadio(); }  // checkRadio possibly clears radio
    }

The safety property (Example 1): *"If the plane has started landing, then it
is the case that landing has been approved and since the approval the radio
signal has never been down"* — in this library's spec language::

    start(landing == 1) -> [approved == 1, radio == 0)

The paper's observed (successful) execution has the radio go down *after*
landing has started; it emits exactly three relevant events — ``approved=1``,
``landing=1``, ``radio=0`` — from which JMPaX builds the six-state lattice of
Fig. 5 and predicts two violating runs.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sched.program import Internal, Op, Program, Read, Write

__all__ = [
    "landing_controller",
    "LANDING_PROPERTY",
    "LANDING_VARS",
    "OBSERVED_SCHEDULE",
]

#: Relevant variables, in the display order of Fig. 5's state triples.
LANDING_VARS = ("landing", "approved", "radio")

#: The Example 1 property in the spec language of :mod:`repro.logic`.
LANDING_PROPERTY = "start(landing == 1) -> [approved == 1, radio == 0)"


def landing_controller(radio_down_iteration: int = 1, max_radio_checks: int = 4) -> Program:
    """Build the Fig. 1 program.

    Args:
        radio_down_iteration: on which ``checkRadio`` call (0-based) thread 2
            clears the radio signal.  The default models the paper's
            scenario where the radio *does* eventually go down.
        max_radio_checks: loop bound for thread 2 (keeps exhaustive
            exploration finite; the radio is forced down at the bound).
    """
    if radio_down_iteration >= max_radio_checks:
        raise ValueError("radio_down_iteration must be < max_radio_checks")

    def thread1() -> Generator[Op, Any, None]:
        # askLandingApproval(): if (radio == 0) approved = 0 else approved = 1
        radio = yield Read("radio")
        if radio == 0:
            yield Write("approved", 0, label="approved=0")
        else:
            yield Write("approved", 1, label="approved=1")
        approved = yield Read("approved")
        if approved == 1:
            yield Write("landing", 1, label="landing=1")
        else:
            yield Internal(label="landing not approved")

    def thread2() -> Generator[Op, Any, None]:
        # while (radio) { checkRadio(); }
        for i in range(max_radio_checks):
            radio = yield Read("radio")
            if radio == 0:
                return
            if i == radio_down_iteration:
                yield Write("radio", 0, label="radio=0")  # checkRadio clears it
            else:
                yield Internal(label="checkRadio")

    return Program(
        initial={"landing": 0, "approved": 0, "radio": 1},
        threads=[thread1, thread2],
        relevant_vars=frozenset(LANDING_VARS),
        name="landing-controller",
    )


#: Thread choices realizing the paper's observed execution: thread 1 obtains
#: approval and starts landing, *then* thread 2's checkRadio clears the radio.
#: With ``radio_down_iteration=1``: T2 reads radio once (iteration 0 internal),
#: reads again, clears it, reads 0 and exits.
OBSERVED_SCHEDULE = [0, 0, 0, 0, 1, 1, 1, 1, 1]
