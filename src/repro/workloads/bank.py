"""Bank-account workload: an auditor racing a transfer.

Thread 1 transfers money from ``a`` to ``b`` (two writes with latency in
between, so conservation ``a + b == total`` is transiently broken *inside*
the transfer).  Thread 2 is an auditor that snapshots the books and raises
the ``audited`` flag.  The monitored property anchors conservation at the
moment of audit::

    start(audited == 1) -> a + b == 100

If the observed execution audited *before* the transfer, the audit flag has
no causal dependency on the transfer's writes (the auditor's reads precede
them), so the computation lattice contains runs in which the audit lands
mid-transfer — a predicted violation, exactly the landing-controller pattern
with money instead of radios.  The locked variant orders the audit with the
whole transfer and predicts clean (experiment E8's pattern).
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from ..sched.program import Acquire, Internal, Op, Program, Read, Release, Write

__all__ = ["transfer_program", "AUDIT_PROPERTY", "CONSERVATION_PROPERTY"]

#: Conservation anchored at the audit instant (the predictable property).
AUDIT_PROPERTY = "start(audited == 1) -> a + b == 100"

#: Raw transient conservation — violated inside any transfer, even serial
#: runs; kept for tests that need an always-violated property.
CONSERVATION_PROPERTY = "a + b == 100"


def transfer_program(
    amounts: Sequence[int] = (30,),
    locked: bool = False,
    initial_a: int = 60,
    initial_b: int = 40,
) -> Program:
    """Build the transfer+auditor program.

    Args:
        amounts: one transfer ``a -> b`` per entry.
        locked: protect both the transfer and the audit with one lock;
            the audit can then never land mid-transfer in *any* run.
    """

    def transferrer() -> Generator[Op, Any, None]:
        for amt in amounts:
            if locked:
                yield Acquire("lock")
            s = yield Read("a")
            yield Write("a", s - amt, label=f"a-={amt}")
            yield Internal(label="latency")
            d = yield Read("b")
            yield Write("b", d + amt, label=f"b+={amt}")
            if locked:
                yield Release("lock")

    def auditor() -> Generator[Op, Any, None]:
        if locked:
            yield Acquire("lock")
        yield Read("a")
        yield Read("b")
        yield Write("audited", 1, label="audited=1")
        if locked:
            yield Release("lock")

    initial = {"a": initial_a, "b": initial_b, "audited": 0}
    if locked:
        initial["lock"] = 0
    return Program(
        initial=initial,
        threads=[transferrer, auditor],
        relevant_vars=frozenset({"a", "b", "audited"}),
        name=f"bank-{'locked' if locked else 'racy'}",
        locks=frozenset({"lock"}) if locked else frozenset(),
    )
