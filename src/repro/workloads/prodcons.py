"""Producer/consumer workload exercising wait/notify instrumentation (§3.1).

The paper treats condition synchronization by "generating a write of a dummy
shared variable by both the notifying thread before notification and by the
notified thread after notification" — which installs a happens-before edge
from producer to woken consumer.  This workload checks that the edge appears
in the computation and that the lattice never predicts a consume-before-
produce run.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sched.program import (
    Acquire,
    Notify,
    Op,
    Program,
    Read,
    Release,
    Wait,
    Write,
)

__all__ = ["producer_consumer", "handoff"]


def producer_consumer(items: int = 2) -> Program:
    """One producer hands ``items`` values to one consumer, one at a time.

    A single-slot buffer with a two-way handshake: the producer fills
    ``slot`` and notifies ``cond``, then waits on ``ack`` before producing
    the next item; the consumer waits on ``cond``, consumes, and notifies
    ``ack``.  Every produce-i therefore happens-before consume-i, and
    consume-i happens-before produce-(i+1) — in *every* run of the lattice.
    """
    if items < 1:
        raise ValueError("need at least one item")

    def producer() -> Generator[Op, Any, None]:
        for i in range(items):
            yield Acquire("lock")
            yield Write("slot", i + 1, label=f"produce {i + 1}")
            yield Notify("cond")
            yield Release("lock")
            yield Wait("ack")

    def consumer() -> Generator[Op, Any, None]:
        for _i in range(items):
            yield Wait("cond")
            yield Acquire("lock")
            v = yield Read("slot")
            yield Write("consumed", v, label=f"consume {v}")
            yield Release("lock")
            yield Notify("ack")

    return Program(
        initial={"slot": 0, "consumed": 0, "lock": 0, "cond": 0, "ack": 0},
        threads=[producer, consumer],
        relevant_vars=frozenset({"slot", "consumed"}),
        name=f"producer-consumer-{items}",
        locks=frozenset({"lock"}),
    )


def handoff() -> Program:
    """Minimal wait/notify handoff: T2 must observe T1's write.

    Property: ``done == 1`` implies ``data == 42`` in every predicted run —
    the notify edge forces ``data=42 ≺ wake ≺ done=1``.
    """

    def setter() -> Generator[Op, Any, None]:
        yield Write("data", 42, label="data=42")
        yield Notify("cond")

    def waiter() -> Generator[Op, Any, None]:
        yield Wait("cond")
        d = yield Read("data")
        yield Write("done", 1 if d == 42 else -1, label="done")

    return Program(
        initial={"data": 0, "done": 0, "cond": 0},
        threads=[setter, waiter],
        relevant_vars=frozenset({"data", "done"}),
        name="handoff",
    )
