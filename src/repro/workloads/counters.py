"""Counter workloads: data races and lock-protected variants.

These exercise the classic use of happens-before analysis (the paper's §1
motivates data races as a target bug class) and experiment E8: modeling lock
operations as writes of the lock's shared variable (§3.1) must prune all
runs that interleave critical sections.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sched.program import Acquire, Internal, Op, Program, Read, Release, Write

__all__ = ["racy_counter", "locked_counter", "peterson_like"]


def racy_counter(n_threads: int = 2, increments: int = 1) -> Program:
    """Each thread performs ``increments`` unprotected ``c++`` updates.

    The read and the write of each increment are separate events, so
    schedules exist that lose updates — and *every* pair of accesses from
    different threads with one write is a data race.
    """
    if n_threads < 1 or increments < 1:
        raise ValueError("need at least one thread and one increment")

    def make_body() -> Any:
        def body() -> Generator[Op, Any, None]:
            for _ in range(increments):
                c = yield Read("c")
                yield Write("c", c + 1)

        return body

    return Program(
        initial={"c": 0},
        threads=[make_body() for _ in range(n_threads)],
        relevant_vars=frozenset({"c"}),
        name=f"racy-counter-{n_threads}x{increments}",
    )


def locked_counter(n_threads: int = 2, increments: int = 1) -> Program:
    """The same counter with each increment inside ``lock``-protected
    critical sections; the lattice must contain no lost-update run (E8)."""
    if n_threads < 1 or increments < 1:
        raise ValueError("need at least one thread and one increment")

    def make_body() -> Any:
        def body() -> Generator[Op, Any, None]:
            for _ in range(increments):
                yield Acquire("lock")
                c = yield Read("c")
                yield Write("c", c + 1)
                yield Release("lock")

        return body

    return Program(
        initial={"c": 0, "lock": 0},
        threads=[make_body() for _ in range(n_threads)],
        relevant_vars=frozenset({"c"}),
        name=f"locked-counter-{n_threads}x{increments}",
        locks=frozenset({"lock"}),
    )


def peterson_like(busy_steps: int = 1) -> Program:
    """A flag-based handshake whose safety property ("never both in the
    critical section") holds on polite schedules but is violated on others —
    a liveness/safety playground for the predictive analyzer.

    Thread i sets ``flag_i = 1``, does some internal work, checks the other
    flag, and enters the critical section (``in_cs = i + 1``) only if the
    other flag is clear, then leaves (``in_cs = 0``).  This protocol is
    deliberately broken (check-then-act race on the flags).
    """

    def make_body(me: int, other: int) -> Any:
        def body() -> Generator[Op, Any, None]:
            yield Write(f"flag{me}", 1)
            for _ in range(busy_steps):
                yield Internal(label="busy")
            other_flag = yield Read(f"flag{other}")
            if other_flag == 0:
                yield Write("in_cs", me + 1, label=f"enter cs T{me + 1}")
                yield Write("in_cs", 0, label=f"leave cs T{me + 1}")
            yield Write(f"flag{me}", 0)

        return body

    return Program(
        initial={"flag0": 0, "flag1": 0, "in_cs": 0},
        threads=[make_body(0, 1), make_body(1, 0)],
        relevant_vars=frozenset({"flag0", "flag1", "in_cs"}),
        name="peterson-like",
    )
