"""Workloads: the paper's example programs and generators for tests/benches."""

from .bank import AUDIT_PROPERTY, CONSERVATION_PROPERTY, transfer_program
from .counters import locked_counter, peterson_like, racy_counter
from .landing import (
    LANDING_PROPERTY,
    LANDING_VARS,
    landing_controller,
)
from .landing import OBSERVED_SCHEDULE as LANDING_OBSERVED_SCHEDULE
from .instrumented import (
    LANDING_AST_PROPERTY,
    LANDING_AST_SHARED,
    run_instrumented_landing,
)
from .prodcons import handoff, producer_consumer
from .random_programs import random_execution_specs, random_program
from .rwlock import RW_PROPERTY, barrier_program, readers_writer
from .xyz import XYZ_PROPERTY, XYZ_VARS, xyz_program
from .xyz import OBSERVED_SCHEDULE as XYZ_OBSERVED_SCHEDULE

__all__ = [
    "AUDIT_PROPERTY",
    "CONSERVATION_PROPERTY",
    "transfer_program",
    "locked_counter",
    "peterson_like",
    "racy_counter",
    "LANDING_PROPERTY",
    "LANDING_VARS",
    "LANDING_OBSERVED_SCHEDULE",
    "landing_controller",
    "LANDING_AST_PROPERTY",
    "LANDING_AST_SHARED",
    "run_instrumented_landing",
    "handoff",
    "producer_consumer",
    "random_execution_specs",
    "random_program",
    "RW_PROPERTY",
    "barrier_program",
    "readers_writer",
    "XYZ_PROPERTY",
    "XYZ_VARS",
    "XYZ_OBSERVED_SCHEDULE",
    "xyz_program",
]
