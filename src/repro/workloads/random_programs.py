"""Random straightline program generation for property tests and benchmarks.

The generated thread bodies are *straightline* (control flow independent of
data): this guarantees that every linear extension of the computation is an
actually-executable run of the program, so ground-truth comparisons between
the lattice and :func:`repro.sched.scheduler.explore_all` are exact — the
setting in which the paper's prediction is *precise* rather than merely
conservative.

All randomness flows through an explicit ``random.Random`` instance; nothing
here touches global RNG state (reproducibility rule from DESIGN.md §5).
"""

from __future__ import annotations

import random
from typing import Optional

from ..sched.program import Internal, Op, Program, Read, Write, straightline

__all__ = ["random_program", "random_execution_specs"]


def random_program(
    rng: random.Random,
    n_threads: int = 2,
    n_vars: int = 3,
    ops_per_thread: int = 5,
    write_ratio: float = 0.4,
    internal_ratio: float = 0.2,
    relevant_subset: Optional[int] = None,
    name: str = "random",
) -> Program:
    """Generate a random straightline multithreaded program.

    Args:
        rng: seeded random source.
        n_threads: number of threads.
        n_vars: shared variables ``v0 .. v{n_vars-1}``, all initialized to 0.
        ops_per_thread: events per thread.
        write_ratio: probability an op is a write (else read, subject to
            ``internal_ratio``).
        internal_ratio: probability an op is internal.
        relevant_subset: if given, only the first ``relevant_subset``
            variables are specification-relevant (exercises §2.3's point that
            irrelevant variables still shape the causal order).
    """
    if n_threads < 1 or n_vars < 1 or ops_per_thread < 0:
        raise ValueError("invalid random program shape")
    if not 0 <= write_ratio <= 1 or not 0 <= internal_ratio <= 1:
        raise ValueError("ratios must be within [0, 1]")
    variables = [f"v{i}" for i in range(n_vars)]
    bodies = []
    counter = 0
    for _t in range(n_threads):
        ops: list[Op] = []
        for _k in range(ops_per_thread):
            u = rng.random()
            if u < internal_ratio:
                ops.append(Internal())
            elif u < internal_ratio + (1 - internal_ratio) * write_ratio:
                counter += 1
                ops.append(Write(rng.choice(variables), counter))
            else:
                ops.append(Read(rng.choice(variables)))
        bodies.append(straightline(ops))
    rel = variables if relevant_subset is None else variables[:relevant_subset]
    return Program(
        initial={v: 0 for v in variables},
        threads=bodies,
        relevant_vars=frozenset(rel),
        name=name,
    )


def random_execution_specs(
    rng: random.Random,
    n_threads: int = 2,
    n_vars: int = 3,
    n_events: int = 12,
    write_ratio: float = 0.4,
    internal_ratio: float = 0.2,
) -> list[tuple]:
    """Random event-spec tuples for :func:`repro.core.computation.execution_from_specs`.

    Unlike :func:`random_program` this draws a single interleaved sequence
    directly — cheaper when only the core algorithms (no scheduler) are under
    test.
    """
    variables = [f"v{i}" for i in range(n_vars)]
    specs: list[tuple] = []
    for k in range(n_events):
        t = rng.randrange(n_threads)
        u = rng.random()
        if u < internal_ratio:
            specs.append((t, "i", None))
        elif u < internal_ratio + (1 - internal_ratio) * write_ratio:
            specs.append((t, "w", rng.choice(variables), k))
        else:
            specs.append((t, "r", rng.choice(variables)))
    return specs
