"""Full materialization of the computation lattice (paper §4, Figs. 5–6).

Builds every consistent cut reachable from the bottom (empty) cut, with its
global state and outgoing edges.  This is the offline/small-scale view used
by the figure reproductions, run enumeration, and as the reference
implementation against which the space-efficient level-by-level builder
(:mod:`repro.lattice.levels`) is validated.

The lattice can be exponential in concurrency width ("the computation
lattice can grow quite large") — benchmark E10 measures exactly that; for
online analysis use :class:`repro.lattice.levels.LevelByLevelBuilder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence

from ..core.events import Message, VarName
from .cut import Cut, MessageChains, apply_message

__all__ = ["ComputationLattice", "Run"]


@dataclass(frozen=True)
class Run:
    """One consistent multithreaded run: a maximal path through the lattice.

    ``messages[k]`` labels the step from ``states[k]`` to ``states[k+1]``,
    so ``len(states) == len(messages) + 1``.
    """

    messages: tuple[Message, ...]
    states: tuple[Mapping[VarName, Any], ...]

    def state_tuples(self, variables: Sequence[VarName]) -> list[tuple]:
        """States projected to ``variables`` in display order (Fig. 5/6)."""
        return [tuple(s[v] for v in variables) for s in self.states]

    def pretty(self, variables: Optional[Sequence[VarName]] = None) -> str:
        if variables is None:
            variables = sorted({v for s in self.states for v in s}, key=str)
        parts = [str(tuple(self.states[0][v] for v in variables))]
        for m, s in zip(self.messages, self.states[1:]):
            parts.append(f"--{m.event.label or m.event.pretty()}--> "
                         f"{tuple(s[v] for v in variables)}")
        return " ".join(parts)


class ComputationLattice:
    """The lattice of all consistent cuts of a multithreaded computation.

    Args:
        n_threads: width of the MVCs.
        initial_state: shared-variable valuation before any relevant event
            (the observer learns it at instrumentation time, Fig. 4).
        messages: the relevant messages, in *any* delivery order.
    """

    def __init__(
        self,
        n_threads: int,
        initial_state: Mapping[VarName, Any],
        messages: Iterable[Message],
    ):
        self._chains = MessageChains(n_threads)
        for m in messages:
            self._chains.insert(m)
        for i in range(n_threads):
            if self._chains.has_gap(i):
                raise ValueError(
                    f"thread {i} has missing relevant messages; the full "
                    f"builder needs the complete computation"
                )
        self._n = n_threads
        self._initial = dict(initial_state)
        self._top = self._chains.totals()
        self._states: dict[Cut, dict[VarName, Any]] = {}
        self._edges: dict[Cut, list[tuple[Message, Cut]]] = {}
        self._build()

    def _build(self) -> None:
        bottom = (0,) * self._n
        self._states[bottom] = dict(self._initial)
        frontier = [bottom]
        while frontier:
            nxt: list[Cut] = []
            for cut in frontier:
                edges: list[tuple[Message, Cut]] = []
                for i in range(self._n):
                    m = self._chains.enabled_at(cut, i)
                    if m is None:
                        continue
                    succ = cut[:i] + (cut[i] + 1,) + cut[i + 1:]
                    edges.append((m, succ))
                    if succ not in self._states:
                        self._states[succ] = apply_message(self._states[cut], m)
                        nxt.append(succ)
                self._edges[cut] = edges
            frontier = nxt

    # -- shape ---------------------------------------------------------------

    @property
    def n_threads(self) -> int:
        return self._n

    @property
    def bottom(self) -> Cut:
        return (0,) * self._n

    @property
    def top(self) -> Cut:
        """The full cut (all relevant events included)."""
        return self._top

    @property
    def cuts(self) -> frozenset[Cut]:
        return frozenset(self._states)

    def __len__(self) -> int:
        """Number of lattice nodes (global states, counting the bottom)."""
        return len(self._states)

    def state(self, cut: Cut) -> Mapping[VarName, Any]:
        return dict(self._states[cut])

    def successors(self, cut: Cut) -> Sequence[tuple[Message, Cut]]:
        return tuple(self._edges.get(cut, ()))

    def levels(self) -> list[list[Cut]]:
        """Cuts grouped by level (total event count), bottom first."""
        height = sum(self._top)
        out: list[list[Cut]] = [[] for _ in range(height + 1)]
        for cut in self._states:
            out[sum(cut)].append(cut)
        for level in out:
            level.sort()
        return out

    def state_tuple(self, cut: Cut, variables: Sequence[VarName]) -> tuple:
        s = self._states[cut]
        return tuple(s[v] for v in variables)

    # -- runs ------------------------------------------------------------------

    def count_runs(self) -> int:
        """Number of maximal paths (consistent multithreaded runs) — DP over
        the DAG, no enumeration."""
        from functools import lru_cache

        @lru_cache(maxsize=None)
        def paths_from(cut: Cut) -> int:
            edges = self._edges.get(cut, ())
            if not edges:
                return 1 if cut == self._top else 0
            return sum(paths_from(succ) for _m, succ in edges)

        return paths_from(self.bottom)

    def runs(self, limit: Optional[int] = None) -> Iterator[Run]:
        """Enumerate all runs (DFS, deterministic order).  ``limit`` bounds
        the enumeration for large lattices."""
        produced = 0
        stack_msgs: list[Message] = []
        stack_states: list[dict[VarName, Any]] = [dict(self._initial)]

        def dfs(cut: Cut) -> Iterator[Run]:
            nonlocal produced
            edges = self._edges.get(cut, ())
            if not edges:
                if cut == self._top:
                    yield Run(tuple(stack_msgs), tuple(dict(s) for s in stack_states))
                return
            for m, succ in edges:
                stack_msgs.append(m)
                stack_states.append(apply_message(stack_states[-1], m))
                yield from dfs(succ)
                stack_msgs.pop()
                stack_states.pop()

        for run in dfs(self.bottom):
            yield run
            produced += 1
            if limit is not None and produced >= limit:
                return

    def observed_run(self) -> Run:
        """The run in emission order (the execution that actually happened),
        available when messages carry ``emit_index`` stamps."""
        msgs = sorted(self._chains.all_messages(), key=lambda m: m.emit_index)
        if any(m.emit_index < 0 for m in msgs):
            raise ValueError("messages lack emit_index stamps")
        states = [dict(self._initial)]
        for m in msgs:
            states.append(apply_message(states[-1], m))
        return Run(tuple(msgs), tuple(states))
