"""Consistent cuts and global states of a multithreaded computation.

A *cut* counts, per thread, how many relevant events have been included; it
is *consistent* when it is downward-closed under the relevant causality
``⊳`` — i.e. including an event implies including everything that causally
precedes it.  Consistent cuts are exactly the nodes of the paper's
*computation lattice* (§4), and each induces a well-defined global state:
two writes of the same variable are always causally ordered (write-write
causality), so "the last write of x inside the cut" is unambiguous.

Messages are organized into per-thread chains first
(:class:`MessageChains`): because every relevant event increments its own
thread's clock component, a message's 1-based position within its thread's
relevant chain is simply ``clock[thread]`` — no sequencing metadata beyond
the MVC itself is needed, which is what lets the observer ingest messages in
arbitrary delivery order.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional

from ..core.events import Message, VarName

__all__ = ["Cut", "MessageChains", "apply_message"]

#: A cut: per-thread count of included relevant events.
Cut = tuple[int, ...]

#: A global state: shared-variable valuation.
GlobalState = Mapping[VarName, Any]


class MessageChains:
    """Per-thread chains of relevant messages, indexed by ``clock[thread]``.

    Supports incremental insertion in any order and gap detection (a missing
    index means a message is still in flight — the level-by-level builder
    stalls on it).
    """

    def __init__(self, n_threads: int):
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self._n = n_threads
        # chain[i] maps 1-based relevant index -> message
        self._chains: list[dict[int, Message]] = [dict() for _ in range(n_threads)]

    @property
    def n_threads(self) -> int:
        return self._n

    def insert(self, msg: Message) -> None:
        if msg.thread >= self._n:
            raise ValueError(
                f"message from thread {msg.thread} but chains hold {self._n} threads"
            )
        k = msg.clock[msg.thread]
        if k < 1:
            raise ValueError(
                f"relevant message must have clock[i] >= 1, got {msg.pretty()}"
            )
        chain = self._chains[msg.thread]
        if k in chain:
            raise ValueError(f"duplicate relevant index {k} for thread {msg.thread}")
        chain[k] = msg

    def get(self, thread: int, index: int) -> Optional[Message]:
        """Message with 1-based relevant index ``index`` of ``thread``."""
        return self._chains[thread].get(index)

    def counts(self) -> Cut:
        """Highest contiguous-from-1 relevant index received per thread."""
        out = []
        for chain in self._chains:
            k = 0
            while (k + 1) in chain:
                k += 1
            out.append(k)
        return tuple(out)

    def totals(self) -> Cut:
        """Number of messages received per thread (gaps included)."""
        return tuple(len(c) for c in self._chains)

    def has_gap(self, thread: int) -> bool:
        chain = self._chains[thread]
        return len(chain) > 0 and max(chain) != len(chain)

    def has_beyond(self, cut: Cut) -> bool:
        """Any buffered message with a relevant index beyond the cut?"""
        if len(cut) != self._n:
            raise ValueError("cut width mismatch")
        for i, chain in enumerate(self._chains):
            if chain and max(chain) > cut[i]:
                return True
        return False

    def all_messages(self) -> Iterator[Message]:
        for chain in self._chains:
            for k in sorted(chain):
                yield chain[k]

    def enabled_at(self, cut: Cut, thread: int) -> Optional[Message]:
        """The next message of ``thread`` if it is enabled at ``cut``.

        The candidate is the message with relevant index ``cut[thread] + 1``;
        it is enabled iff its causal past is inside the cut:
        ``clock[j] <= cut[j]`` for every other thread ``j`` (its own
        component is ``cut[thread] + 1`` by construction).  Returns ``None``
        if the message is absent (in flight / thread done) or not enabled.
        """
        m = self._chains[thread].get(cut[thread] + 1)
        if m is None:
            return None
        # raw tuple indexing: this is the hottest loop of lattice expansion
        clock = m.clock.components
        for j in range(self._n):
            if j != thread and clock[j] > cut[j]:
                return None
        return m

    def is_consistent(self, cut: Cut) -> bool:
        """Downward-closure check: every included message's causal past is
        included too.  (Primarily for tests; builders only generate
        consistent cuts.)"""
        if len(cut) != self._n:
            raise ValueError("cut width mismatch")
        for i, k in enumerate(cut):
            if k < 0 or k > len(self._chains[i]):
                return False
            # It suffices to check the *last* included message per thread:
            # earlier ones causally precede it, and clocks are monotone
            # along a thread's chain.
            if k >= 1:
                m = self._chains[i].get(k)
                if m is None:
                    return False
                for j in range(self._n):
                    if j != i and m.clock[j] > cut[j]:
                        return False
        return True


def apply_message(state: GlobalState, msg: Message) -> dict[VarName, Any]:
    """Global state after ``msg``: writes update their variable.

    JMPaX's relevant events are writes, but read/internal relevant events are
    permitted (they leave the state unchanged).
    """
    e = msg.event
    if e.kind.is_write and e.var is not None:
        new = dict(state)
        new[e.var] = e.value
        return new
    return dict(state)
