"""Online level-by-level lattice construction with monitor states (paper §4).

The paper's space optimization: *"only one cut in the computation lattice is
needed at any time, in particular one level"* — because for FSM-translatable
properties (our synthesized ptLTL monitors) everything the past of a path
matters for is captured by the monitor state stored with the node.  The
builder therefore keeps at most two consecutive levels resident (the level
being expanded and the one being produced) and garbage-collects everything
older; experiment E5 measures the resulting memory gap versus the full
lattice.

Events arrive *incrementally and in any order*; a level is expanded only
once it is known complete: for every frontier cut and every thread, the next
message of that thread either has been received (its 1-based position within
the thread is just ``clock[thread]``) or is known to not exist (the stream
was closed).  Until then the builder simply buffers — this is the "buffer
them at the observer's side and build the lattice on a level-by-level basis
as the events become available" of §4.

Violations are reported with a full counterexample run, reconstructed from a
per-(cut, monitor-state) chain of parent pointers.  Path tracking can be
disabled (``track_paths=False``) to realize the paper's strict memory bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..core.events import Message, VarName
from ..logic.monitor import Monitor, MonitorState
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .cut import Cut, MessageChains, apply_message
from .full import Run

__all__ = ["LevelByLevelBuilder", "Violation", "BuilderStats"]

_C_LEVELS = _metrics.REGISTRY.counter(
    "lattice.levels", unit="levels",
    help="lattice levels fully expanded")
_C_NODES = _metrics.REGISTRY.counter(
    "lattice.nodes_expanded", unit="cuts",
    help="lattice cuts expanded (sum of expanded level widths)")
_C_MSTEPS = _metrics.REGISTRY.counter(
    "lattice.monitor_steps", unit="steps",
    help="monitor transitions requested ((state, valuation) lookups)")
_C_MHITS = _metrics.REGISTRY.counter(
    "lattice.monitor_cache_hits", unit="steps",
    help="monitor transitions served from the step memo cache")
_C_VIOLATIONS = _metrics.REGISTRY.counter(
    "lattice.violations", unit="violations",
    help="safety violations recorded (observed or predicted)")
_H_WIDTH = _metrics.REGISTRY.histogram(
    "lattice.level_width", unit="cuts",
    help="cuts per expanded level (lattice breadth profile)")
_H_STATES = _metrics.REGISTRY.histogram(
    "lattice.level_states", unit="states",
    help="(cut, monitor-state) pairs per expanded level")
_G_FRONTIER = _metrics.REGISTRY.gauge(
    "lattice.frontier_cuts", unit="cuts",
    help="width of the current frontier (max = widest level seen)")
_G_FSTATES = _metrics.REGISTRY.gauge(
    "lattice.frontier_states", unit="states",
    help="(cut, monitor-state) pairs resident in the current frontier")


class _PathNode:
    """Immutable cons cell: the message that led here, and the path before it."""

    __slots__ = ("msg", "parent")

    def __init__(self, msg: Message, parent: Optional["_PathNode"]):
        self.msg = msg
        self.parent = parent

    def to_messages(self) -> tuple[Message, ...]:
        out: list[Message] = []
        node: Optional[_PathNode] = self
        while node is not None:
            out.append(node.msg)
            node = node.parent
        out.reverse()
        return tuple(out)


@dataclass(frozen=True)
class Violation:
    """A predicted (or observed) safety violation on some multithreaded run."""

    #: The run prefix that violates the property (relevant messages in order).
    messages: tuple[Message, ...]
    #: Global states along the prefix, initial state first.
    states: tuple[Mapping[VarName, Any], ...]
    #: The lattice cut at which the monitor reported False.
    cut: Cut
    #: The violating monitor state (None when built without a monitor).
    monitor_state: MonitorState = field(default=None, compare=False)

    def run(self) -> Run:
        return Run(self.messages, self.states)

    def pretty(self, variables: Optional[Sequence[VarName]] = None) -> str:
        return self.run().pretty(variables)


@dataclass
class BuilderStats:
    """Resource accounting for experiment E5."""

    nodes_expanded: int = 0
    #: Maximum number of cuts simultaneously resident (both live levels).
    peak_resident_cuts: int = 0
    #: Maximum number of (cut, monitor-state) pairs simultaneously resident.
    peak_resident_states: int = 0
    levels_completed: int = 0
    messages_buffered: int = 0


class _Node:
    __slots__ = ("state", "state_key", "mstates")

    def __init__(self, state: dict):
        self.state = state
        # hashable valuation, the monitor-step memoization key component
        self.state_key = tuple(sorted(state.items(), key=lambda kv: str(kv[0])))
        # monitor state -> representative path (or None when not tracking)
        self.mstates: dict[MonitorState, Optional[_PathNode]] = {}


class LevelByLevelBuilder:
    """Incremental lattice construction + all-runs-in-parallel monitoring.

    Args:
        n_threads: MVC width.
        initial_state: shared-variable valuation before any relevant event.
        monitor: optional synthesized monitor; when given, every path of the
            lattice is checked and violations collected in :attr:`violations`.
        track_paths: keep parent pointers for counterexample reconstruction.
            Disable to realize the paper's two-level memory bound exactly.

    Usage::

        b = LevelByLevelBuilder(2, {"x": -1, "y": 0, "z": 0}, Monitor(spec))
        for msg in delivery_order:      # any order!
            b.feed(msg)
        b.finish()                      # no more messages will come
        for v in b.violations: ...
    """

    def __init__(
        self,
        n_threads: int,
        initial_state: Mapping[VarName, Any],
        monitor: Optional[Monitor] = None,
        track_paths: bool = True,
        max_frontier: int = 1_000_000,
        project: Optional[Iterable[VarName]] = None,
    ):
        self._n = n_threads
        self._chains = MessageChains(n_threads)
        self._monitor = monitor
        self._track = track_paths
        self._closed = False
        # Known total of relevant events per thread (-1 = unknown).  Set by
        # mark_thread_done when the instrumentation sends end-of-thread
        # markers, enabling online progress before the stream closes.
        self._known_totals: list[int] = [-1] * n_threads
        self._done = False
        self._max_frontier = max_frontier
        # State projection (§2.3's spirit on the observer side): when the
        # message stream carries writes of variables the monitor never
        # reads, tracking them in node states only shrinks memoization hit
        # rates.  `project` restricts global states to the given variables;
        # defaults to the monitor's variables when a monitor is present.
        if project is not None:
            self._project: Optional[frozenset] = frozenset(project)
        elif monitor is not None:
            self._project = frozenset(monitor.variables)
        else:
            self._project = None
        self.stats = BuilderStats()
        self.violations: list[Violation] = []
        self._initial = dict(initial_state)
        # Monitor.step is pure in (mstate, valuation); in wide lattices many
        # cuts share the same valuation (independent writes commute), so
        # memoizing the step saves most monitor work (profiled, DESIGN §4).
        self._step_cache: dict[tuple, tuple] = {}

        bottom = (0,) * n_threads
        node = _Node(self._projected(dict(initial_state)))
        if monitor is not None:
            ms, ok = monitor.step(monitor.initial_state(), node.state)
            node.mstates[ms] = None
            if not ok:
                self._record_violation(bottom, None, node, ms)
        else:
            node.mstates[None] = None
        self._frontier: dict[Cut, _Node] = {bottom: node}
        self._level = 0
        self._bump_peaks(len(self._frontier), self._count_states(self._frontier))

    # -- feeding ------------------------------------------------------------------

    def feed(self, msg: Message) -> None:
        """Buffer one relevant message (any delivery order) and advance as
        far as the received prefix allows."""
        if self._closed:
            raise RuntimeError("cannot feed a closed builder")
        self._chains.insert(msg)
        self.stats.messages_buffered += 1
        self._advance()

    def feed_many(self, msgs: Iterable[Message]) -> None:
        """Buffer many messages, then advance once.

        State-identical to calling :meth:`feed` per message — expansion is
        monotone in the buffered set, so deferring :meth:`_advance` to the
        end reaches exactly the same frontier/violations — but skips the
        per-message O(frontier × n) readiness scans, which dominate when
        large batches arrive (the end-to-end batching path).
        """
        if self._closed:
            raise RuntimeError("cannot feed a closed builder")
        inserted = 0
        for m in msgs:
            self._chains.insert(m)
            inserted += 1
        self.stats.messages_buffered += inserted
        self._advance()

    def mark_thread_done(self, thread: int, total_relevant: int) -> None:
        """Declare that ``thread`` will emit exactly ``total_relevant``
        relevant events in total (end-of-thread marker from the
        instrumentation).  Lets levels advance online without waiting for
        the global end of stream."""
        if not 0 <= thread < self._n:
            raise IndexError(thread)
        if total_relevant < 0:
            raise ValueError("total_relevant must be >= 0")
        known = self._known_totals[thread]
        if known >= 0 and known != total_relevant:
            raise ValueError(
                f"conflicting totals for thread {thread}: {known} vs {total_relevant}"
            )
        self._known_totals[thread] = total_relevant
        self._advance()

    def finish(self) -> None:
        """Declare end-of-stream: threads with no pending next message are
        now known finished, unblocking the final levels."""
        self._closed = True
        self._advance()
        # The build is complete only if expansion stopped at a top cut that
        # consumed every buffered message; a gap in some thread's chain
        # makes expansion stall early instead.  (The check is phrased
        # relative to the frontier so it also holds for builders restored
        # from a checkpoint, whose consumed prefix is no longer buffered.)
        reached_top = any(
            not self._chains.has_beyond(cut) for cut in self._frontier
        )
        if not self._done or not reached_top:
            raise RuntimeError(
                "stream closed with missing relevant messages; "
                "lattice incomplete (a gap in some thread's chain)"
            )

    @property
    def complete(self) -> bool:
        """All levels expanded (only meaningful after :meth:`finish`)."""
        return self._done

    @property
    def level(self) -> int:
        """Index of the current (not yet expanded) level."""
        return self._level

    @property
    def frontier(self) -> dict[Cut, Mapping[VarName, Any]]:
        """Current level's cuts and their global states (copies)."""
        return {cut: dict(node.state) for cut, node in self._frontier.items()}

    def frontier_monitor_states(self) -> dict[Cut, frozenset]:
        return {cut: frozenset(node.mstates) for cut, node in self._frontier.items()}

    def _projected(self, state: dict) -> dict:
        if self._project is None:
            return state
        return {k: v for k, v in state.items() if k in self._project}

    # -- checkpointing ---------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot the analysis state for later :meth:`restore`.

        Long-running monitors can persist this periodically; a restored
        builder continues from the same frontier and accepts the not-yet-
        consumed suffix of the stream.  Only available with
        ``track_paths=False`` (path cons-cells are unbounded history and
        defeat the point of a compact checkpoint).
        """
        if self._track:
            raise RuntimeError(
                "checkpoint requires track_paths=False (path history is "
                "unbounded); construct the builder accordingly"
            )
        if self._closed:
            raise RuntimeError("cannot checkpoint a finished builder")
        pending = [
            m for m in self._chains.all_messages()
            # messages at indices beyond every frontier cut are unconsumed;
            # a message is consumed once every frontier cut includes it
            if any(m.clock[m.thread] > cut[m.thread] for cut in self._frontier)
        ]
        return {
            "n_threads": self._n,
            "level": self._level,
            "known_totals": list(self._known_totals),
            "frontier": [
                (cut, dict(node.state), list(node.mstates))
                for cut, node in self._frontier.items()
            ],
            "pending": list(pending),
            "violation_count": len(self.violations),
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict,
        monitor: Optional[Monitor] = None,
        max_frontier: int = 1_000_000,
    ) -> "LevelByLevelBuilder":
        """Rebuild a builder from a :meth:`checkpoint` snapshot.

        The monitor must be the same specification the snapshot was taken
        with (monitor states are positional)."""
        b = cls.__new__(cls)
        b._n = snapshot["n_threads"]
        b._chains = MessageChains(b._n)
        b._monitor = monitor
        b._track = False
        b._closed = False
        b._known_totals = list(snapshot["known_totals"])
        b._done = False
        b._project = None
        b._max_frontier = max_frontier
        b.stats = BuilderStats()
        b.violations = []
        b._initial = {}
        b._step_cache = {}
        b._frontier = {}
        for cut, state, mstates in snapshot["frontier"]:
            node = _Node(dict(state))
            for ms in mstates:
                node.mstates[ms] = None
            b._frontier[tuple(cut)] = node
        b._level = snapshot["level"]
        # chains must know about the already-consumed prefix only via the
        # frontier cuts; re-insert the pending (unconsumed) messages
        for m in snapshot["pending"]:
            b._chains.insert(m)
        # consumed messages below the frontier are gone — enabled_at() must
        # therefore never be asked below the minimum frontier cut, which
        # holds because expansion only looks at cut[i] + 1
        b._bump_peaks(len(b._frontier), b._count_states(b._frontier))
        b._advance()
        return b

    # -- internals ------------------------------------------------------------------

    def _count_states(self, frontier: dict[Cut, _Node]) -> int:
        return sum(len(n.mstates) for n in frontier.values())

    def _bump_peaks(self, cuts: int, states: int) -> None:
        self.stats.peak_resident_cuts = max(self.stats.peak_resident_cuts, cuts)
        self.stats.peak_resident_states = max(self.stats.peak_resident_states, states)

    def _level_ready(self) -> bool:
        """Can the current frontier be fully expanded with what we know?"""
        for cut in self._frontier:
            for i in range(self._n):
                if self._chains.get(i, cut[i] + 1) is None:
                    # Missing next message: fine only if the thread is known
                    # to have ended — globally (stream closed) or via an
                    # end-of-thread marker saying no such index exists.
                    known = self._known_totals[i]
                    thread_over = known >= 0 and cut[i] + 1 > known
                    if not (self._closed or thread_over):
                        return False
        return True

    def _advance(self) -> None:
        while not self._done and self._frontier and self._level_ready():
            with _tracing.span("lattice.level", level=self._level,
                               cuts=len(self._frontier)):
                new_frontier: dict[Cut, _Node] = {}
                progressed = False
                for cut, node in self._frontier.items():
                    for i in range(self._n):
                        m = self._chains.enabled_at(cut, i)
                        if m is None:
                            continue
                        progressed = True
                        succ = cut[:i] + (cut[i] + 1,) + cut[i + 1:]
                        snode = new_frontier.get(succ)
                        if snode is None:
                            snode = _Node(self._projected(apply_message(node.state, m)))
                            new_frontier[succ] = snode
                        self._extend_monitors(node, snode, m, succ)
                self.stats.nodes_expanded += len(self._frontier)
                self.stats.levels_completed += 1
                self._bump_peaks(
                    len(self._frontier) + len(new_frontier),
                    self._count_states(self._frontier) + self._count_states(new_frontier),
                )
                if _metrics.ENABLED:
                    _C_LEVELS.inc()
                    _C_NODES.inc(len(self._frontier))
                    _H_WIDTH.observe(len(self._frontier))
                    _H_STATES.observe(self._count_states(self._frontier))
                    _G_FRONTIER.set(len(new_frontier))
                    _G_FSTATES.set(self._count_states(new_frontier))
                if not progressed:
                    # No cut had an enabled successor: computation fully explored.
                    self._done = True
                    return
                if len(new_frontier) > self._max_frontier:
                    raise MemoryError(
                        f"lattice frontier exceeded max_frontier="
                        f"{self._max_frontier} at level {self._level + 1}"
                    )
                self._frontier = new_frontier  # previous level is GC'd here
                self._level += 1

    def _extend_monitors(self, node: _Node, snode: _Node, m: Message, succ: Cut) -> None:
        if self._monitor is None:
            for _ms, path in node.mstates.items():
                child = _PathNode(m, path) if self._track else None
                snode.mstates.setdefault(None, child)
            return
        cache = self._step_cache
        for ms, path in node.mstates.items():
            key = (ms, snode.state_key)
            hit = cache.get(key)
            if _metrics.ENABLED:
                _C_MSTEPS.inc()
                if hit is not None:
                    _C_MHITS.inc()
            if hit is None:
                hit = self._monitor.step(ms, snode.state)
                cache[key] = hit
            new_ms, ok = hit
            child = _PathNode(m, path) if self._track else None
            if new_ms not in snode.mstates:
                snode.mstates[new_ms] = child
                if not ok:
                    self._record_violation(succ, child, snode, new_ms)

    def _record_violation(
        self,
        cut: Cut,
        path: Optional[_PathNode],
        node: _Node,
        mstate: MonitorState,
    ) -> None:
        if _metrics.ENABLED:
            _C_VIOLATIONS.inc()
        msgs: tuple[Message, ...] = path.to_messages() if path is not None else ()
        states: list[Mapping[VarName, Any]] = [dict(self._initial)]
        for m in msgs:
            states.append(apply_message(states[-1], m))
        self.violations.append(
            Violation(
                messages=msgs,
                states=tuple(states),
                cut=cut,
                monitor_state=mstate,
            )
        )
