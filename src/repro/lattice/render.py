"""Rendering computation lattices and causal graphs (the paper's figures).

Produces the two artifacts the paper draws:

* :func:`render_lattice` — a level-by-level text rendering of the
  computation lattice (Figs. 5 and 6 bottom), one line per level, states
  shown as variable tuples, edges listed under each node;
* :func:`render_computation` — the causal diagram of the messages (Fig. 6
  top): one lane per thread plus the cross-thread covering edges;
* :func:`to_dot` — Graphviz source for either, for publication-grade
  output.

All functions are pure string producers (no I/O, no external deps), so
examples and the CLI can print them and tests can assert on them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.causality import CausalityIndex
from ..core.events import Message, VarName
from .full import ComputationLattice

__all__ = ["render_lattice", "render_computation", "to_dot"]


def _state_label(lattice: ComputationLattice, cut, variables: Sequence[VarName]) -> str:
    return "<" + ",".join(str(v) for v in lattice.state_tuple(cut, variables)) + ">"


def render_lattice(
    lattice: ComputationLattice,
    variables: Optional[Sequence[VarName]] = None,
    show_edges: bool = True,
) -> str:
    """Text rendering, one level per block, bottom (level 0) first.

    >>> print(render_lattice(lat, ("landing", "approved", "radio")))
    Level 0:  (0,0)<0,0,1>
    Level 1:  (1,0)<0,1,1>  (0,1)<0,0,0>
    ...
    """
    if variables is None:
        variables = sorted(
            {str(v) for v in lattice.state(lattice.bottom)}, key=str
        )
    lines: list[str] = []
    for level, cuts in enumerate(lattice.levels()):
        if not cuts:
            continue
        cells = [f"{cut}{_state_label(lattice, cut, variables)}" for cut in cuts]
        lines.append(f"Level {level}:  " + "  ".join(cells))
        if show_edges:
            for cut in cuts:
                for msg, succ in lattice.successors(cut):
                    label = msg.event.label or msg.event.pretty()
                    lines.append(f"    {cut} --{label}--> {succ}")
    return "\n".join(lines)


def render_computation(
    messages: Sequence[Message],
    n_threads: int,
) -> str:
    """Causal diagram of the relevant messages (Fig. 6 top).

    One lane per thread in program order, then the cross-thread covering
    edges of the Hasse diagram (within-lane edges are implicit).
    """
    idx = CausalityIndex(n_threads, messages)
    chains = idx.per_thread_chains()
    lines: list[str] = []
    for t in range(n_threads):
        cells = [
            f"{m.event.label or m.event.pretty()}{tuple(m.clock)}"
            for m in chains.get(t, [])
        ]
        lines.append(f"T{t + 1}: " + "  ->  ".join(cells) if cells
                     else f"T{t + 1}: (no relevant events)")
    cross = [
        (a, b) for a, b in idx.covering_edges() if a.thread != b.thread
    ]
    if cross:
        lines.append("cross-thread causality:")
        for a, b in cross:
            lines.append(
                f"    {a.event.label or a.event.pretty()} "
                f"≺ {b.event.label or b.event.pretty()}"
            )
    return "\n".join(lines)


def to_dot(
    lattice: ComputationLattice,
    variables: Optional[Sequence[VarName]] = None,
    title: str = "computation lattice",
) -> str:
    """Graphviz source for the lattice (nodes = global states, edges labeled
    by the relevant event), in the top-down orientation of Fig. 5/6."""
    if variables is None:
        variables = sorted(
            {str(v) for v in lattice.state(lattice.bottom)}, key=str
        )
    out = [f'digraph "{title}" {{', "  rankdir=TB;",
           '  node [shape=box, fontname="monospace"];']

    def node_id(cut) -> str:
        return "S_" + "_".join(str(k) for k in cut)

    for cuts in lattice.levels():
        if not cuts:
            continue
        same_rank = " ".join(node_id(c) + ";" for c in cuts)
        out.append(f"  {{ rank=same; {same_rank} }}")
        for cut in cuts:
            label = _state_label(lattice, cut, variables)
            out.append(f'  {node_id(cut)} [label="S{cut}\\n{label}"];')
    for cuts in lattice.levels():
        for cut in cuts:
            for msg, succ in lattice.successors(cut):
                elabel = (msg.event.label or msg.event.pretty()).replace('"', "'")
                out.append(
                    f'  {node_id(cut)} -> {node_id(succ)} [label="{elabel}"];'
                )
    out.append("}")
    return "\n".join(out)
