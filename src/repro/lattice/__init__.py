"""Computation lattices: consistent cuts, global states, runs (paper §4)."""

from .cut import Cut, MessageChains, apply_message
from .full import ComputationLattice, Run
from .levels import BuilderStats, LevelByLevelBuilder, Violation
from .render import render_computation, render_lattice, to_dot

__all__ = [
    "Cut",
    "MessageChains",
    "apply_message",
    "ComputationLattice",
    "Run",
    "BuilderStats",
    "LevelByLevelBuilder",
    "Violation",
    "render_computation",
    "render_lattice",
    "to_dot",
]
