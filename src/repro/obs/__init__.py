"""Observability for the MVC monitoring pipeline: metrics, tracing, progress.

The paper's observer computes interesting quantities — lattice level
widths, causal-delivery buffer depth, vector-clock join counts — and
throws them away.  This package keeps them:

* :mod:`repro.obs.metrics` — a zero-dependency registry of counters,
  gauges and histograms, threaded through Algorithm A, causal delivery,
  the lattice builder, the fault injector and the reliable transport;
* :mod:`repro.obs.tracing` — a structured span tracer (monotonic clock,
  per-thread) with JSONL and Chrome-trace/Perfetto export;
* :mod:`repro.obs.progress` — an opt-in periodic progress reporter for
  long runs.

Everything is **off by default and no-op-cheap when off**: each hook site
in the pipeline costs one module-global check per event while disabled
(bounded < 5% of the per-event budget by ``benchmarks/bench_overhead.py``).
Enable collection with :func:`enable` (both subsystems) or per-subsystem
via ``metrics.enable()`` / ``tracing.enable()``.

The metric catalogue and span taxonomy are documented in
``docs/OBSERVABILITY.md``; ``repro stats`` and ``repro observe
--metrics/--trace-out/--progress`` expose all of it from the CLI.
"""

from . import metrics, tracing
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .progress import ProgressReporter
from .tracing import Tracer

__all__ = [
    "metrics",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProgressReporter",
    "Tracer",
    "enable",
    "disable",
    "enabled",
    "reset",
]


def enable(reset: bool = False) -> None:
    """Enable metrics *and* tracing (optionally resetting both first)."""
    metrics.enable(reset=reset)
    tracing.enable(reset=reset)


def disable() -> None:
    """Disable metrics and tracing; recorded data stays readable."""
    metrics.disable()
    tracing.disable()


def enabled() -> bool:
    """Is either subsystem currently collecting?"""
    return metrics.ENABLED or tracing.ENABLED


def reset() -> None:
    """Zero all metrics and drop all spans (works while disabled)."""
    metrics.reset()
    tracing.reset()
