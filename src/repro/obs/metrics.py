"""Zero-dependency metrics: counters, gauges and histograms for the pipeline.

The original JMPaX observer is a black box — events go in, verdicts come
out, and nothing explains why a run was slow or how large the computation
lattice grew.  This module gives every layer of the reproduction a place to
record those quantities: Algorithm A counts its events and vector-clock
joins, :class:`~repro.observer.delivery.CausalDelivery` its buffer depth
and release cascades, :class:`~repro.lattice.levels.LevelByLevelBuilder`
its level widths and monitor-step cache hits, the fault injector and the
reliable transport their fault and retransmission tallies.  The full
catalogue (name, type, unit, emission site) lives in
``docs/OBSERVABILITY.md``.

Design constraints, in order:

1. **Disabled means free.**  Collection is off by default; every hook site
   in the pipeline is guarded by ``if metrics.ENABLED:`` — a single module
   global load and branch, nothing else (``benchmarks/bench_overhead.py``
   bounds the cost at well under 5% of the per-event budget).
2. **Instruments are stable objects.**  Hot paths cache their
   :class:`Counter`/:class:`Gauge`/:class:`Histogram` instances at module
   import; :func:`reset` zeroes values *in place* so cached references
   never go stale.  A consequence worth knowing: merely importing the
   instrumented modules registers the whole catalogue (with zero values),
   which is what makes the catalogue-completeness test in
   ``tests/docs`` possible.
3. **Zero dependencies.**  Plain Python, plain ints; snapshots are
   JSON-able dicts.

Thread-safety: every mutation (``inc``/``set``/``observe``/``reset``) takes
the instrument's own lock, and registration goes through a registry lock —
the multi-session analysis server increments these counters from many
worker and reader threads at once, where unlocked ``+=`` on an instance
attribute demonstrably loses updates (``tests/obs/test_threadsafety.py``
is the stress test).  An uncontended ``threading.Lock`` costs well under a
microsecond, and the hot-path sites are still guarded by ``ENABLED`` so
the disabled pipeline pays nothing.

Labels: instruments can carry a small set of ``labels`` (e.g. the server's
per-session counters).  A labelled instrument is registered under
``name{k=v,...}``; its catalogue identity is the base name.

Usage::

    from repro.obs import metrics

    metrics.enable(reset=True)
    ... run the pipeline ...
    print(metrics.REGISTRY.summary())
    data = metrics.REGISTRY.snapshot()     # JSON-able
    metrics.disable()
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "labelled_name",
    "base_name",
    "REGISTRY",
    "ENABLED",
    "enable",
    "disable",
    "enabled",
    "reset",
]

#: Global fast-path guard.  Hook sites check this module attribute directly
#: (``if metrics.ENABLED: ...``); everything behind the branch is skipped
#: when collection is off.
ENABLED = False

Number = Union[int, float]


def labelled_name(name: str, labels: Mapping[str, object]) -> str:
    """Registry key of a labelled instrument: ``name{k=v,...}``, keys
    sorted so the same label set always maps to the same instrument."""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def base_name(name: str) -> str:
    """Strip the label suffix: catalogue identity of an instrument."""
    return name.split("{", 1)[0]


class Counter:
    """A monotonically increasing count (events ingested, joins, faults)."""

    __slots__ = ("name", "unit", "help", "labels", "value", "_lock")

    def __init__(self, name: str, unit: str = "", help: str = "",
                 labels: Optional[Mapping[str, object]] = None):
        self.name = name
        self.unit = unit
        self.help = help
        self.labels = dict(labels) if labels else None
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, n: Number = 1) -> None:
        with self._lock:
            self.value += n

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def to_dict(self) -> dict:
        d = {"type": "counter", "value": self.value, "unit": self.unit,
             "help": self.help}
        if self.labels:
            d["labels"] = dict(self.labels)
        return d


class Gauge:
    """A point-in-time level (buffer depth, frontier size, in-flight window).

    Tracks the most recent value and the high-water mark since the last
    reset — for a buffer, ``max`` is usually the interesting number.
    """

    __slots__ = ("name", "unit", "help", "labels", "value", "max", "_lock")

    def __init__(self, name: str, unit: str = "", help: str = "",
                 labels: Optional[Mapping[str, object]] = None):
        self.name = name
        self.unit = unit
        self.help = help
        self.labels = dict(labels) if labels else None
        self.value: Number = 0
        self.max: Number = 0
        self._lock = threading.Lock()

    def set(self, v: Number) -> None:
        with self._lock:
            self.value = v
            if v > self.max:
                self.max = v

    def add(self, n: Number = 1) -> None:
        """Atomic relative adjustment (e.g. active-session count)."""
        with self._lock:
            self.value += n
            if self.value > self.max:
                self.max = self.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0
            self.max = 0

    def to_dict(self) -> dict:
        d = {"type": "gauge", "value": self.value, "max": self.max,
             "unit": self.unit, "help": self.help}
        if self.labels:
            d["labels"] = dict(self.labels)
        return d


class Histogram:
    """A distribution of observed values (cascade lengths, level widths).

    Bounded memory: alongside count/sum/min/max, values are bucketed by
    power of two (bucket ``k`` counts observations ``v`` with
    ``2**(k-1) < v <= 2**k``; bucket 0 counts ``v <= 0``), which is plenty
    to see the shape of a cascade-length or level-width distribution
    without storing samples.
    """

    __slots__ = ("name", "unit", "help", "labels", "count", "sum", "min",
                 "max", "_buckets", "_lock")

    def __init__(self, name: str, unit: str = "", help: str = "",
                 labels: Optional[Mapping[str, object]] = None):
        self.name = name
        self.unit = unit
        self.help = help
        self.labels = dict(labels) if labels else None
        self.count = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self._buckets: dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, v: Number) -> None:
        with self._lock:
            self.count += 1
            self.sum += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v
            k = 0 if v <= 0 else max(0, int(v - 1)).bit_length()
            self._buckets[k] = self._buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> dict[str, int]:
        """Bucket counts keyed by their inclusive upper bound (``"le_8"``)."""
        return {f"le_{2 ** k if k else 1}": n
                for k, n in sorted(self._buckets.items())}

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0
            self.min = None
            self.max = None
            self._buckets.clear()

    def to_dict(self) -> dict:
        d = {"type": "histogram", "count": self.count, "sum": self.sum,
             "min": self.min, "max": self.max, "mean": self.mean,
             "buckets": self.buckets(), "unit": self.unit,
             "help": self.help}
        if self.labels:
            d["labels"] = dict(self.labels)
        return d


_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, get-or-create, with JSON-able snapshots.

    One process-wide instance (:data:`REGISTRY`) backs the whole pipeline;
    construct private registries only for tests of the registry itself.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, unit: str, help: str,
             labels: Optional[Mapping[str, object]] = None) -> _Instrument:
        key = labelled_name(name, labels) if labels else name
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(key, unit=unit, help=help, labels=labels)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str, unit: str = "", help: str = "",
                labels: Optional[Mapping[str, object]] = None) -> Counter:
        return self._get(Counter, name, unit, help, labels)

    def gauge(self, name: str, unit: str = "", help: str = "",
              labels: Optional[Mapping[str, object]] = None) -> Gauge:
        return self._get(Gauge, name, unit, help, labels)

    def histogram(self, name: str, unit: str = "", help: str = "",
                  labels: Optional[Mapping[str, object]] = None) -> Histogram:
        return self._get(Histogram, name, unit, help, labels)

    def unregister(self, name: str,
                   labels: Optional[Mapping[str, object]] = None) -> bool:
        """Drop one instrument (typically a labelled per-session one whose
        session record has been evicted).  Returns whether it existed.
        Never unregister the import-time-cached module instruments: cached
        references would silently diverge from the registry."""
        key = labelled_name(name, labels) if labels else name
        with self._lock:
            return self._instruments.pop(key, None) is not None

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def reset(self) -> None:
        """Zero every instrument *in place* — cached references stay valid."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            inst.reset()

    def snapshot(self) -> dict[str, dict]:
        """All instruments as one JSON-able ``{name: {...}}`` dict."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].to_dict()
                for name in sorted(instruments)}

    def summary(self, nonzero_only: bool = True) -> str:
        """Aligned human-readable table of current values."""
        with self._lock:
            instruments = dict(self._instruments)
        rows: list[tuple[str, str, str, str]] = []
        for name in sorted(instruments):
            inst = instruments[name]
            if isinstance(inst, Counter):
                if nonzero_only and not inst.value:
                    continue
                rows.append((name, "counter", str(inst.value), inst.unit))
            elif isinstance(inst, Gauge):
                if nonzero_only and not inst.value and not inst.max:
                    continue
                rows.append((name, "gauge",
                             f"{inst.value} (max {inst.max})", inst.unit))
            else:
                if nonzero_only and not inst.count:
                    continue
                rows.append((
                    name, "histogram",
                    f"n={inst.count} mean={inst.mean:.2f} "
                    f"min={inst.min} max={inst.max}", inst.unit,
                ))
        if not rows:
            return "(no metrics recorded)"
        headers = ("metric", "type", "value", "unit")
        widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
                  for i in range(4)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.extend("  ".join(c.ljust(w) for c, w in zip(r, widths))
                     for r in rows)
        return "\n".join(lines)


#: The process-wide registry every pipeline hook records into.
REGISTRY = MetricsRegistry()


def enable(reset: bool = False) -> None:
    """Turn collection on (optionally zeroing all instruments first)."""
    global ENABLED
    if reset:
        REGISTRY.reset()
    ENABLED = True


def disable() -> None:
    """Turn collection off; recorded values remain readable."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    return ENABLED


def reset() -> None:
    REGISTRY.reset()
