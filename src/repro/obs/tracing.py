"""Structured span tracing with JSONL and Chrome-trace export.

Where :mod:`repro.obs.metrics` answers *how much*, spans answer *where the
time went*: each span is a named, attributed interval on the monotonic
clock, tagged with the OS thread that ran it.  The instrumented sites (the
span taxonomy — see ``docs/OBSERVABILITY.md``) cover Algorithm A's event
processing, the observer's ingestion, the predictive analyzer and the
per-level lattice expansion, so a trace of a slow run shows directly
whether the cost sits in clock bookkeeping, causal delivery or lattice
construction.

Two export formats:

* :meth:`Tracer.export_jsonl` — one JSON object per line, trivially
  greppable / loadable from pandas;
* :meth:`Tracer.export_chrome` — the Chrome trace-event format (complete
  ``"X"`` events), loadable as-is in ``chrome://tracing`` or
  https://ui.perfetto.dev for a flame view.

Like the metrics side, tracing is off by default and every call site is a
cheap guard: :func:`span` returns a shared no-op context manager when
:data:`ENABLED` is false, and the hottest site (Algorithm A's per-event
span) additionally checks the flag before even calling :func:`span`.

Usage::

    from repro.obs import tracing

    tracing.enable(reset=True)
    with tracing.span("my.phase", items=n):
        ...
    tracing.TRACER.export_chrome("trace.json")   # load in Perfetto
    tracing.disable()
"""

from __future__ import annotations

import json
import threading
import time
from typing import Optional

__all__ = [
    "Tracer",
    "TRACER",
    "ENABLED",
    "span",
    "instant",
    "enable",
    "disable",
    "enabled",
    "reset",
]

#: Global fast-path guard, same contract as ``metrics.ENABLED``.
ENABLED = False


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live interval; records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "category", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = time.monotonic_ns()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.monotonic_ns()
        self._tracer._record(self.name, self.category, self._t0, t1, self.args)


class Tracer:
    """Collects finished spans and instants; exports them in bulk.

    Spans are stored as plain dicts with nanosecond monotonic timestamps
    relative to the tracer epoch (set at construction / :meth:`reset`), so
    a trace is meaningful across threads of one process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Drop all recorded spans and restart the epoch."""
        with self._lock:
            self.spans: list[dict] = []
            self._epoch_ns = time.monotonic_ns()

    # -- recording ------------------------------------------------------------

    def span(self, name: str, category: str = "repro", **args) -> _Span:
        """A context manager timing one interval.  Prefer the module-level
        :func:`span` at call sites — it no-ops when tracing is disabled."""
        return _Span(self, name, category, args)

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """Record a zero-duration marker (a point event on the timeline)."""
        now = time.monotonic_ns()
        self._record(name, category, now, None, args)

    def _record(self, name: str, category: str, t0: int, t1: Optional[int],
                args: dict) -> None:
        rec = {
            "name": name,
            "cat": category,
            "ts_us": (t0 - self._epoch_ns) / 1000.0,
            "dur_us": None if t1 is None else (t1 - t0) / 1000.0,
            "tid": threading.get_ident() & 0xFFFF_FFFF,
            "args": args,
        }
        with self._lock:
            self.spans.append(rec)

    # -- analysis -------------------------------------------------------------

    def by_name(self) -> dict[str, dict]:
        """Aggregate: per span name, call count and total/max duration (µs).
        Instants count with zero duration."""
        agg: dict[str, dict] = {}
        with self._lock:
            spans = list(self.spans)
        for s in spans:
            a = agg.setdefault(s["name"], {"count": 0, "total_us": 0.0,
                                           "max_us": 0.0})
            a["count"] += 1
            d = s["dur_us"] or 0.0
            a["total_us"] += d
            if d > a["max_us"]:
                a["max_us"] = d
        return agg

    def hotspots(self, top: int = 10) -> str:
        """Aligned table of the ``top`` span names by total duration."""
        agg = sorted(self.by_name().items(),
                     key=lambda kv: -kv[1]["total_us"])[:top]
        if not agg:
            return "(no spans recorded)"
        rows = [(name, str(a["count"]), f"{a['total_us'] / 1000.0:.3f}",
                 f"{a['max_us'] / 1000.0:.3f}") for name, a in agg]
        headers = ("span", "count", "total ms", "max ms")
        widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
                  for i in range(4)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.extend("  ".join(c.ljust(w) for c, w in zip(r, widths))
                     for r in rows)
        return "\n".join(lines)

    # -- export ---------------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per span; returns the number written."""
        with self._lock:
            spans = list(self.spans)
        with open(path, "w", encoding="utf-8") as fh:
            for s in spans:
                fh.write(json.dumps(s, default=str) + "\n")
        return len(spans)

    def export_chrome(self, path: str) -> int:
        """Write the Chrome trace-event format (``chrome://tracing`` /
        Perfetto).  Completed spans become ``"X"`` (complete) events,
        instants become ``"i"`` events; returns the number of events."""
        with self._lock:
            spans = list(self.spans)
        events = []
        for s in spans:
            ev = {
                "name": s["name"],
                "cat": s["cat"],
                "ts": s["ts_us"],
                "pid": 1,
                "tid": s["tid"],
                "args": s["args"],
            }
            if s["dur_us"] is None:
                ev["ph"] = "i"
                ev["s"] = "t"
            else:
                ev["ph"] = "X"
                ev["dur"] = s["dur_us"]
            events.append(ev)
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, default=str)
        return len(events)


#: The process-wide tracer every instrumented site records into.
TRACER = Tracer()


def span(name: str, category: str = "repro", **args):
    """Module-level span entry point: a real span when tracing is enabled,
    a shared no-op context manager otherwise."""
    if not ENABLED:
        return _NULL_SPAN
    return TRACER.span(name, category, **args)


def instant(name: str, category: str = "repro", **args) -> None:
    if ENABLED:
        TRACER.instant(name, category, **args)


def enable(reset: bool = False) -> None:
    global ENABLED
    if reset:
        TRACER.reset()
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    return ENABLED


def reset() -> None:
    TRACER.reset()
