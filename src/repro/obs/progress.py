"""Opt-in periodic progress reporting for long observer runs.

A monitoring run over a big trace can be silent for minutes while the
lattice grows.  :class:`ProgressReporter` emits a one-line status every
``every`` ticks — throughput since the last report, plus whatever gauges
the caller passes (buffered messages, lattice level, delivered count) —
without the caller doing any clock math.  It is deliberately independent
of the metrics registry: progress is an interactive convenience, not a
recorded quantity, and it works whether or not collection is enabled.

The CLI wires it to ``repro observe --progress N`` (a report every N
ingested messages); library users tick it from any loop::

    reporter = ProgressReporter(every=10_000, out=print)
    for msg in stream:
        observer.receive(msg)
        reporter.tick(pending=observer.health.pending)
    reporter.final(delivered=observer.health.delivered)
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Rate-annotated progress lines every ``every`` ticks.

    Args:
        every: emit a report each time the tick count crosses a multiple
            of this (must be >= 1).
        out: line sink (``print`` by default; the CLI passes its own).
        label: what a tick is, for the report text ("events", "msgs", ...).
        clock: monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        every: int = 1000,
        out: Callable[[str], None] = print,
        label: str = "events",
        clock: Callable[[], float] = time.monotonic,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        self._every = every
        self._out = out
        self._label = label
        self._clock = clock
        self._count = 0
        self._t0: Optional[float] = None
        self._last_count = 0
        self._last_t: Optional[float] = None
        self.reports = 0

    @property
    def count(self) -> int:
        return self._count

    def tick(self, n: int = 1, **fields) -> bool:
        """Count ``n`` units of progress; report when a multiple of
        ``every`` is crossed.  ``fields`` are appended ``key=value`` to the
        report line.  Returns True when a report was emitted."""
        now = self._clock()
        if self._t0 is None:
            self._t0 = self._last_t = now
        before = self._count // self._every
        self._count += n
        if self._count // self._every == before:
            return False
        self._emit(now, fields, final=False)
        return True

    def final(self, **fields) -> None:
        """Emit a closing summary line (overall rate since the first tick)."""
        now = self._clock()
        if self._t0 is None:
            self._t0 = self._last_t = now
        self._emit(now, fields, final=True)

    def _emit(self, now: float, fields: dict, final: bool) -> None:
        if final:
            dt = now - (self._t0 or now)
            done = self._count
        else:
            dt = now - (self._last_t if self._last_t is not None else now)
            done = self._count - self._last_count
        rate = done / dt if dt > 0 else float("inf")
        rate_s = "inf" if rate == float("inf") else f"{rate:.0f}"
        prefix = "progress (final)" if final else "progress"
        parts = [f"{prefix}: {self._count} {self._label} ({rate_s}/s)"]
        parts.extend(f"{k}={v}" for k, v in fields.items())
        self._out("  ".join(parts))
        self._last_count = self._count
        self._last_t = now
        self.reports += 1
