"""MiniLang: a small multithreaded language compiled onto the instrumented
substrate — programs written as source (the paper's Fig. 1 style) get their
instrumentation inserted by the compiler."""

from .compiler import compile_program, compile_source
from .parser import MiniLangError, parse_source

__all__ = ["compile_program", "compile_source", "MiniLangError", "parse_source"]
