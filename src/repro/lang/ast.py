"""AST for MiniLang, the bundled multithreaded toy language.

The paper's Fig. 1 presents the buggy flight controller in C-like
pseudo-code.  MiniLang lets such programs be written *as source text* and
compiled onto the cooperative substrate with instrumentation inserted
automatically — the front-end counterpart of JMPaX's bytecode instrumentor:
the compiler, not the programmer, decides where Algorithm A runs.

Shape of a program::

    shared int landing = 0, approved = 0, radio = 1;

    thread controller {
        if (radio == 0) { approved = 0; } else { approved = 1; }
        if (approved == 1) { landing = 1; }
    }

    thread watchdog {
        local int i = 0;
        while (radio == 1 && i < 3) {
            skip;               // checkRadio
            i = i + 1;
            if (i == 2) { radio = 0; }
        }
    }

Reads of ``shared`` names compile to :class:`~repro.sched.program.Read`
operations, writes to :class:`~repro.sched.program.Write`; ``local``
variables live in the interpreter environment and generate no events.
``lock``/``unlock``, ``wait``/``notify`` map to the §3.1 synchronization
operations, ``skip`` to an internal event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Expr",
    "Num",
    "Name",
    "Unary",
    "Binary",
    "Stmt",
    "Assign",
    "LocalDecl",
    "Skip",
    "If",
    "While",
    "LockStmt",
    "UnlockStmt",
    "WaitStmt",
    "NotifyStmt",
    "SpawnStmt",
    "JoinStmt",
    "Block",
    "ThreadDef",
    "SharedDecl",
    "ProgramAst",
]


# -- expressions -----------------------------------------------------------


class Expr:
    """Base class of MiniLang expressions."""


@dataclass(frozen=True)
class Num(Expr):
    value: int


@dataclass(frozen=True)
class Name(Expr):
    """A variable reference; shared vs local is resolved at compile time.

    ``line``/``col`` are source spans (1-based) recorded by the parser;
    they are excluded from equality so structural AST comparisons ignore
    where a node came from.
    """

    ident: str
    line: Optional[int] = field(default=None, compare=False, repr=False)
    col: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-" | "!"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # arithmetic, comparison, or boolean
    left: Expr
    right: Expr


# -- statements ---------------------------------------------------------------


class Stmt:
    """Base class of MiniLang statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    target: str
    value: Expr
    line: Optional[int] = field(default=None, compare=False, repr=False)
    col: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class LocalDecl(Stmt):
    """``local int t = expr;`` — uninstrumented interpreter-level storage."""

    name: str
    value: Expr
    line: Optional[int] = field(default=None, compare=False, repr=False)
    col: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Skip(Stmt):
    """``skip;`` — an internal event (code irrelevant to the observer)."""

    comment: Optional[str] = None


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: "Block"
    orelse: Optional["Block"] = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: "Block"


@dataclass(frozen=True)
class LockStmt(Stmt):
    name: str


@dataclass(frozen=True)
class UnlockStmt(Stmt):
    name: str


@dataclass(frozen=True)
class WaitStmt(Stmt):
    cond: str


@dataclass(frozen=True)
class NotifyStmt(Stmt):
    cond: str


@dataclass(frozen=True)
class SpawnStmt(Stmt):
    """``spawn Worker;`` — start a fresh instance of a ``worker`` template
    (the §2 dynamic-thread extension, surfaced in the language)."""

    template: str


@dataclass(frozen=True)
class JoinStmt(Stmt):
    """``join Worker;`` — wait for the most recent still-unjoined instance
    of the template this thread spawned."""

    template: str


@dataclass(frozen=True)
class Block(Stmt):
    statements: tuple[Stmt, ...]


# -- top level -------------------------------------------------------------------


@dataclass(frozen=True)
class SharedDecl:
    """``shared int a = 1, b = 0;``"""

    names: tuple[str, ...]
    values: tuple[int, ...]


@dataclass(frozen=True)
class ThreadDef:
    name: str
    body: Block
    #: Templates (``worker`` keyword) are spawnable but not auto-started.
    template: bool = False


@dataclass(frozen=True)
class ProgramAst:
    shared: tuple[SharedDecl, ...]
    threads: tuple[ThreadDef, ...]

    def shared_names(self) -> tuple[str, ...]:
        out: list[str] = []
        for decl in self.shared:
            out.extend(decl.names)
        return tuple(out)

    def initial_values(self) -> dict[str, int]:
        init: dict[str, int] = {}
        for decl in self.shared:
            for name, value in zip(decl.names, decl.values):
                init[name] = value
        return init
