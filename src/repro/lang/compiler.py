"""MiniLang → cooperative-program compiler with automatic instrumentation.

Every access to a ``shared`` variable compiles into a
:class:`~repro.sched.program.Read`/:class:`~repro.sched.program.Write`
operation — the events Algorithm A consumes — while ``local`` variables stay
in the interpreter environment and generate nothing.  This is the paper's
division of labor: the *tool* decides where instrumentation goes, the
program text stays ordinary.

The compiler performs a static checking pass (undefined/duplicate names,
assignment to undeclared variables) and then builds one generator-based
thread body per ``thread`` block, interpreting the AST with ``yield from``
so nested expressions can emit Read operations mid-evaluation.

Semantics notes:

* ``&&``/``||`` short-circuit (the right operand's reads do not happen when
  the left decides) — just like the Java programs the paper instruments;
* booleans are ints (0/1) as in Fig. 1;
* ``wait``/``notify`` and ``lock``/``unlock`` map to the §3.1 operations.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sched.program import (
    Acquire,
    Internal,
    Join,
    Notify,
    Op,
    Program,
    Read,
    Release,
    Spawn,
    Wait,
    Write,
)
from .ast import (
    Assign,
    Binary,
    Block,
    Expr,
    If,
    JoinStmt,
    LocalDecl,
    LockStmt,
    Name,
    NotifyStmt,
    Num,
    ProgramAst,
    Skip,
    SpawnStmt,
    Stmt,
    ThreadDef,
    Unary,
    UnlockStmt,
    WaitStmt,
    While,
)
from .parser import MiniLangError, parse_source

__all__ = ["compile_program", "compile_source"]

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b,  # MiniLang division is integer division
    "%": lambda a, b: a % b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}


def compile_source(text: str, name: str = "minilang",
                   filename: str | None = None) -> Program:
    """Parse and compile MiniLang source into a runnable
    :class:`~repro.sched.program.Program`.

    ``filename`` flows into every :class:`MiniLangError` span, giving the
    compiler's static checks the same ``file:line:col`` diagnostics as the
    parser and ``repro lint``.
    """
    return compile_program(parse_source(text, filename=filename), name=name,
                           filename=filename)


def compile_program(ast: ProgramAst, name: str = "minilang",
                    filename: str | None = None) -> Program:
    """Compile a parsed MiniLang program.

    ``worker`` templates are not auto-started; ``spawn``/``join`` statements
    create and await instances dynamically (§2's variable-thread extension).
    """
    shared = frozenset(ast.shared_names())
    templates = {th.name: th for th in ast.threads if th.template}
    for thread in ast.threads:
        _check_thread(thread, shared, templates, filename=filename)
    bodies = [
        _make_body(thread, shared, templates)
        for thread in ast.threads
        if not thread.template
    ]
    return Program(
        initial=ast.initial_values(),
        threads=bodies,
        relevant_vars=shared,
        name=name,
    )


# -- static checks -------------------------------------------------------------


def _check_thread(
    thread: ThreadDef,
    shared: frozenset[str],
    templates: dict[str, ThreadDef] | None = None,
    filename: str | None = None,
) -> None:
    templates = templates or {}
    locals_seen: set[str] = set()

    def fail(node: object, message: str) -> None:
        raise MiniLangError(
            getattr(node, "line", None) or 0, message,
            col=getattr(node, "col", None), filename=filename)

    def check_expr(e: Expr) -> None:
        if isinstance(e, Num):
            return
        if isinstance(e, Name):
            if e.ident not in shared and e.ident not in locals_seen:
                fail(
                    e,
                    f"thread {thread.name!r}: undefined variable {e.ident!r} "
                    f"(declare it 'shared int' or 'local int')",
                )
            return
        if isinstance(e, Unary):
            check_expr(e.operand)
            return
        if isinstance(e, Binary):
            check_expr(e.left)
            check_expr(e.right)
            return
        raise TypeError(e)

    def check_stmt(s: Stmt) -> None:
        if isinstance(s, Assign):
            check_expr(s.value)
            if s.target not in shared and s.target not in locals_seen:
                fail(
                    s,
                    f"thread {thread.name!r}: assignment to undeclared "
                    f"variable {s.target!r}",
                )
        elif isinstance(s, LocalDecl):
            check_expr(s.value)
            if s.name in shared:
                fail(
                    s,
                    f"thread {thread.name!r}: local {s.name!r} shadows a "
                    f"shared variable",
                )
            if s.name in locals_seen:
                fail(s, f"thread {thread.name!r}: duplicate local {s.name!r}")
            locals_seen.add(s.name)
        elif isinstance(s, If):
            check_expr(s.cond)
            check_block(s.then)
            if s.orelse is not None:
                check_block(s.orelse)
        elif isinstance(s, While):
            check_expr(s.cond)
            check_block(s.body)
        elif isinstance(s, (SpawnStmt, JoinStmt)):
            if s.template not in templates:
                fail(
                    s,
                    f"thread {thread.name!r}: no worker template named "
                    f"{s.template!r}",
                )
        elif isinstance(s, (Skip, LockStmt, UnlockStmt, WaitStmt, NotifyStmt)):
            pass
        elif isinstance(s, Block):
            check_block(s)
        else:  # pragma: no cover
            raise TypeError(s)

    def check_block(b: Block) -> None:
        for s in b.statements:
            check_stmt(s)

    check_block(thread.body)


# -- interpretation --------------------------------------------------------------


def _eval(e: Expr, env: dict[str, int], shared: frozenset[str]) -> Generator[Op, Any, int]:
    """Evaluate an expression; ``yield``s a Read for every shared access and
    *returns* the value (consumed via ``yield from``)."""
    if isinstance(e, Num):
        return e.value
    if isinstance(e, Name):
        if e.ident in env:
            return env[e.ident]
        value = yield Read(e.ident)
        return value
    if isinstance(e, Unary):
        v = yield from _eval(e.operand, env, shared)
        return -v if e.op == "-" else int(not v)
    if isinstance(e, Binary):
        if e.op == "&&":
            left = yield from _eval(e.left, env, shared)
            if not left:
                return 0
            right = yield from _eval(e.right, env, shared)
            return int(bool(right))
        if e.op == "||":
            left = yield from _eval(e.left, env, shared)
            if left:
                return 1
            right = yield from _eval(e.right, env, shared)
            return int(bool(right))
        left = yield from _eval(e.left, env, shared)
        right = yield from _eval(e.right, env, shared)
        return _ARITH[e.op](left, right)
    raise TypeError(e)  # pragma: no cover


def _exec(
    b: Block,
    env: dict[str, int],
    shared: frozenset[str],
    ctx: "_ThreadCtx",
) -> Generator[Op, Any, None]:
    for s in b.statements:
        if isinstance(s, Assign):
            value = yield from _eval(s.value, env, shared)
            if s.target in env:
                env[s.target] = value
            else:
                yield Write(s.target, value, label=f"{s.target}={value}")
        elif isinstance(s, LocalDecl):
            env[s.name] = yield from _eval(s.value, env, shared)
        elif isinstance(s, Skip):
            yield Internal(label=s.comment or "skip")
        elif isinstance(s, If):
            cond = yield from _eval(s.cond, env, shared)
            if cond:
                yield from _exec(s.then, env, shared, ctx)
            elif s.orelse is not None:
                yield from _exec(s.orelse, env, shared, ctx)
        elif isinstance(s, While):
            while True:
                cond = yield from _eval(s.cond, env, shared)
                if not cond:
                    break
                yield from _exec(s.body, env, shared, ctx)
        elif isinstance(s, LockStmt):
            yield Acquire(s.name)
        elif isinstance(s, UnlockStmt):
            yield Release(s.name)
        elif isinstance(s, WaitStmt):
            yield Wait(s.cond)
        elif isinstance(s, NotifyStmt):
            yield Notify(s.cond)
        elif isinstance(s, SpawnStmt):
            template = ctx.templates[s.template]
            child_body = _make_body(template, shared, ctx.templates)
            idx = yield Spawn(child_body)
            ctx.spawned.setdefault(s.template, []).append(idx)
        elif isinstance(s, JoinStmt):
            pending = ctx.spawned.get(s.template, [])
            if not pending:
                raise MiniLangError(
                    0, f"join {s.template!r} with no unjoined spawn"
                )
            yield Join(pending.pop())
        elif isinstance(s, Block):
            yield from _exec(s, env, shared, ctx)
        else:  # pragma: no cover
            raise TypeError(s)


class _ThreadCtx:
    """Per-instance interpreter state: the template table and this thread's
    spawned-but-unjoined children (LIFO per template name)."""

    __slots__ = ("templates", "spawned")

    def __init__(self, templates: dict[str, ThreadDef]):
        self.templates = templates
        self.spawned: dict[str, list[int]] = {}


def _make_body(
    thread: ThreadDef,
    shared: frozenset[str],
    templates: dict[str, ThreadDef] | None = None,
):
    templates = templates or {}

    def body() -> Generator[Op, Any, None]:
        env: dict[str, int] = {}
        yield from _exec(thread.body, env, shared, _ThreadCtx(templates))

    body.__name__ = f"minilang_{thread.name}"
    return body
