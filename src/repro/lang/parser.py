"""Recursive-descent parser for MiniLang.

Grammar (comments run ``//`` to end of line)::

    program   := (shared_decl | thread_def | worker_def)+
    shared    := "shared" "int" NAME "=" INT ("," NAME "=" INT)* ";"
    thread    := "thread" NAME block
    worker    := "worker" NAME block          // spawnable template
    block     := "{" stmt* "}"
    stmt      := NAME "=" expr ";"
               | "local" "int" NAME "=" expr ";"
               | "skip" ";"
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "lock" "(" NAME ")" ";"    | "unlock" "(" NAME ")" ";"
               | "wait" "(" NAME ")" ";"    | "notify" "(" NAME ")" ";"
               | "spawn" NAME ";"           | "join" NAME ";"
    expr      := or;  or := and ("||" and)*;  and := not ("&&" not)*
    not       := "!" not | cmp
    cmp       := arith (("=="|"!="|"<"|"<="|">"|">=") arith)?
    arith     := term (("+"|"-") term)*;  term := factor (("*"|"/"|"%") factor)*
    factor    := INT | NAME | ("-"|"!") factor | "(" expr ")"
"""

from __future__ import annotations

import re
from typing import Optional

from .ast import (
    Assign,
    Binary,
    Block,
    If,
    JoinStmt,
    LocalDecl,
    LockStmt,
    Name,
    NotifyStmt,
    Num,
    ProgramAst,
    SharedDecl,
    Skip,
    SpawnStmt,
    Stmt,
    ThreadDef,
    Unary,
    UnlockStmt,
    WaitStmt,
    While,
)

__all__ = ["parse_source", "MiniLangError"]


class MiniLangError(ValueError):
    """Syntax or semantic error in MiniLang source, with span information.

    When a ``filename`` is known the rendered message uses the repository's
    one true span format — ``file:line:col: message`` — matching
    :class:`~repro.observer.trace.TraceFormatError` and the
    ``repro.staticcheck`` diagnostics.  Without a filename it degrades to
    ``line N[:col]: message`` (or the bare message when no line is known,
    as in some semantic checks).
    """

    def __init__(self, line: int, message: str, *,
                 col: Optional[int] = None,
                 filename: Optional[str] = None):
        self.line = line or 0
        self.col = col
        self.filename = filename
        self.problem = message
        if filename:
            super().__init__(f"{filename}:{line or 1}:{col or 1}: {message}")
        elif line and col:
            super().__init__(f"line {line}:{col}: {message}")
        elif line:
            super().__init__(f"line {line}: {message}")
        else:
            super().__init__(message)

    @property
    def span(self) -> str:
        return f"{self.filename or '<minilang>'}:{self.line or 1}:{self.col or 1}"


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*)
  | (?P<ws>\s+)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>==|!=|<=|>=|&&|\|\||[-+*/%!<>=(){},;])
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({
    "shared", "int", "thread", "worker", "local", "skip", "if", "else",
    "while", "lock", "unlock", "wait", "notify", "spawn", "join",
})


#: A lexed token: (kind, value, line, col) — line and col are 1-based.
Token = tuple[str, str, int, int]


class _Tokens:
    def __init__(self, text: str, filename: Optional[str] = None):
        self.filename = filename
        self.items: list[Token] = []
        pos = 0
        line = 1
        line_start = 0  # offset of the first character of the current line
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise MiniLangError(
                    line, f"unexpected character {text[pos]!r}",
                    col=pos - line_start + 1, filename=filename)
            kind = m.lastgroup
            value = m.group()
            col = pos - line_start + 1
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = pos + value.rindex("\n") + 1
            pos = m.end()
            if kind in ("ws", "comment"):
                continue
            self.items.append((kind, value, line, col))
        self.i = 0

    def peek(self) -> Optional[Token]:
        return self.items[self.i] if self.i < len(self.items) else None

    @property
    def line(self) -> int:
        tok = self.peek()
        return tok[2] if tok else (self.items[-1][2] if self.items else 1)

    @property
    def col(self) -> int:
        tok = self.peek()
        return tok[3] if tok else (self.items[-1][3] if self.items else 1)

    def fail(self, message: str,
             line: Optional[int] = None, col: Optional[int] = None):
        raise MiniLangError(line if line is not None else self.line, message,
                            col=col if col is not None else self.col,
                            filename=self.filename)

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            self.fail("unexpected end of input")
        self.i += 1
        return tok

    def accept(self, value: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[1] == value:
            self.i += 1
            return True
        return False

    def expect(self, value: str, what: Optional[str] = None) -> None:
        tok = self.peek()
        if tok is None or tok[1] != value:
            found = tok[1] if tok else "end of input"
            self.fail(f"expected {what or value!r}, found {found!r}")
        self.i += 1

    def ident(self, what: str = "identifier") -> str:
        tok = self.peek()
        if tok is None or tok[0] != "name" or tok[1] in _KEYWORDS:
            found = tok[1] if tok else "end of input"
            self.fail(f"expected {what}, found {found!r}")
        self.i += 1
        return tok[1]


def parse_source(text: str, filename: Optional[str] = None) -> ProgramAst:
    """Parse MiniLang source into a :class:`ProgramAst`.

    ``filename``, when given, is carried into every :class:`MiniLangError`
    so messages render as ``file:line:col: problem``.
    """
    t = _Tokens(text, filename=filename)
    shared: list[SharedDecl] = []
    threads: list[ThreadDef] = []
    while t.peek() is not None:
        tok = t.peek()
        if tok[1] == "shared":
            shared.append(_shared_decl(t))
        elif tok[1] in ("thread", "worker"):
            threads.append(_thread_def(t))
        else:
            t.fail(
                f"expected 'shared', 'thread' or 'worker', found {tok[1]!r}")
    if not any(not th.template for th in threads):
        t.fail("program declares no (non-template) threads")
    ast = ProgramAst(shared=tuple(shared), threads=tuple(threads))
    names = ast.shared_names()
    if len(names) != len(set(names)):
        t.fail("duplicate shared variable declaration", line=1, col=1)
    if len({th.name for th in threads}) != len(threads):
        t.fail("duplicate thread name", line=1, col=1)
    return ast


def _shared_decl(t: _Tokens) -> SharedDecl:
    t.expect("shared")
    t.expect("int", "'int' (the only MiniLang type)")
    names: list[str] = []
    values: list[int] = []
    while True:
        names.append(t.ident("shared variable name"))
        t.expect("=", "'=' with an initial value")
        neg = t.accept("-")
        tok = t.next()
        if tok[0] != "num":
            t.fail(f"expected integer initializer, found {tok[1]!r}",
                   line=tok[2], col=tok[3])
        values.append(-int(tok[1]) if neg else int(tok[1]))
        if not t.accept(","):
            break
    t.expect(";")
    return SharedDecl(names=tuple(names), values=tuple(values))


def _thread_def(t: _Tokens) -> ThreadDef:
    kw = t.next()[1]  # "thread" or "worker"
    name = t.ident("thread name")
    body = _block(t)
    return ThreadDef(name=name, body=body, template=(kw == "worker"))


def _block(t: _Tokens) -> Block:
    t.expect("{", "'{' to open a block")
    stmts: list[Stmt] = []
    while not t.accept("}"):
        if t.peek() is None:
            t.fail("unterminated block ('}' missing)")
        stmts.append(_stmt(t))
    return Block(statements=tuple(stmts))


def _stmt(t: _Tokens) -> Stmt:
    tok = t.peek()
    assert tok is not None
    if tok[1] == "skip":
        t.next()
        t.expect(";")
        return Skip()
    if tok[1] == "local":
        t.next()
        t.expect("int", "'int'")
        name = t.ident("local variable name")
        t.expect("=", "'=' with an initializer")
        value = _expr(t)
        t.expect(";")
        return LocalDecl(name=name, value=value, line=tok[2], col=tok[3])
    if tok[1] == "if":
        t.next()
        t.expect("(")
        cond = _expr(t)
        t.expect(")")
        then = _block(t)
        orelse = _block(t) if t.accept("else") else None
        return If(cond=cond, then=then, orelse=orelse)
    if tok[1] == "while":
        t.next()
        t.expect("(")
        cond = _expr(t)
        t.expect(")")
        return While(cond=cond, body=_block(t))
    if tok[1] in ("spawn", "join"):
        kw = t.next()[1]
        name = t.ident(f"{kw} target (a worker name)")
        t.expect(";")
        return SpawnStmt(name) if kw == "spawn" else JoinStmt(name)
    if tok[1] in ("lock", "unlock", "wait", "notify"):
        kw = t.next()[1]
        t.expect("(")
        name = t.ident(f"{kw} target")
        t.expect(")")
        t.expect(";")
        cls = {"lock": LockStmt, "unlock": UnlockStmt,
               "wait": WaitStmt, "notify": NotifyStmt}[kw]
        return cls(name)
    # assignment
    target = t.ident("statement")
    t.expect("=", "'=' (assignment)")
    value = _expr(t)
    t.expect(";")
    return Assign(target=target, value=value, line=tok[2], col=tok[3])


# -- expressions --------------------------------------------------------------


def _expr(t: _Tokens):
    return _or(t)


def _or(t: _Tokens):
    left = _and(t)
    while t.accept("||"):
        left = Binary("||", left, _and(t))
    return left


def _and(t: _Tokens):
    left = _not(t)
    while t.accept("&&"):
        left = Binary("&&", left, _not(t))
    return left


def _not(t: _Tokens):
    if t.accept("!"):
        return Unary("!", _not(t))
    return _cmp(t)


def _cmp(t: _Tokens):
    left = _arith(t)
    tok = t.peek()
    if tok is not None and tok[1] in ("==", "!=", "<", "<=", ">", ">="):
        op = t.next()[1]
        return Binary(op, left, _arith(t))
    return left


def _arith(t: _Tokens):
    left = _term(t)
    while True:
        tok = t.peek()
        if tok is not None and tok[1] in ("+", "-"):
            t.next()
            left = Binary(tok[1], left, _term(t))
        else:
            return left


def _term(t: _Tokens):
    left = _factor(t)
    while True:
        tok = t.peek()
        if tok is not None and tok[1] in ("*", "/", "%"):
            t.next()
            left = Binary(tok[1], left, _factor(t))
        else:
            return left


def _factor(t: _Tokens):
    tok = t.peek()
    if tok is None:
        t.fail("expected an expression")
    if tok[1] == "-":
        t.next()
        return Unary("-", _factor(t))
    if tok[1] == "!":
        t.next()
        return Unary("!", _factor(t))
    if tok[0] == "num":
        t.next()
        return Num(int(tok[1]))
    if tok[0] == "name" and tok[1] not in _KEYWORDS:
        t.next()
        return Name(tok[1], line=tok[2], col=tok[3])
    if tok[1] == "(":
        t.next()
        e = _expr(t)
        t.expect(")")
        return e
    t.fail(f"expected an expression, found {tok[1]!r}",
           line=tok[2], col=tok[3])
