"""Predictive monitoring of pattern-regular properties (Ang & Mathur,
arXiv 2310.14611, adapted).

A *pattern* is a sequence of event templates ``p1 ; p2 ; ... ; pk``.  The
property is violated when **some consistent linearization** of the causal
partial order contains matching events in that order — a predictive
question, exactly like the LTL lattice: the observed schedule need not
have exhibited the ordering, it is enough that no causality forbids it.

The classical characterization makes this checkable without enumerating
linearizations: distinct events ``e1 .. ek`` (matching ``p1 .. pk``) occur
in pattern order in some linearization **iff there is no backward
causality** — ``∀ i < j: ¬(e_j ⊳ e_i)`` under the synchronization-only
happens-before order the bus annotates.

The online algorithm exploits that the bus's delivery order is a linear
extension of ⊳: maintain *partial assignments* (any subset of pattern
positions filled, not only prefixes — a witness for ``p2`` may well be
delivered before the eventual witness for ``p1``).  When event ``e``
arrives it may fill any open position ``q`` of an assignment:

* constraints against placed witnesses at positions ``< q`` need
  ``¬(e ⊳ w)`` — automatic, because ``w`` was delivered first and
  delivery extends ⊳;
* constraints against placed witnesses at positions ``> q`` need
  ``¬(w ⊳ e)`` — a Theorem 3 own-component test,
  ``e.hb[w.thread] < w.hb[w.thread]``, checked per placed witness.

Every pairwise constraint is therefore checked exactly once (when the
delivery-later event of the pair is placed).  Assignments with the same
filled-set are pruned by dominance (same witness threads, pointwise
larger own-components constrain the future strictly less) and capped per
filled-set; caps and any suppression are reported in :meth:`snapshot`
rather than hidden.

Template grammar (case-insensitive kinds)::

    step      := KIND '(' var ')' [ '@T' n ] [ '=' value ]
    KIND      := R | W | ACQ | REL | ANY
    pattern   := step (';' step)*

Examples: ``W(x) ; R(y) ; W(x)`` — a write of ``x`` can be followed (in
some schedule) by a read of ``y`` and another write of ``x``;
``W(flag)=1 ; R(flag)=0@T2`` adds value and thread constraints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..core.events import Event, EventKind, Message, VarName
from .base import AnalysisEngine, EngineError, register_engine
from .bus import BusEvent

__all__ = ["PatternEngine", "PatternStep", "PatternMatch", "parse_pattern"]

_STEP_RE = re.compile(
    r"^\s*(R|W|ACQ|REL|ANY)\s*\(\s*([^)\s]+)\s*\)"
    r"(?:\s*@\s*T(\d+))?"
    r"(?:\s*=\s*(\S+))?\s*$",
    re.IGNORECASE,
)

_KIND_MAP = {
    "R": (EventKind.READ,),
    "W": (EventKind.WRITE,),
    "ACQ": (EventKind.ACQUIRE,),
    "REL": (EventKind.RELEASE,),
    "ANY": (EventKind.READ, EventKind.WRITE,
            EventKind.ACQUIRE, EventKind.RELEASE),
}

#: Bound on partial assignments kept per filled-position set.
_MAX_CANDIDATES = 64
#: Bound on distinct matches reported per stream.
_MAX_MATCHES = 16


@dataclass(frozen=True)
class PatternStep:
    """One compiled template step."""

    kinds: tuple[EventKind, ...]
    var: str
    #: 0-based thread constraint (None = any thread).
    thread: Optional[int]
    #: String-compared value constraint (None = any value).
    value: Optional[str]
    text: str

    def matches(self, e: Event) -> bool:
        if e.kind not in self.kinds:
            return False
        if str(e.var) != self.var:
            return False
        if self.thread is not None and e.thread != self.thread:
            return False
        if self.value is not None and str(e.value) != self.value:
            return False
        return True


def parse_pattern(text: str) -> tuple[PatternStep, ...]:
    """Compile a pattern string; raises :class:`EngineError` on bad syntax."""
    steps: list[PatternStep] = []
    for raw in text.split(";"):
        if not raw.strip():
            raise EngineError(
                f"pattern {text!r} has an empty step (stray ';'?)")
        m = _STEP_RE.match(raw)
        if m is None:
            raise EngineError(
                f"bad pattern step {raw.strip()!r} (expected KIND(var) with "
                "KIND one of R/W/ACQ/REL/ANY, optionally @Tn and =value)")
        kind, var, thread, value = m.groups()
        steps.append(PatternStep(
            kinds=_KIND_MAP[kind.upper()],
            var=var,
            thread=int(thread) - 1 if thread is not None else None,
            value=value,
            text=raw.strip(),
        ))
    if not steps:
        raise EngineError("a pattern needs at least one step")
    return tuple(steps)


@dataclass(frozen=True)
class PatternMatch:
    """A complete witness: one event per pattern step, realizable in some
    linearization of the causal order."""

    pattern: str
    witnesses: tuple[Message, ...]

    @property
    def key(self) -> tuple:
        return tuple(m.event.eid for m in self.witnesses)

    def pretty(self) -> str:
        chain = " .. ".join(m.event.pretty() for m in self.witnesses)
        return f"pattern match [{self.pattern}]: {chain}"


class _Placed:
    """One placed witness: the message plus the Theorem 3 own-component
    future events are tested against."""

    __slots__ = ("msg", "thread", "own")

    def __init__(self, msg: Message, thread: int, own: int):
        self.msg = msg
        self.thread = thread
        self.own = own


class _Candidate:
    """A partial assignment: per pattern position, a witness or None."""

    __slots__ = ("placed",)

    def __init__(self, placed: tuple[Optional[_Placed], ...]):
        self.placed = placed


class PatternEngine(AnalysisEngine):
    """Online pattern matching over the causal partial order."""

    name = "pattern"
    version = "1"
    requires_order = True

    def __init__(self, n_threads: int, pattern: str):
        super().__init__()
        self._n = n_threads
        self._steps = parse_pattern(pattern)
        self._text = " ; ".join(s.text for s in self._steps)
        k = len(self._steps)
        self._k = k
        #: filled-position bitmask -> partial assignments; mask 0 is the
        #: permanent empty seed
        self._cands: dict[int, list[_Candidate]] = {
            0: [_Candidate((None,) * k)]}
        self._matches: list[PatternMatch] = []
        self._match_keys: set[tuple] = set()
        self._suppressed_candidates = 0
        self._suppressed_matches = 0
        self._events = 0

    # -- streaming ------------------------------------------------------------

    def feed(self, ev: BusEvent) -> list[PatternMatch]:
        if ev.hb is None:
            raise ValueError(
                "pattern engine needs sync-HB annotations (ordered bus)")
        self._events += 1
        e = ev.event
        hb = ev.hb
        k = self._k
        fits = [self._steps[q].matches(e) for q in range(k)]
        if not any(fits):
            return []
        new: list[PatternMatch] = []
        me = _Placed(ev.msg, ev.thread, hb[ev.thread])
        # snapshot: one arrival extends each existing assignment at most
        # once per open position (never cascades into its own offspring,
        # which would reuse the event for two steps of one chain)
        additions: list[tuple[int, _Candidate]] = []
        for mask, cands in self._cands.items():
            for cand in cands:
                for q in range(k):
                    if not fits[q] or mask & (1 << q):
                        continue
                    # positions < q: ¬(e ⊳ w) is automatic (w delivered
                    # first, delivery order extends ⊳); positions > q:
                    # require ¬(w ⊳ e), i.e. e must not cover w's own
                    # component
                    ok = True
                    for p in range(q + 1, k):
                        w = cand.placed[p]
                        if w is not None and hb[w.thread] >= w.own:
                            ok = False
                            break
                    if not ok:
                        continue
                    placed = list(cand.placed)
                    placed[q] = me
                    nxt = _Candidate(tuple(placed))
                    nmask = mask | (1 << q)
                    if nmask == (1 << k) - 1:
                        self._record(PatternMatch(
                            self._text,
                            tuple(w.msg for w in nxt.placed)), new)
                    else:
                        additions.append((nmask, nxt))
        for nmask, cand in additions:
            self._add_candidate(nmask, cand)
        return new

    def _record(self, match: PatternMatch,
                sink: list[PatternMatch]) -> None:
        if match.key in self._match_keys:
            return
        if len(self._matches) >= _MAX_MATCHES:
            self._suppressed_matches += 1
            return
        self._match_keys.add(match.key)
        self._matches.append(match)
        sink.append(match)

    @staticmethod
    def _dominates(a: _Candidate, b: _Candidate) -> bool:
        """``a`` constrains every future extension no more than ``b``:
        same witness threads, pointwise larger-or-equal own-components
        (the future test is ``hb[w.thread] < w.own`` — larger is looser).
        """
        for wa, wb in zip(a.placed, b.placed):
            if wa is None and wb is None:
                continue
            if wa.thread != wb.thread or wa.own < wb.own:
                return False
        return True

    def _add_candidate(self, mask: int, cand: _Candidate) -> None:
        kept = self._cands.setdefault(mask, [])
        for other in kept:
            if self._dominates(other, cand):
                return
        kept[:] = [other for other in kept
                   if not self._dominates(cand, other)]
        if len(kept) >= _MAX_CANDIDATES:
            self._suppressed_candidates += 1
            return
        kept.append(cand)

    # -- results --------------------------------------------------------------

    @property
    def matches(self) -> list[PatternMatch]:
        return list(self._matches)

    def counterexamples(self) -> list[str]:
        return [m.pretty() for m in self._matches]

    def spec_text(self) -> str:
        return self._text

    def snapshot(self) -> dict:
        d = super().snapshot()
        d.update(
            events=self._events,
            steps=self._k,
            candidates=sum(len(c) for c in self._cands.values()),
            suppressed_candidates=self._suppressed_candidates,
            suppressed_matches=self._suppressed_matches,
        )
        return d


def _make_pattern(arg: Optional[str], n_threads: int,
                  initial: Mapping[VarName, Any],
                  default_spec: Optional[str]) -> PatternEngine:
    if not arg:
        raise EngineError(
            "the pattern engine needs a pattern, e.g. "
            "'pattern:W(x);R(y);W(x)'")
    return PatternEngine(n_threads, arg)


register_engine("pattern", _make_pattern)
