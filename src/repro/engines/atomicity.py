"""Online serializability checking with vector clocks (linear time).

Promotes the offline AVIO access-pattern table of
:mod:`repro.analysis.atomicity` into a streaming engine in the style of
Mathur & Viswanathan's linear-time atomicity checking (arXiv 2001.04961):
lock-protected regions are tracked as they open and close, conflict edges
are evaluated with the bus's synchronization-only happens-before clocks,
and every *unserializable triple* — two consecutive local accesses of a
variable inside a region with a conflicting remote access concurrent with
both — is reported::

    R - W - R    non-repeatable read
    W - W - R    local write lost
    R - W - W    remote write silently overwritten
    W - R - W    remote read observes an intermediate value

The engine is equivalent to :func:`~repro.analysis.atomicity.\
find_atomicity_violations` on complete streams (``all_accesses``
instrumentation; the parity tests enforce it) but runs online:

* each data access is recorded once and retired once a pruning pass shows
  it is in every thread's sync-HB past (it can never again be concurrent
  with a future event), so the live window tracks the program's actual
  concurrency, not the stream length;
* pattern + concurrency checks touch only (pair, remote) combinations
  whose variable matches, via per-variable indexes.

Findings are *predictive* — based on concurrency in the causal order, not
on the interleaving having happened — and only emitted for regions that
close (an unreleased lock is not an atomic block, matching the offline
oracle).  Requires causally-ordered input (``requires_order=True``): the
sync-HB annotation is only defined along a linear extension of ⊳.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..core.events import Event, EventKind, VarName
from .base import AnalysisEngine, register_engine
from .bus import BusEvent

__all__ = ["AtomicityEngine", "AtomicityFinding"]

#: The four unserializable (local, remote, local) kind-triples.
_UNSERIALIZABLE = {
    ("R", "W", "R"),
    ("W", "W", "R"),
    ("R", "W", "W"),
    ("W", "R", "W"),
}

#: How often (in data accesses) to run the retirement pass.
_PRUNE_EVERY = 512


def _kind(e: Event) -> str:
    return "W" if e.kind.is_write else "R"


@dataclass(frozen=True)
class AtomicityFinding:
    """One unserializable triple, with the witnesses."""

    var: VarName
    thread: int
    lock: VarName
    first: Event
    remote: Event
    second: Event
    pattern: tuple[str, str, str]

    @property
    def key(self) -> tuple:
        return (self.var, self.first.eid, self.remote.eid, self.second.eid)

    def pretty(self) -> str:
        p = "-".join(self.pattern)
        return (
            f"atomicity violation on {self.var!r} in T{self.thread + 1}'s "
            f"{self.lock!r} region: {p} "
            f"({self.first.pretty()} .. {self.remote.pretty()} .. "
            f"{self.second.pretty()})"
        )


class _Access:
    """One recorded data access: the event plus its sync-HB clock."""

    __slots__ = ("event", "thread", "hb", "write")

    def __init__(self, ev: BusEvent):
        self.event = ev.event
        self.thread = ev.thread
        self.hb = ev.hb
        self.write = ev.event.kind.is_write


def _concurrent(a: _Access, b: _Access) -> bool:
    # Theorem 3 shape over the sync-only clocks: x ⊑ y iff x's own
    # component is covered by y.
    return (a.hb[a.thread] > b.hb[a.thread]
            and b.hb[b.thread] > a.hb[b.thread])


class _Pair:
    """Two consecutive local accesses of one variable inside one region."""

    __slots__ = ("var", "thread", "lock", "first", "second")

    def __init__(self, var: VarName, thread: int, lock: VarName,
                 first: _Access, second: _Access):
        self.var = var
        self.thread = thread
        self.lock = lock
        self.first = first
        self.second = second


class _Region:
    """An open acquire..release span of one thread."""

    __slots__ = ("thread", "lock", "last", "pairs", "pending")

    def __init__(self, thread: int, lock: VarName):
        self.thread = thread
        self.lock = lock
        #: var -> last local data access inside this region
        self.last: dict[VarName, _Access] = {}
        #: pairs completed while open (only published at close)
        self.pairs: list[_Pair] = []
        #: findings discovered while open (only emitted at close)
        self.pending: list[AtomicityFinding] = []


class AtomicityEngine(AnalysisEngine):
    """Streaming unserializable-access-pattern detection."""

    name = "atomicity"
    version = "1"
    requires_order = True

    def __init__(self, n_threads: int):
        super().__init__()
        self._n = n_threads
        #: (thread, lock) -> open region (re-acquire replaces, like the
        #: offline maximal-span scan)
        self._open: dict[tuple[int, VarName], _Region] = {}
        #: var -> all live (non-retired) data accesses, any thread
        self._accesses: dict[VarName, list[_Access]] = {}
        #: var -> published pairs from *closed* regions (future remotes
        #: check against these and report immediately)
        self._closed_pairs: dict[VarName, list[_Pair]] = {}
        self._findings: list[AtomicityFinding] = []
        self._seen: set[tuple] = set()
        #: per-thread sync-HB frontier (last event's clock), for retirement
        self._frontier: list[Optional[tuple[int, ...]]] = [None] * n_threads
        self._since_prune = 0
        self._retired = 0
        self._data_events = 0

    # -- streaming ------------------------------------------------------------

    def feed(self, ev: BusEvent) -> list[AtomicityFinding]:
        if ev.hb is None:
            raise ValueError(
                "atomicity engine needs sync-HB annotations (ordered bus)")
        self._frontier[ev.thread] = ev.hb
        kind = ev.event.kind
        if kind is EventKind.ACQUIRE:
            self._open[(ev.thread, ev.event.var)] = _Region(
                ev.thread, ev.event.var)
            return []
        if kind is EventKind.RELEASE:
            return self._close_region(ev.thread, ev.event.var)
        if kind is EventKind.READ or kind is EventKind.WRITE:
            return self._data_access(ev)
        return []

    def _data_access(self, ev: BusEvent) -> list[AtomicityFinding]:
        acc = _Access(ev)
        var = ev.event.var
        new: list[AtomicityFinding] = []

        # 1. as a local access: extend pairs in this thread's open regions
        for (thread, _lock), region in self._open.items():
            if thread != ev.thread:
                continue
            prev = region.last.get(var)
            region.last[var] = acc
            if prev is not None:
                pair = _Pair(var, thread, region.lock, prev, acc)
                region.pairs.append(pair)
                # check the new pair against already-seen remote accesses;
                # emission deferred until the region closes
                for r in self._accesses.get(var, ()):
                    if r.thread != thread:
                        self._check(pair, r, region.pending)

        # 2. as a remote access: check against published (closed-region)
        # pairs of other threads — these emit immediately — and against
        # pairs still open in other threads' regions (deferred)
        candidates: list[AtomicityFinding] = []
        for pair in self._closed_pairs.get(var, ()):
            if pair.thread != ev.thread:
                self._check(pair, acc, candidates)
        self._emit(candidates, new)
        for (thread, _lock), region in self._open.items():
            if thread == ev.thread:
                continue
            for pair in region.pairs:
                if pair.var == var:
                    self._check(pair, acc, region.pending)

        self._accesses.setdefault(var, []).append(acc)
        self._data_events += 1
        self._since_prune += 1
        if self._since_prune >= _PRUNE_EVERY:
            self._prune()
        self._findings.extend(new)
        return new

    def _check(self, pair: _Pair, remote: _Access,
               sink: list[AtomicityFinding]) -> None:
        pattern = ("W" if pair.first.write else "R",
                   "W" if remote.write else "R",
                   "W" if pair.second.write else "R")
        if pattern not in _UNSERIALIZABLE:
            return
        if not (_concurrent(pair.first, remote)
                and _concurrent(pair.second, remote)):
            return
        sink.append(AtomicityFinding(
            var=pair.var, thread=pair.thread, lock=pair.lock,
            first=pair.first.event, remote=remote.event,
            second=pair.second.event, pattern=pattern))

    def _emit(self, candidates: list[AtomicityFinding],
              sink: list[AtomicityFinding]) -> None:
        """Deduplicate at emission time: nested/overlapping regions can
        carry the same (first, remote, second) triple, and only one report
        per triple survives — whichever region publishes first."""
        for f in candidates:
            if f.key not in self._seen:
                self._seen.add(f.key)
                sink.append(f)

    def _close_region(self, thread: int,
                      lock: VarName) -> list[AtomicityFinding]:
        region = self._open.pop((thread, lock), None)
        if region is None:
            return []
        for pair in region.pairs:
            self._closed_pairs.setdefault(pair.var, []).append(pair)
        new: list[AtomicityFinding] = []
        self._emit(region.pending, new)
        self._findings.extend(new)
        return new

    # -- retirement -----------------------------------------------------------

    def _covered(self, acc: _Access) -> bool:
        """Is ``acc`` in every thread's sync-HB past?  Then no future event
        can be concurrent with it (delivery order extends ⊳ ⊇ sync-HB)."""
        own = acc.hb[acc.thread]
        for f in self._frontier:
            if f is None or f[acc.thread] < own:
                return False
        return True

    def _prune(self) -> None:
        """Retire accesses (and closed pairs) that can never again be
        concurrent with a future event — the bound that keeps the live
        window proportional to actual concurrency."""
        self._since_prune = 0
        for var, accs in list(self._accesses.items()):
            live = [a for a in accs if not self._covered(a)]
            self._retired += len(accs) - len(live)
            if live:
                self._accesses[var] = live
            else:
                del self._accesses[var]
        for var, pairs in list(self._closed_pairs.items()):
            live_pairs = [p for p in pairs if not self._covered(p.second)
                          or not self._covered(p.first)]
            if live_pairs:
                self._closed_pairs[var] = live_pairs
            else:
                del self._closed_pairs[var]

    # -- results --------------------------------------------------------------

    def finish(self) -> list[AtomicityFinding]:
        # regions never released are not atomic blocks (offline parity);
        # their deferred findings are dropped with them
        self._finished = True
        self._open.clear()
        return []

    @property
    def findings(self) -> list[AtomicityFinding]:
        return list(self._findings)

    def counterexamples(self) -> list[str]:
        return [f.pretty() for f in self._findings]

    def spec_text(self) -> str:
        return "unserializable access patterns (AVIO table)"

    def snapshot(self) -> dict:
        d = super().snapshot()
        d.update(
            data_events=self._data_events,
            live_accesses=sum(len(v) for v in self._accesses.values()),
            retired=self._retired,
            open_regions=len(self._open),
        )
        return d


def _make_atomicity(arg: Optional[str], n_threads: int,
                    initial: Mapping[VarName, Any],
                    default_spec: Optional[str]) -> AtomicityEngine:
    # no configuration yet; reject a stray argument loudly
    if arg:
        raise ValueError(
            f"the atomicity engine takes no argument (got {arg!r})")
    return AtomicityEngine(n_threads)


register_engine("atomicity", _make_atomicity)
