"""Past-time LTL prediction as a bus engine.

A thin adapter: :class:`~repro.analysis.predictive.OnlinePredictor` is
ported onto the :class:`~repro.engines.base.AnalysisEngine` interface
**unchanged** — same lattice builder, same violation objects, same
counterexample text — so a single-engine bus is bit-for-bit equivalent to
the pre-bus ``Observer → OnlinePredictor`` pipeline (gated by the
differential-replay corpus).  The lattice buffers and reorders messages
internally, so this is the one engine that tolerates raw arrival order
(``requires_order=False``).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from ..analysis.predictive import OnlinePredictor
from ..core.events import VarName
from ..lattice.levels import BuilderStats, Violation
from ..logic.monitor import Monitor
from .base import AnalysisEngine, EngineError, register_engine
from .bus import BusEvent

__all__ = ["LtlEngine"]


class LtlEngine(AnalysisEngine):
    """Predictive past-time LTL checking (the paper's analysis)."""

    name = "ltl"
    version = "1"
    requires_order = False

    def __init__(self, n_threads: int, initial: Mapping[VarName, Any],
                 spec: "str | Monitor", track_paths: bool = True):
        super().__init__()
        self._spec_text = spec if isinstance(spec, str) else None
        self._predictor = OnlinePredictor(n_threads, initial, spec,
                                          track_paths=track_paths)
        monitor = self._predictor._monitor
        self._variables = sorted(monitor.variables)
        if self._spec_text is None:
            self._spec_text = str(monitor.formula)

    # -- streaming ------------------------------------------------------------

    def feed(self, ev: BusEvent) -> list[Violation]:
        return self._predictor.feed(ev.msg)

    def feed_batch(self, evs: Sequence[BusEvent]) -> list[Violation]:
        return self._predictor.feed_batch([ev.msg for ev in evs])

    def finish(self) -> list[Violation]:
        self._finished = True
        return self._predictor.finish()

    def finish_partial(
        self,
        delivered_counts: Sequence[int],
        expected_counts: Optional[Sequence[int]] = None,
    ) -> list[Violation]:
        """The predictor has native partial semantics (it closes the
        delivered sub-lattice); reuse it and adopt its window accounting."""
        self._finished = True
        new = self._predictor.finish_partial(delivered_counts,
                                             expected_counts)
        self._degraded = self._predictor.degraded_windows
        return new

    # -- results --------------------------------------------------------------

    @property
    def violations(self) -> list[Violation]:
        return self._predictor.violations

    @property
    def stats(self) -> BuilderStats:
        return self._predictor.stats

    def counterexamples(self) -> list[str]:
        return [v.pretty(self._variables)
                for v in self._predictor.violations]

    def spec_text(self) -> str:
        return self._spec_text

    def snapshot(self) -> dict:
        d = super().snapshot()
        s = self._predictor.stats
        d.update(levels=s.levels_completed, nodes=s.nodes_expanded,
                 buffered=s.messages_buffered)
        return d


def _make_ltl(arg: Optional[str], n_threads: int,
              initial: Mapping[VarName, Any],
              default_spec: Optional[str]) -> LtlEngine:
    spec = arg or default_spec
    if not spec:
        raise EngineError(
            "the ltl engine needs a specification: pass one inline "
            "('ltl:<formula>') or give the session a spec")
    return LtlEngine(n_threads, initial, spec)


register_engine("ltl", _make_ltl)
