"""The analysis bus: one delivered stream, one clock computation, N engines.

Sits between :class:`~repro.observer.delivery.CausalDelivery` and the
registered :class:`~repro.engines.base.AnalysisEngine` instances.  For
every message it

1. materializes the message's MVC once (:attr:`BusEvent.clock` — the
   Theorem 3 clock every engine shares instead of re-walking the backend),
2. when the input stream is causally ordered, maintains the
   **synchronization-only happens-before** vector clocks online
   (:attr:`BusEvent.hb`) — program order plus edges through lock/monitor
   accesses, the relation predictive atomicity and pattern analyses need
   (conflicting *data* accesses stay concurrent under it, exactly
   ``Computation(events, causality="sync")`` computed incrementally), and
3. fans the annotated event out to every engine, collecting their new
   findings.

The sync-HB recurrence mirrors the offline definition: every sync access
of a variable is causally after every earlier sync access of it, so the
bus keeps one cumulative clock per sync variable (join of all its accesses
so far) and joins it into the accessing thread's clock.  Cost: O(n) per
sync access, O(1) amortized otherwise — computed once however many engines
are listening.

Ordering contract: engines declare ``requires_order``; a bus constructed
with ``ordered=False`` (the strict observer's raw-arrival path) refuses
them at registration, so a mis-wired pipeline fails loudly instead of
silently mis-annotating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..core.events import EventKind, Message, VarName
from ..obs import metrics as _metrics
from .base import AnalysisEngine, EngineError, EngineVerdict, \
    compute_degraded_windows

__all__ = ["BusEvent", "AnalysisBus", "hb_precedes", "hb_concurrent"]

#: Synchronization kinds that carry happens-before edges (lock acquire/
#: release, monitor notify/wake) — the same set ``Computation`` treats as
#: ordering accesses under ``causality="sync"``.
_SYNC_KINDS = frozenset((EventKind.ACQUIRE, EventKind.RELEASE,
                         EventKind.NOTIFY, EventKind.WAKE))


@dataclass(frozen=True)
class BusEvent:
    """One causally-annotated message, computed once and shared."""

    msg: Message
    #: 0-based position in the bus's input order.
    index: int
    #: The message's MVC, materialized as a plain tuple (Theorem 3 clock).
    clock: tuple[int, ...]
    #: Synchronization-only happens-before clock of this event, or ``None``
    #: on an unordered bus.  ``hb[t]`` counts thread ``t``'s messages in
    #: this event's sync-HB past (its own thread's component is its 1-based
    #: position in that thread's delivered stream).
    hb: Optional[tuple[int, ...]]

    @property
    def thread(self) -> int:
        return self.msg.thread

    @property
    def event(self):
        return self.msg.event


def hb_precedes(a: BusEvent, b: BusEvent) -> bool:
    """``a`` happens-before ``b`` under the sync-only order (Theorem 3
    shape: compare ``a``'s own component)."""
    assert a.hb is not None and b.hb is not None
    return a.hb[a.thread] <= b.hb[a.thread]


def hb_concurrent(a: BusEvent, b: BusEvent) -> bool:
    return not hb_precedes(a, b) and not hb_precedes(b, a)


class AnalysisBus:
    """Fan one annotated stream out to every registered engine.

    Args:
        n_threads: MVC width of the monitored program.
        engines: the consumers, in verdict order.
        ordered: is the input a linear extension of ⊳?  True when fed from
            causal-delivery releases (the fault-tolerant observer and every
            multi-engine pipeline); False only on the strict observer's
            legacy raw-arrival path, which is restricted to engines that
            buffer internally (``requires_order=False``).
    """

    def __init__(self, n_threads: int, engines: Sequence[AnalysisEngine],
                 ordered: bool = True):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self._n = n_threads
        self._ordered = ordered
        self.engines: tuple[AnalysisEngine, ...] = tuple(engines)
        for e in self.engines:
            if e.requires_order and not ordered:
                raise EngineError(
                    f"engine {e.name!r} requires causally-ordered input but "
                    "the bus is fed raw arrivals; route it through causal "
                    "delivery")
        self._index = 0
        # sync-only HB state: one clock per thread, one cumulative clock
        # per sync variable (join of all its sync accesses so far)
        self._tclk: list[list[int]] = [[0] * n_threads
                                       for _ in range(n_threads)]
        self._sync: dict[VarName, list[int]] = {}
        self._finished = False
        self._degraded = ()
        self._meters = None
        self._finding_meters = None
        if _metrics.ENABLED:
            self._meters = [
                _metrics.REGISTRY.counter(
                    "engine.events", unit="messages",
                    help="annotated messages fed to one engine (labelled)",
                    labels={"engine": e.name})
                for e in self.engines]
            self._finding_meters = [
                _metrics.REGISTRY.counter(
                    "engine.findings", unit="findings",
                    help="violations/matches reported by one engine "
                         "(labelled)",
                    labels={"engine": e.name})
                for e in self.engines]

    # -- annotation -----------------------------------------------------------

    def annotate(self, msg: Message) -> BusEvent:
        """Compute this message's shared annotations (once)."""
        clock = tuple(msg.clock)
        hb: Optional[tuple[int, ...]] = None
        if self._ordered:
            t = msg.thread
            c = self._tclk[t]
            c[t] += 1
            e = msg.event
            if e.kind in _SYNC_KINDS:
                sc = self._sync.get(e.var)
                if sc is not None:
                    for i in range(self._n):
                        if sc[i] > c[i]:
                            c[i] = sc[i]
                self._sync[e.var] = list(c)
            hb = tuple(c)
        ev = BusEvent(msg=msg, index=self._index, clock=clock, hb=hb)
        self._index += 1
        return ev

    # -- streaming ------------------------------------------------------------

    def feed(self, msg: Message) -> list[Any]:
        """Annotate one message and fan it out; returns every engine's new
        findings, concatenated in engine order."""
        ev = self.annotate(msg)
        new: list[Any] = []
        for i, engine in enumerate(self.engines):
            found = engine.feed(ev)
            if self._meters is not None:
                self._meters[i].inc()
                if found:
                    self._finding_meters[i].inc(len(found))
            new.extend(found)
        return new

    def feed_batch(self, msgs: Sequence[Message]) -> list[Any]:
        """Annotate a batch once, then one ``feed_batch`` per engine —
        the amortized end-to-end path (same results as per-message)."""
        if not msgs:
            return []
        evs = [self.annotate(m) for m in msgs]
        new: list[Any] = []
        for i, engine in enumerate(self.engines):
            found = engine.feed_batch(evs)
            if self._meters is not None:
                self._meters[i].inc(len(evs))
                if found:
                    self._finding_meters[i].inc(len(found))
            new.extend(found)
        return new

    def finish(self) -> list[Any]:
        self._finished = True
        new: list[Any] = []
        for i, engine in enumerate(self.engines):
            found = engine.finish()
            if self._finding_meters is not None and found:
                self._finding_meters[i].inc(len(found))
            new.extend(found)
        return new

    def finish_partial(
        self,
        delivered_counts: Sequence[int],
        expected_counts: Optional[Sequence[int]] = None,
    ) -> list[Any]:
        """Degraded end of stream: every engine completes over the
        delivered prefix and records the same excluded windows."""
        self._finished = True
        self._degraded = compute_degraded_windows(
            delivered_counts, expected_counts)
        new: list[Any] = []
        for i, engine in enumerate(self.engines):
            found = engine.finish_partial(delivered_counts, expected_counts)
            if self._finding_meters is not None and found:
                self._finding_meters[i].inc(len(found))
            new.extend(found)
        return new

    # -- results --------------------------------------------------------------

    @property
    def degraded_windows(self):
        return self._degraded

    @property
    def events_fed(self) -> int:
        return self._index

    def verdicts(self) -> list[EngineVerdict]:
        return [e.verdict() for e in self.engines]

    def snapshot(self) -> dict:
        return {
            "events": self._index,
            "ordered": self._ordered,
            "finished": self._finished,
            "engines": [e.snapshot() for e in self.engines],
        }
