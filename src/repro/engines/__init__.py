"""Pluggable online analysis engines behind one analysis bus.

The observer extracts a single causal stream; the
:class:`~repro.engines.bus.AnalysisBus` computes the per-event clock
annotations once and fans the stream out to every registered
:class:`~repro.engines.base.AnalysisEngine`:

* ``ltl`` — predictive past-time LTL (the paper's analysis), via
  :class:`~repro.engines.ltl.LtlEngine`;
* ``atomicity`` — linear-time serializability over vector clocks, via
  :class:`~repro.engines.atomicity.AtomicityEngine`;
* ``pattern:<steps>`` — pattern-regular predictive monitoring, via
  :class:`~repro.engines.pattern.PatternEngine`.

Engines are selected with strings (see :func:`make_engine`) and report
through a uniform :class:`~repro.engines.base.EngineVerdict` contract.
"""

from .base import (
    ENGINE_FACTORIES,
    AnalysisEngine,
    EngineError,
    EngineVerdict,
    compute_degraded_windows,
    make_engine,
    make_engines,
    parse_engine_spec,
    register_engine,
)
from .bus import AnalysisBus, BusEvent, hb_concurrent, hb_precedes
from .atomicity import AtomicityEngine, AtomicityFinding
from .ltl import LtlEngine
from .pattern import PatternEngine, PatternMatch, parse_pattern

__all__ = [
    "AnalysisBus",
    "AnalysisEngine",
    "AtomicityEngine",
    "AtomicityFinding",
    "BusEvent",
    "ENGINE_FACTORIES",
    "EngineError",
    "EngineVerdict",
    "LtlEngine",
    "PatternEngine",
    "PatternMatch",
    "compute_degraded_windows",
    "hb_concurrent",
    "hb_precedes",
    "make_engine",
    "make_engines",
    "parse_engine_spec",
    "parse_pattern",
    "register_engine",
]
