"""The pluggable analysis-engine contract (the analysis-bus consumer side).

The paper's observer extracts one causal stream; everything downstream of
it is *an analysis* — past-time LTL prediction was simply the first.  An
:class:`AnalysisEngine` is any online consumer of causally-annotated
messages that can

* :meth:`feed` one message (or a :meth:`feed_batch` of them) and report
  findings incrementally,
* :meth:`finish` at end of stream, or :meth:`finish_partial` over a
  delivered *prefix* when the transport lost messages (graceful
  degradation is part of the interface, not an LTL-only special case),
* :meth:`snapshot` its progress, and
* render a final :class:`EngineVerdict` — name, version, spec text,
  violation count, pretty-printed counterexamples, soundness and degraded
  windows — the attribution record the server result frame and the trace
  archive carry per engine.

Engines receive :class:`BusEvent` objects from the
:class:`~repro.engines.bus.AnalysisBus`, which computes the per-event
clock annotations **once** and fans the annotated stream out; an engine
must never recompute clocks itself.

Engine selection strings (``repro observe --engine ...``)::

    ltl                     past-time LTL prediction under the session spec
    ltl:<formula>           ... under an explicit formula
    atomicity               linear-time serializability (vector clocks)
    pattern:<steps>         pattern-regular predictive monitoring, e.g.
                            pattern:W(x);R(y);W(x)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence, TYPE_CHECKING

from ..analysis.predictive import DegradedWindow
from ..core.events import VarName

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .bus import BusEvent

__all__ = [
    "AnalysisEngine",
    "EngineVerdict",
    "EngineError",
    "parse_engine_spec",
    "make_engine",
    "make_engines",
    "ENGINE_FACTORIES",
]


class EngineError(ValueError):
    """An engine selection string or configuration is invalid."""


@dataclass(frozen=True)
class EngineVerdict:
    """One engine's final word on one stream — the attribution record.

    ``spec`` is the engine's own specification text (the LTL formula, the
    pattern string, or a fixed description for spec-less engines), so an
    archived verdict names both *who* produced it and *against what*.
    """

    engine: str
    version: str
    spec: str
    violations: int
    counterexamples: tuple[str, ...]
    sound: bool
    degraded_windows: tuple[DegradedWindow, ...] = ()

    @property
    def verdict(self) -> str:
        return "violation" if self.violations else "clean"

    @property
    def qualified(self) -> str:
        """``name@version`` — the catalog attribution string."""
        return f"{self.engine}@{self.version}"

    def to_json(self) -> dict:
        return {
            "engine": self.engine,
            "version": self.version,
            "spec": self.spec,
            "verdict": self.verdict,
            "violations": self.violations,
            "counterexamples": list(self.counterexamples),
            "sound": self.sound,
            "degraded_windows": [
                {"thread": w.thread, "first_missing": w.first_missing,
                 "analyzed": w.analyzed}
                for w in self.degraded_windows
            ],
        }


class AnalysisEngine:
    """Base class for online analyses driven by the analysis bus.

    Subclasses set :attr:`name` / :attr:`version` class attributes,
    implement :meth:`feed` and :meth:`finish`, and expose their findings
    via :meth:`counterexamples`.  The base class provides batch feeding,
    the generic degraded-mode bookkeeping (:meth:`finish_partial`), and
    verdict assembly — so ``Observer(fault_tolerant=True)`` works for
    *every* engine, not only the LTL predictor.

    ``requires_order=True`` engines must only ever see causally-ordered
    messages (a linear extension of ⊳); the bus enforces this at
    registration time against its own ordering guarantee.
    """

    name: str = "engine"
    version: str = "1"
    #: Must the bus deliver messages in causal order?  The LTL predictor
    #: buffers internally (the lattice reorders), so it tolerates raw
    #: arrival order; clock-annotation consumers do not.
    requires_order: bool = True

    def __init__(self) -> None:
        self._degraded: tuple[DegradedWindow, ...] = ()
        self._finished = False

    # -- streaming ------------------------------------------------------------

    def feed(self, ev: "BusEvent") -> list[Any]:
        """Consume one annotated message; return newly-found findings."""
        raise NotImplementedError

    def feed_batch(self, evs: Sequence["BusEvent"]) -> list[Any]:
        """Consume many annotated messages.  Semantically identical to
        feeding them one by one; engines override this only to amortize
        (same final state and findings either way)."""
        new: list[Any] = []
        for ev in evs:
            new.extend(self.feed(ev))
        return new

    def finish(self) -> list[Any]:
        """End of stream: run any final checks, return late findings."""
        self._finished = True
        return []

    def finish_partial(
        self,
        delivered_counts: Sequence[int],
        expected_counts: Optional[Sequence[int]] = None,
    ) -> list[Any]:
        """Finish over a delivered *prefix* (graceful degradation).

        The delivered subset is a consistent cut (causal delivery only
        releases a message once its causal past has been released), so
        every engine's verdict on the prefix is exact; what no engine can
        claim is anything about the excluded suffixes.  The base
        implementation records one :class:`DegradedWindow` per cut-short
        thread — marking the verdict unsound — and then runs the normal
        :meth:`finish` over the prefix.  Engines with their own partial
        semantics (the LTL predictor closes its sub-lattice) override
        this but must keep the same window accounting.
        """
        self._degraded = compute_degraded_windows(
            delivered_counts, expected_counts)
        return self.finish()

    def snapshot(self) -> dict:
        """Progress/diagnostic counters (shape is engine-specific; always
        includes ``engine`` and ``violations``)."""
        return {
            "engine": self.name,
            "version": self.version,
            "violations": len(self.counterexamples()),
            "finished": self._finished,
        }

    # -- results --------------------------------------------------------------

    def counterexamples(self) -> list[str]:
        """Pretty-printed findings, in discovery order."""
        raise NotImplementedError

    def spec_text(self) -> str:
        """The engine's specification text, for attribution."""
        return self.name

    @property
    def degraded_windows(self) -> tuple[DegradedWindow, ...]:
        return self._degraded

    def verdict(self) -> EngineVerdict:
        ces = tuple(self.counterexamples())
        return EngineVerdict(
            engine=self.name,
            version=self.version,
            spec=self.spec_text(),
            violations=len(ces),
            counterexamples=ces,
            sound=not self._degraded,
            degraded_windows=self._degraded,
        )


def compute_degraded_windows(
    delivered_counts: Sequence[int],
    expected_counts: Optional[Sequence[int]] = None,
) -> tuple[DegradedWindow, ...]:
    """The shared partial-verdict accounting (satellite of PR 8): which
    per-thread suffixes did the analysis never see?

    ``expected_counts`` (true totals from end-of-thread markers) makes the
    windows exact; without it every thread is conservatively degraded from
    ``delivered + 1`` since the stream was cut short.
    """
    out: list[DegradedWindow] = []
    for i, delivered in enumerate(delivered_counts):
        expected = None if expected_counts is None else expected_counts[i]
        if expected is not None and delivered > expected:
            raise ValueError(
                f"thread {i}: delivered {delivered} > expected {expected}")
        if expected is None or delivered < expected:
            out.append(DegradedWindow(
                thread=i, first_missing=delivered + 1, analyzed=delivered))
    return tuple(out)


# -- selection strings --------------------------------------------------------

#: ``name -> factory(arg, n_threads, initial, default_spec) -> engine``.
#: Registered by each engine module at import time (see
#: :func:`register_engine`); :func:`make_engine` resolves through it.
ENGINE_FACTORIES: dict[str, Callable[..., AnalysisEngine]] = {}


def register_engine(name: str,
                    factory: Callable[..., AnalysisEngine]) -> None:
    ENGINE_FACTORIES[name] = factory


def parse_engine_spec(text: str) -> tuple[str, Optional[str]]:
    """Split an engine selection string into ``(name, arg)``.

    ``"atomicity"`` → ``("atomicity", None)``;
    ``"pattern:W(x);R(y)"`` → ``("pattern", "W(x);R(y)")``.
    """
    if not isinstance(text, str) or not text.strip():
        raise EngineError(f"empty engine selection {text!r}")
    name, sep, arg = text.partition(":")
    name = name.strip().lower()
    if not name:
        raise EngineError(f"engine selection {text!r} has no engine name")
    return name, (arg if sep else None)


def make_engine(
    text: str,
    n_threads: int,
    initial: Mapping[VarName, Any],
    default_spec: Optional[str] = None,
) -> AnalysisEngine:
    """Build one engine from a selection string.

    ``default_spec`` is the session's spec (``Hello.spec`` / the demo's
    bundled property): ``"ltl"`` without an inline formula runs under it.
    """
    # ensure the built-in engines have registered their factories
    from . import atomicity, ltl, pattern  # noqa: F401

    name, arg = parse_engine_spec(text)
    factory = ENGINE_FACTORIES.get(name)
    if factory is None:
        raise EngineError(
            f"unknown engine {name!r} (available: "
            f"{', '.join(sorted(ENGINE_FACTORIES))})")
    return factory(arg, n_threads, initial, default_spec)


def make_engines(
    texts: Sequence[str],
    n_threads: int,
    initial: Mapping[VarName, Any],
    default_spec: Optional[str] = None,
) -> list[AnalysisEngine]:
    """Build a bus-ready engine list from selection strings."""
    return [make_engine(t, n_threads, initial, default_spec) for t in texts]
