"""Command-line interface: ``python -m repro <command>``.

The end-user face of the reproduction, mirroring how one would drive the
original tool:

* ``demo``    — run a bundled workload instrumented, predict violations,
  and show the lattice (the Fig. 4 pipeline in one command);
* ``record``  — run a workload and persist the message trace to a file;
* ``check``   — predictive analysis of a recorded trace against a spec;
* ``render``  — print the computation lattice (text or Graphviz DOT);
* ``races``   — happens-before data-race report for a workload;
* ``analyze`` — every analysis in one report;
* ``run``     — compile and predictively analyze a MiniLang source file;
* ``explore`` — exhaustive interleaving enumeration (ground-truth model check);
* ``observe`` — fault-tolerant observation over an imperfect channel
  (seeded drop/duplication/corruption injection + health report);
* ``stats``   — profile a workload: run the full predictive pipeline with
  metrics and tracing enabled, print the metric summary and span
  hotspots, optionally export a Chrome/Perfetto trace;
* ``serve``   — run the multi-session analysis server: one daemon
  observing many instrumented programs concurrently;
* ``attach``  — run a workload as a client of a running server, streaming
  its events over the reliable transport;
* ``sessions`` — query a running server's status endpoint: per-session
  health, verdicts and metrics;
* ``fleet serve`` — run the sharded analysis fleet: one router port in
  front of N shard daemons with consistent-hash placement, admission
  spill, and supervised restart-with-recovery (docs/FLEET.md);
* ``status``  — fleet-wide status table: router counters, per-shard
  health and generation, and every session across the fleet (degrades
  to the single-daemon view against a plain ``repro serve``);
* ``lint``    — static shared-state soundness lint over Python/MiniLang
  sources: reports accesses the instrumentor would miss (aliases,
  closures, un-instrumented helpers, …) with stable SC-codes, plus
  spec-relevance findings with ``--spec``;
* ``spec check`` — static spec consistency: proves specs satisfiable,
  falsifiable and non-vacuous before they reach a fleet, with
  synthesized witness/counter traces and SC3xx diagnostics;
* ``archive`` — run a workload (or ingest an existing trace file) into a
  trace archive: v2 segment file + catalog entry with the live verdict;
* ``replay``  — deterministically replay archived traces through the
  analysis pipeline; ``--all --expect-catalog`` is the regression-corpus
  mode (any verdict drift fails), ``--spec`` re-analyzes under a
  different property without re-running the program;
* ``query``   — filter the archive catalog (program, verdict, spec text,
  event counts);
* ``gc``      — apply a retention policy to the archive (age / total
  size / entry count).

Examples::

    python -m repro demo landing
    python -m repro record xyz /tmp/xyz.trace
    python -m repro check /tmp/xyz.trace --spec "(x > 0) -> [y == 0, y > z)"
    python -m repro render landing --dot
    python -m repro races counter
    python -m repro run controller.ml --spec "start(landing == 1) -> [approved == 1, radio == 0)"
    python -m repro observe xyz --faults drop=0.05,dup=0.02,corrupt=0.01 --fault-seed 7
    python -m repro stats xyz --trace-out /tmp/xyz-trace.json
    python -m repro observe landing --metrics --progress 2
    python -m repro serve --port 4040 --max-sessions 8 --archive /var/traces
    python -m repro attach xyz --port 4040
    python -m repro sessions --port 4040
    python -m repro fleet serve --port 4050 --shards 4 --supervised --checkpoint /var/ckpt
    python -m repro status --port 4050
    python -m repro lint src/repro/workloads examples --json
    python -m repro spec check --demos --scan src/repro/workloads
    python -m repro spec check "ltl:x == 0 and x == 1" --json
    python -m repro archive /var/traces xyz --seed 7
    python -m repro replay /var/traces --all --expect-catalog
    python -m repro query /var/traces --verdict violation --json
    python -m repro gc /var/traces --max-age-s 604800 --max-bytes 100000000
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from .analysis import detect, find_races, predict
from .core import all_accesses
from .lattice import ComputationLattice, render_computation, render_lattice, to_dot
from .observer.trace import read_trace, write_trace
from .sched import FixedScheduler, RandomScheduler, run_program
from .workloads import (
    AUDIT_PROPERTY,
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    LANDING_VARS,
    XYZ_OBSERVED_SCHEDULE,
    XYZ_PROPERTY,
    XYZ_VARS,
    landing_controller,
    racy_counter,
    transfer_program,
    xyz_program,
)

__all__ = ["main"]


class _Demo:
    def __init__(self, factory, spec, variables, schedule=None):
        self.factory = factory
        self.spec = spec
        self.variables = tuple(variables)
        self.schedule = schedule


DEMOS = {
    "landing": _Demo(landing_controller, LANDING_PROPERTY, LANDING_VARS,
                     LANDING_OBSERVED_SCHEDULE),
    "xyz": _Demo(xyz_program, XYZ_PROPERTY, XYZ_VARS, XYZ_OBSERVED_SCHEDULE),
    "bank": _Demo(transfer_program, AUDIT_PROPERTY, ("a", "b", "audited"),
                  [1, 1, 1] + [0] * 6),
    "counter": _Demo(lambda: racy_counter(2, 1), "c >= 0", ("c",)),
}


def _run_demo(demo: _Demo, seed: Optional[int] = None,
              backend: str = "flat", relevance=None):
    scheduler = (RandomScheduler(seed) if seed is not None
                 else FixedScheduler(demo.schedule or [], strict=False))
    return run_program(demo.factory(), scheduler, relevance=relevance,
                       clock_backend=backend)


def _spec_usage_errors(args: argparse.Namespace,
                       out: Callable[[str], None]) -> bool:
    """Up-front syntax validation of ``--spec`` / ``--engine`` arguments.

    Returns True (and prints the parse span) when any is malformed, so
    commands exit 1 with a pointed error instead of a traceback deep in
    monitor or engine construction.
    """
    from .staticcheck.speccheck import (
        validate_selection_syntax,
        validate_spec_syntax,
    )

    bad = False
    spec = getattr(args, "spec", None)
    if spec is not None:
        problem = validate_spec_syntax(spec)
        if problem is not None:
            out(f"error: invalid --spec: {problem}")
            bad = True
    for sel in getattr(args, "engines", None) or ():
        problem = validate_selection_syntax(sel, default_spec=spec)
        if problem is not None:
            out(f"error: invalid --engine {sel!r}: {problem}")
            bad = True
    return bad


def _engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", action="append", default=None, dest="engines",
        metavar="SEL",
        help="analysis engine selection, repeatable: 'ltl[:FORMULA]', "
             "'atomicity', 'pattern:STEPS' (default: one LTL engine under "
             "the spec; see docs/ENGINES.md)")


def _demo_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=sorted(DEMOS),
                        help="bundled workload to run")
    parser.add_argument("--seed", type=int, default=None,
                        help="use a seeded random schedule instead of the "
                             "paper's observed one")


def cmd_demo(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if _spec_usage_errors(args, out):
        return 1
    demo = DEMOS[args.workload]
    spec = args.spec or demo.spec
    execution = _run_demo(demo, args.seed)
    out(f"program: {execution.program_name}   spec: {spec}")
    out("messages:")
    for m in execution.messages:
        out(f"  {m.pretty()}")
    baseline = detect(execution, spec)
    out(f"observed run: {'OK' if baseline.ok else 'VIOLATION'}")
    report = predict(execution, spec, mode="full")
    out(f"lattice: {report.nodes} states, {report.n_runs} runs")
    out(f"violations (observed or predicted): {len(report.violations)}")
    for v in report.violations:
        out("  counterexample: " + v.pretty(demo.variables))
    if report.predicted:
        out("VERDICT: violation PREDICTED from a successful execution")
        return 1
    if not baseline.ok:
        out("VERDICT: violation observed directly")
        return 1
    out("VERDICT: no violation in any consistent run")
    return 0


def cmd_record(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    demo = DEMOS[args.workload]
    execution = _run_demo(demo, args.seed)
    n = write_trace(args.trace, execution.n_threads, execution.initial_store,
                    execution.messages, program=execution.program_name)
    out(f"recorded {n} messages from {execution.program_name} to {args.trace}")
    return 0


def cmd_check(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if not args.spec:
        out("error: --spec is required for check")
        return 2
    if _spec_usage_errors(args, out):
        return 1
    trace = read_trace(args.trace)
    from .lattice import LevelByLevelBuilder
    from .logic import Monitor

    try:
        monitor = Monitor(args.spec)
    except ValueError as exc:
        out(f"error: invalid --spec: {exc}")
        return 1
    initial = {v: trace.initial[v] for v in sorted(monitor.variables)}
    builder = LevelByLevelBuilder(trace.n_threads, initial, monitor)
    builder.feed_many(trace.messages)
    builder.finish()
    out(f"trace: {trace.program}, {len(trace.messages)} messages, "
        f"{trace.n_threads} threads")
    out(f"lattice nodes expanded: {builder.stats.nodes_expanded}")
    out(f"violations: {len(builder.violations)}")
    variables = sorted(monitor.variables)
    for v in builder.violations:
        out("  counterexample: " + v.pretty(variables))
    return 1 if builder.violations else 0


def cmd_render(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    demo = DEMOS[args.workload]
    execution = _run_demo(demo, args.seed)
    initial = {v: execution.initial_store[v] for v in demo.variables}
    lattice = ComputationLattice(execution.n_threads, initial,
                                 execution.messages)
    if args.dot:
        out(to_dot(lattice, demo.variables, title=execution.program_name))
    else:
        out(render_computation(execution.messages, execution.n_threads))
        out("")
        out(render_lattice(lattice, demo.variables))
    return 0


def cmd_analyze(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if _spec_usage_errors(args, out):
        return 1
    demo = DEMOS[args.workload]
    scheduler = (RandomScheduler(args.seed) if args.seed is not None
                 else FixedScheduler(demo.schedule or [], strict=False))
    execution = run_program(demo.factory(), scheduler,
                            relevance=all_accesses(),
                            sync_only_clocks=True)
    from .analysis import analyze

    # Predictive checking needs the full causal clocks; re-run with the
    # default instrumentation for that part.
    pred_exec = _run_demo(demo, args.seed)
    report = analyze(pred_exec, specs=[args.spec or demo.spec],
                     check_races=False)
    race_part = analyze(execution, specs=(), check_races=True)
    report.races = race_part.races
    report.races_checked = True
    report.deadlocks = race_part.deadlocks
    out(report.summary())
    return 0 if report.clean else 1


def cmd_races(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    demo = DEMOS[args.workload]
    scheduler = (RandomScheduler(args.seed) if args.seed is not None
                 else FixedScheduler(demo.schedule or [], strict=False))
    execution = run_program(demo.factory(), scheduler,
                            relevance=all_accesses(),
                            sync_only_clocks=True)
    races = find_races(execution)
    out(f"program: {execution.program_name}   races: {len(races)}")
    for r in races:
        out("  " + r.pretty())
    return 1 if races else 0


def cmd_explore(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if _spec_usage_errors(args, out):
        return 1
    from .analysis import model_check

    demo = DEMOS[args.workload]
    result = model_check(demo.factory(), args.spec or demo.spec,
                         max_executions=args.limit)
    out(f"program: {result.program_name}   spec: {result.spec}")
    out(f"interleavings explored: {result.total_runs}"
        + (" (truncated)" if result.truncated else ""))
    out(f"violating interleavings: {result.violating_runs} "
        f"({result.violation_rate:.1%})")
    if result.witness is not None:
        out(f"witness schedule: {result.witness.schedule}")
    return 0 if result.ok else 1


def cmd_run(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if _spec_usage_errors(args, out):
        return 1
    from .lang import compile_source

    with open(args.source, encoding="utf-8") as fh:
        text = fh.read()
    program = compile_source(text, name=args.source)
    scheduler = (RandomScheduler(args.seed) if args.seed is not None
                 else FixedScheduler([], strict=False))
    execution = run_program(program, scheduler)
    out(f"compiled {args.source}: {program.n_threads} threads, "
        f"shared = {sorted(map(str, program.default_relevance_vars()))}")
    out(f"executed {len(execution.events)} events, "
        f"{len(execution.messages)} relevant messages")
    out(f"final state: { {str(k): v for k, v in execution.final_store.items()} }")
    if not args.spec:
        return 0
    baseline = detect(execution, args.spec)
    out(f"observed run: {'OK' if baseline.ok else 'VIOLATION'}")
    report = predict(execution, args.spec)
    out(f"violations (observed or predicted): {len(report.violations)}")
    from .logic import Monitor

    variables = sorted(Monitor(args.spec).variables)
    for v in report.violations:
        out("  counterexample: " + v.pretty(variables))
    return 1 if report.violations else 0


def cmd_observe(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if _spec_usage_errors(args, out):
        return 1
    from . import obs
    from .observer import FaultPlan, FaultyChannel, MultiChannel, Observer
    from .observer import FifoChannel, ReorderingChannel

    demo = DEMOS[args.workload]
    spec = args.spec or demo.spec
    try:
        plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2

    want_metrics = args.metrics
    want_trace = args.trace_out is not None
    if want_metrics:
        obs.metrics.enable(reset=True)
    if want_trace:
        obs.tracing.enable(reset=True)
    reporter = (obs.ProgressReporter(every=args.progress, out=out,
                                     label="messages")
                if args.progress else None)
    try:
        # engines beyond the LTL default need the sync and read events in
        # the stream, so widen Algorithm A's relevance to every access
        execution = _run_demo(
            demo, args.seed,
            relevance=all_accesses() if args.engines else None)
        inner = {"fifo": lambda: FifoChannel(),
                 "reorder": lambda: ReorderingChannel(seed=plan.seed, window=4),
                 "multi": lambda: MultiChannel(k=2, seed=plan.seed)}[args.channel]()
        channel = FaultyChannel(plan, inner=inner)
        initial = {v: execution.initial_store[v] for v in demo.variables}
        observer = Observer(execution.n_threads, initial, spec=spec,
                            fault_tolerant=True, stall_threshold=args.stall,
                            engines=args.engines)
        totals = [0] * execution.n_threads
        for m in execution.messages:
            totals[m.thread] += 1
            channel.put(m)
            observer.consume(channel)
            if reporter is not None:
                health = observer.health
                stats = observer.stats
                reporter.tick(
                    delivered=health.delivered, buffered=health.pending,
                    level=stats.levels_completed if stats else 0)
        channel.close()
        observer.consume(channel)
        observer.finish(expected_totals=totals)
        if reporter is not None:
            reporter.final(delivered=observer.health.delivered,
                           buffered=observer.health.pending)
    finally:
        if want_metrics:
            obs.metrics.disable()
        if want_trace:
            obs.tracing.disable()

    out(f"program: {execution.program_name}   spec: {spec}")
    out(f"messages emitted: {len(execution.messages)}   "
        f"injected faults: {channel.log.summary()}")
    out("observer health:")
    for line in observer.health.summary().splitlines():
        out("  " + line)
    verdicts = observer.engine_verdicts()
    counterexamples = observer.counterexamples()
    if args.engines:
        out("engine verdicts:")
        for v in verdicts:
            out(f"  {v.qualified} [{v.spec}]: {v.verdict} "
                f"({v.violations} finding(s))")
    out(f"violations (on the analyzed region): "
        f"{sum(v.violations for v in verdicts)}")
    for c in counterexamples:
        out("  counterexample: " + c)
    if want_metrics:
        out("metrics:")
        for line in obs.metrics.REGISTRY.summary().splitlines():
            out("  " + line)
    if want_trace:
        n = obs.tracing.TRACER.export_chrome(args.trace_out)
        out(f"trace: {n} events written to {args.trace_out} "
            "(load in chrome://tracing or ui.perfetto.dev)")
    if observer.health.degraded:
        out("VERDICT: degraded — verdicts sound only outside the "
            "quarantined windows")
    else:
        out("VERDICT: sound everywhere (all faults absorbed)")
    return 1 if any(v.violations for v in verdicts) else 0


def cmd_stats(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Profile one workload end to end: run it instrumented, analyze it
    predictively with metrics + tracing on, and report where the time and
    space went."""
    import json as _json

    if _spec_usage_errors(args, out):
        return 1
    from . import obs

    demo = DEMOS[args.workload]
    spec = args.spec or demo.spec
    obs.enable(reset=True)
    try:
        with obs.tracing.TRACER.span("stats.workload", workload=args.workload):
            execution = _run_demo(demo, args.seed, backend=args.backend)
        report = predict(execution, spec, mode="levels")
    finally:
        obs.disable()

    out(f"program: {execution.program_name}   spec: {spec}")
    out(f"events: {len(execution.events)}   relevant messages: "
        f"{len(execution.messages)}   threads: {execution.n_threads}")
    out(f"lattice: {report.nodes} cuts expanded over "
        f"{report.stats.levels_completed} levels   "
        f"peak resident cuts: {report.stats.peak_resident_cuts}")
    out(f"violations (observed or predicted): {len(report.violations)}")
    out("")
    out("metrics:")
    for line in obs.metrics.REGISTRY.summary().splitlines():
        out("  " + line)
    out("")
    out("span hotspots:")
    for line in obs.tracing.TRACER.hotspots(top=args.top).splitlines():
        out("  " + line)
    if args.trace_out is not None:
        n = obs.tracing.TRACER.export_chrome(args.trace_out)
        out(f"trace: {n} events written to {args.trace_out} "
            "(load in chrome://tracing or ui.perfetto.dev)")
    if args.json:
        out(_json.dumps(obs.metrics.REGISTRY.snapshot(), indent=2,
                        default=str))
    return 0


def cmd_serve(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Run the multi-session analysis server until interrupted."""
    import signal
    import threading

    if _spec_usage_errors(args, out):
        return 1
    from .server import AnalysisServer, ServerConfig

    def on_end(record: dict) -> None:
        verdict = (record["error"] if record["state"] == "failed"
                   else f"{record['violations']} violation(s)")
        out(f"session {record['session']} [{record['program']}] "
            f"{record['state']}: {record['analyzed']} events analyzed, "
            f"{verdict}")
        sys.stdout.flush()

    try:
        config = ServerConfig(
            host=args.host, port=args.port, max_sessions=args.max_sessions,
            max_queued_events=args.max_queued, workers=args.workers,
            results_path=args.results, archive_dir=args.archive,
            supervised=args.supervised, checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume_timeout=args.resume_timeout, recover=args.recover,
            default_engines=tuple(args.engines or ()),
            strict_specs=args.strict_specs)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    server = AnalysisServer(config, on_session_end=on_end).start()
    mode = " supervised" if config.supervised else ""
    out(f"serving on {server.host}:{server.port} "
        f"(max {config.max_sessions} sessions, {config.workers}{mode} "
        f"workers)")
    sys.stdout.flush()

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    stop.wait()
    out("shutting down: draining live sessions ...")
    sys.stdout.flush()
    records = server.shutdown(drain=True)
    finished = sum(r["state"] == "finished" for r in records)
    failed = len(records) - finished
    out(f"served {len(records)} session(s): {finished} finished, "
        f"{failed} failed")
    return 0


def cmd_attach(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Run a bundled workload as a client of a running analysis server."""
    if _spec_usage_errors(args, out):
        return 1
    from .server import ServerRejected, attach

    demo = DEMOS[args.workload]
    spec = args.spec or demo.spec
    execution = _run_demo(
        demo, args.seed,
        relevance=all_accesses() if args.engines else None)
    initial = {v: execution.initial_store[v] for v in demo.variables}
    try:
        session = attach(args.host, args.port,
                         n_threads=execution.n_threads, initial=initial,
                         spec=spec, program=args.workload,
                         engines=args.engines,
                         reconnect=args.resume)
    except (ServerRejected, OSError) as exc:
        out(f"error: attach to {args.host}:{args.port} failed: {exc}")
        return 2
    out(f"attached to {args.host}:{args.port} as session "
        f"{session.session_id}")
    with session:
        for m in execution.messages:
            session.send(m)
    verdict = session.verdict
    out(f"streamed {len(execution.messages)} messages   "
        f"analyzed: {verdict.analyzed}   state: {verdict.state}")
    if verdict.engines and args.engines:
        out("engine verdicts:")
        for doc in verdict.engines:
            out(f"  {doc['engine']}@{doc['version']} [{doc.get('spec')}]: "
                f"{'violation' if doc['violations'] else 'clean'} "
                f"({doc['violations']} finding(s))")
    out(f"violations (observed or predicted): {verdict.violations}")
    for c in verdict.counterexamples:
        out("  counterexample: " + c)
    if verdict.state != "finished":
        out(f"error: session ended {verdict.state}: {verdict.error}")
        return 2
    return 1 if verdict.violations else 0


def _fetch_status_or_explain(host: str, port: int,
                             out: Callable[[str], None]):
    """One status round-trip with human-readable failure modes (instead
    of a raw OSError traceback); returns None after printing the error."""
    import socket

    from .server import fetch_status

    try:
        return fetch_status(host, port)
    except ConnectionRefusedError:
        out(f"error: no daemon is listening on {host}:{port} — is "
            f"'repro serve' (or 'repro fleet serve') running there?")
    except socket.timeout:
        out(f"error: {host}:{port} did not answer the status query in "
            f"time; the daemon may be overloaded or the port may belong "
            f"to something else")
    except OSError as exc:
        out(f"error: status query to {host}:{port} failed: {exc}")
    return None


def _print_session_table(rows: list[dict], out: Callable[[str], None],
                         with_shard: bool = False) -> None:
    if not rows:
        out("no sessions yet")
        return
    shard_col = f"{'shard':>5} " if with_shard else ""
    out(f"{'id':>9}  {shard_col}{'program':<10} {'state':<10} "
        f"{'events':>7} {'pending':>7} {'viol':>5}  detail")
    for r in rows:
        detail = r["error"] or (r["counterexamples"][0]
                                if r["counterexamples"] else "")
        shard_val = (f"{r.get('shard', '?'):>5} " if with_shard else "")
        out(f"{r['session']:>9}  {shard_val}{r['program']:<10} "
            f"{r['state']:<10} {r['analyzed']:>7} {r['pending']:>7} "
            f"{r['violations']:>5}  {detail}")


def cmd_sessions(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Query a running server's status endpoint."""
    import json as _json

    status = _fetch_status_or_explain(args.host, args.port, out)
    if status is None:
        return 2
    if args.json:
        out(_json.dumps(status, indent=2, default=str))
        return 0
    srv = status["server"]
    out(f"server {srv['host']}:{srv['port']} v{srv['version']}   "
        f"up {srv['uptime_s']:.0f}s   "
        f"sessions: {srv['active_sessions']}/{srv['max_sessions']} active, "
        f"{srv['finished']} finished, {srv['failed']} failed, "
        f"{srv['rejected']} rejected")
    _print_session_table(status["sessions"], out,
                         with_shard="fleet" in status)
    return 0


def cmd_status(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Fleet-wide status: router counters, per-shard health, every session.

    Against a plain single daemon (no ``fleet`` section in the status
    document) it degrades to the ``repro sessions`` view.
    """
    import json as _json

    status = _fetch_status_or_explain(args.host, args.port, out)
    if status is None:
        return 2
    if args.json:
        out(_json.dumps(status, indent=2, default=str))
        return 0
    srv = status["server"]
    fleet = status.get("fleet")
    if fleet is None:
        out(f"single daemon {srv['host']}:{srv['port']} v{srv['version']} "
            f"(no fleet section; showing its own status)")
        out(f"up {srv['uptime_s']:.0f}s   "
            f"sessions: {srv['active_sessions']}/{srv['max_sessions']} "
            f"active, {srv['finished']} finished, {srv['failed']} failed, "
            f"{srv['rejected']} rejected")
        _print_session_table(status["sessions"], out)
        return 0
    router = fleet["router"]
    shards = fleet["shards"]
    up = sum(r["state"] == "up" for r in shards)
    out(f"fleet {srv['host']}:{srv['port']} v{srv['version']}   "
        f"up {srv['uptime_s']:.0f}s   shards: {up}/{len(shards)} up   "
        f"sessions: {srv['active_sessions']}/{srv['max_sessions']} active, "
        f"{srv['finished']} finished, {srv['failed']} failed, "
        f"{srv['rejected']} rejected")
    out(f"router: {router['routed_sessions']} routed, "
        f"{router['spills']} spills, {router['rejects']} rejects, "
        f"{router['rebalanced_sessions']} rebalanced, "
        f"{router['shard_restarts']} shard restarts")
    out(f"{'shard':>5}  {'state':<12} {'address':<21} {'gen':>3} "
        f"{'restarts':>8} {'active':>9} {'finished':>8} {'failed':>6} "
        f"{'rejected':>8}")
    for r in shards:
        addr = (f"{r['host']}:{r['port']}" if "host" in r else "-")
        active = (f"{r['active_sessions']}/{r['max_sessions']}"
                  if "active_sessions" in r else "-")
        out(f"{r['shard']:>5}  {r['state']:<12} {addr:<21} "
            f"{r.get('generation', '-'):>3} {r['restarts']:>8} "
            f"{active:>9} {r.get('finished', '-'):>8} "
            f"{r.get('failed', '-'):>6} {r.get('rejected', '-'):>8}")
    out("")
    _print_session_table(status["sessions"], out, with_shard=True)
    return 0


def cmd_fleet_serve(args: argparse.Namespace,
                    out: Callable[[str], None]) -> int:
    """Run the sharded analysis fleet until interrupted."""
    import signal
    import threading

    if _spec_usage_errors(args, out):
        return 1
    from .fleet import FleetConfig, AnalysisFleet

    try:
        config = FleetConfig(
            host=args.host, port=args.port, shards=args.shards,
            max_sessions=args.max_sessions,
            max_queued_events=args.max_queued, workers=args.workers,
            results_path=args.results, archive_dir=args.archive,
            supervised=args.supervised, checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume_timeout=args.resume_timeout,
            default_engines=tuple(args.engines or ()),
            strict_specs=args.strict_specs)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    try:
        fleet = AnalysisFleet(config).start()
    except RuntimeError as exc:
        out(f"error: fleet failed to start: {exc}")
        return 2
    mode = " supervised" if config.supervised else ""
    out(f"fleet serving on {fleet.host}:{fleet.port} "
        f"({config.shards} shards, {config.max_sessions} sessions x "
        f"{config.workers}{mode} workers each)")
    for row in fleet.supervisor.snapshot():
        if row["state"] == "up":
            out(f"  shard {row['shard']}: {row['host']}:{row['port']} "
                f"(pid {row['pid']})")
    sys.stdout.flush()

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    stop.wait()
    out("shutting down: draining shards ...")
    sys.stdout.flush()
    final = fleet.status()
    fleet.shutdown()
    router = final["fleet"]["router"]
    out(f"fleet served {router['routed_sessions']} session(s): "
        f"{final['server']['finished']} finished, "
        f"{final['server']['failed']} failed, {router['spills']} spills, "
        f"{router['shard_restarts']} shard restarts")
    return 0


def cmd_lint(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Static shared-state soundness lint + spec-relevance report."""
    import json as _json

    from .staticcheck import lint_paths
    from .staticcheck.speccheck import check_spec_text

    spec_diags = []
    lint_spec = args.spec
    if args.spec is not None:
        # cross-wire the spec-consistency pass: its SC3xx findings land in
        # the same report as the slicing/soundness ones
        spec_result = check_spec_text(args.spec)
        spec_diags = spec_result.diagnostics
        if "SC300" in spec_result.codes():
            lint_spec = None    # unparseable: lint without spec-relevance
    try:
        report = lint_paths(args.paths, spec=lint_spec)
    except OSError as exc:
        out(f"error: {exc}")
        return 2
    report.extend(spec_diags)
    if args.json or args.json_out:
        doc = _json.dumps(report.to_json(), indent=2)
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(doc + "\n")
        if args.json:
            out(doc)
    if not args.json:
        out(report.pretty())
    if not report.ok:
        return 1
    if args.fail_on_warn and report.warnings:
        return 1
    return 0


def cmd_spec_check(args: argparse.Namespace,
                   out: Callable[[str], None]) -> int:
    """Static spec consistency: satisfiability, falsifiability, vacuity,
    with synthesized witness/counter traces (see docs/SPECCHECK.md)."""
    import glob as _glob
    import json as _json
    import os as _os

    from .staticcheck.speccheck import (
        SpecCheckOptions,
        SpecCheckReport,
        check_spec_file,
        check_spec_text,
        scan_python_specs,
    )

    try:
        options = SpecCheckOptions(horizon=args.horizon,
                                   max_values=args.values,
                                   extra_values=tuple(args.value or ()))
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    report = SpecCheckReport()
    had_input = False
    for target in args.targets:
        had_input = True
        try:
            if _os.path.isdir(target):
                for path in sorted(_glob.glob(
                        _os.path.join(target, "**", "*.spec"),
                        recursive=True)):
                    for r in check_spec_file(path, options=options):
                        report.add(r)
            elif _os.path.isfile(target):
                for r in check_spec_file(target, options=options):
                    report.add(r)
            else:
                report.add(check_spec_text(target, options=options))
        except OSError as exc:
            out(f"error: {exc}")
            return 2
    if args.demos:
        had_input = True
        for name in sorted(DEMOS):
            report.add(check_spec_text(DEMOS[name].spec,
                                       file=f"<demo:{name}>",
                                       options=options))
    if args.scan:
        had_input = True
        for src in scan_python_specs(args.scan):
            report.add(check_spec_text(src.text, file=src.file,
                                       line=src.line, col=src.col,
                                       options=options))
    if not had_input:
        out("error: nothing to check — give a spec string, a .spec "
            "file/directory, --demos, or --scan PATH")
        return 2
    if args.json or args.json_out:
        doc = _json.dumps(report.to_json(), indent=2)
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(doc + "\n")
        if args.json:
            out(doc)
    if not args.json:
        out(report.pretty())
    if not report.ok:
        return 1
    if args.fail_on_warn and report.warnings:
        return 1
    return 0


def cmd_archive(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Record a workload run (or ingest a trace file) into an archive."""
    if _spec_usage_errors(args, out):
        return 1
    from .observer.trace import TraceFormatError, TraceHeader, iter_trace
    from .store import TraceArchive

    if (args.workload is None) == (args.import_trace is None):
        out("error: give exactly one of a workload name or --import-trace")
        return 2
    archive = TraceArchive(args.dir)
    if args.import_trace is not None:
        try:
            stream = iter_trace(args.import_trace)
            header = next(stream)
            assert isinstance(header, TraceHeader)
            entry = archive.record_messages(
                args.program or header.program, header.n_threads,
                header.initial, stream, spec=args.spec,
                engines=args.engines)
        except (OSError, TraceFormatError) as exc:
            out(f"error: {exc}")
            return 2
    else:
        demo = DEMOS[args.workload]
        spec = args.spec or demo.spec
        execution = _run_demo(
            demo, args.seed,
            relevance=all_accesses() if args.engines else None)
        entry = archive.record_messages(
            args.program or args.workload, execution.n_threads,
            execution.initial_store, execution.messages, spec=spec,
            engines=args.engines)
    out(f"archived {entry.id}: {entry.events} events, {entry.bytes} bytes, "
        f"verdict {entry.verdict} ({entry.violations} violation(s))")
    for c in entry.counterexamples:
        out("  counterexample: " + c)
    return 0


def cmd_replay(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Deterministically replay archived traces; optionally enforce the
    catalog verdicts (regression-corpus mode) or re-analyze with --spec."""
    import json as _json

    if _spec_usage_errors(args, out):
        return 1
    from .observer.trace import TraceFormatError
    from .store import CatalogError, TraceArchive, replay_entry, verify_entry

    if args.expect_catalog and args.spec is not None:
        out("error: --expect-catalog replays under the recorded spec; "
            "it cannot be combined with --spec")
        return 2
    if bool(args.all) == bool(args.ids):
        out("error: give either --all or one or more trace ids")
        return 2
    try:
        archive = TraceArchive(args.dir)
        entries = (archive.entries() if args.all
                   else [archive.get(i) for i in args.ids])
    except (OSError, CatalogError) as exc:
        out(f"error: {exc}")
        return 2
    if not entries:
        out("archive holds no traces")
        return 0
    # --json emits the result document alone (the query convention);
    # the per-trace progress lines are for humans
    say = (lambda line: None) if args.json else out
    drifted = 0
    violated = 0
    results = []
    for entry in entries:
        try:
            if args.expect_catalog:
                problems = verify_entry(archive, entry,
                                        extra_engines=args.engines or ())
                if problems:
                    drifted += 1
                    say(f"{entry.id}: DRIFT")
                    for p in problems:
                        say(f"  {p}")
                else:
                    say(f"{entry.id}: OK — reproduced "
                        f"{entry.violations} violation(s) over "
                        f"{entry.events} events")
                results.append({"id": entry.id, "drift": problems})
            else:
                r = replay_entry(archive, entry, spec=args.spec,
                                 engines=args.engines)
                violated += bool(r.violations)
                say(f"{entry.id}: {r.verdict} — {r.violations} violation(s) "
                    f"over {r.events} events "
                    f"({r.events_per_sec:,.0f} events/s)"
                    + (f" under spec {args.spec!r}" if args.spec else ""))
                if args.engines:
                    for doc in r.engines:
                        say(f"  {doc['engine']}@{doc['version']} "
                            f"[{doc.get('spec')}]: "
                            f"{'violation' if doc['violations'] else 'clean'} "
                            f"({doc['violations']} finding(s))")
                for c in r.counterexamples:
                    say("  counterexample: " + c)
                results.append({
                    "id": entry.id, "verdict": r.verdict,
                    "violations": r.violations, "events": r.events,
                    "counterexamples": list(r.counterexamples),
                    "final_clocks": [list(c) for c in r.final_clocks],
                    "sound": r.sound, "elapsed_s": round(r.elapsed_s, 6),
                    "engines": list(r.engines),
                })
        except (OSError, TraceFormatError, CatalogError, KeyError) as exc:
            out(f"error: replay of {entry.id} failed: {exc}")
            return 2
    if args.json:
        out(_json.dumps(results, indent=2))
    if args.expect_catalog:
        say(f"replayed {len(entries)} trace(s): "
            + ("all verdicts reproduced exactly" if not drifted
               else f"{drifted} DRIFTED"))
        return 1 if drifted else 0
    return 1 if violated else 0


def cmd_query(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Filter the archive catalog."""
    import json as _json

    from .store import CatalogError, CatalogQuery, TraceArchive

    try:
        query = CatalogQuery(
            program=args.program, spec_contains=args.spec_contains,
            verdict=args.verdict, engine=args.engine,
            min_events=args.min_events, max_events=args.max_events)
        entries = TraceArchive(args.dir).entries(query)
    except (OSError, CatalogError, ValueError) as exc:
        out(f"error: {exc}")
        return 2
    if args.json:
        out(_json.dumps([e.to_json() for e in entries], indent=2,
                        default=str))
        return 0
    if not entries:
        out("no matching traces")
        return 0
    out(f"{'id':<16} {'program':<10} {'threads':>7} {'events':>7} "
        f"{'bytes':>9} {'verdict':<9} {'viol':>4} {'engine':<12}  spec")
    for e in entries:
        out(f"{e.id:<16} {e.program:<10} {e.n_threads:>7} {e.events:>7} "
            f"{e.bytes:>9} {e.verdict:<9} {e.violations:>4} "
            f"{e.engine:<12}  {e.spec or ''}")
    out(f"{len(entries)} trace(s)")
    return 0


def cmd_gc(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Apply the retention policy to an archive."""
    from .store import CatalogError, RetentionPolicy, TraceArchive

    try:
        policy = RetentionPolicy(
            max_age_s=args.max_age_s, max_total_bytes=args.max_bytes,
            max_entries=args.keep)
        archive = TraceArchive(args.dir)
        report = archive.gc(policy, dry_run=args.dry_run)
    except (OSError, CatalogError, ValueError) as exc:
        out(f"error: {exc}")
        return 2
    if not policy.bounded:
        out("warning: no retention bound given "
            "(--max-age-s / --max-bytes / --keep); nothing to do")
    for e in report.removed:
        out(("would remove " if args.dry_run else "removed ")
            + f"{e.id} ({e.bytes} bytes, {e.verdict})")
    out(report.summary())
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MultiPathExplorer: predictive runtime analysis of "
                    "multithreaded programs (Roşu & Sen, IPDPS 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="run a workload and predict violations")
    _demo_arg(p)
    p.add_argument("--spec", default=None, help="override the bundled spec")
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser("record", help="run a workload, persist its trace")
    _demo_arg(p)
    p.add_argument("trace", help="output trace file (JSON lines)")
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("check", help="predictive analysis of a trace file")
    p.add_argument("trace", help="trace file produced by 'record'")
    p.add_argument("--spec", required=True, help="safety specification")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("render", help="print the computation lattice")
    _demo_arg(p)
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(fn=cmd_render)

    p = sub.add_parser("races", help="happens-before data-race report")
    _demo_arg(p)
    p.set_defaults(fn=cmd_races)

    p = sub.add_parser("analyze", help="all analyses in one report")
    _demo_arg(p)
    p.add_argument("--spec", default=None, help="override the bundled spec")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("explore", help="exhaustive ground-truth model check")
    _demo_arg(p)
    p.add_argument("--spec", default=None, help="override the bundled spec")
    p.add_argument("--limit", type=int, default=100_000,
                   help="max interleavings to explore")
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser("observe",
                       help="fault-tolerant observation over a faulty channel")
    _demo_arg(p)
    p.add_argument("--spec", default=None, help="override the bundled spec")
    p.add_argument("--faults", default="",
                   help="fault spec, e.g. drop=0.05,dup=0.02,corrupt=0.01 "
                        "(also: delay=, delay_max=, crash_after=)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault-injection RNG")
    p.add_argument("--stall", type=_positive_int, default=None,
                   help="declare blocking gaps lost after this many stalled "
                        "ingests (default: only at end of stream)")
    p.add_argument("--channel", choices=("fifo", "reorder", "multi"),
                   default="fifo", help="delivery-order model under the faults")
    p.add_argument("--metrics", action="store_true",
                   help="collect pipeline metrics and print a summary")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record spans and write a Chrome/Perfetto trace file")
    p.add_argument("--progress", type=_positive_int, default=None, metavar="N",
                   help="print a progress line every N messages ingested")
    _engine_arg(p)
    p.set_defaults(fn=cmd_observe)

    p = sub.add_parser("stats",
                       help="profile a workload with metrics and tracing on")
    _demo_arg(p)
    p.add_argument("--spec", default=None, help="override the bundled spec")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome/Perfetto trace file")
    p.add_argument("--json", action="store_true",
                   help="also dump the raw metrics snapshot as JSON")
    p.add_argument("--top", type=_positive_int, default=10,
                   help="number of span hotspots to show (default 10)")
    p.add_argument("--backend", choices=("flat", "tree", "auto"),
                   default="flat",
                   help="vector-clock backend for the instrumented run "
                        "(see docs/PERFORMANCE.md)")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("serve", help="run the multi-session analysis server")
    p.add_argument("--host", default="127.0.0.1", help="listen address")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral, printed at startup)")
    p.add_argument("--max-sessions", type=_positive_int, default=16,
                   help="admission bound on concurrent sessions (default 16)")
    p.add_argument("--workers", type=_positive_int, default=2,
                   help="analysis worker threads (default 2)")
    p.add_argument("--max-queued", type=_positive_int, default=1024,
                   help="per-session ingest queue bound (default 1024)")
    p.add_argument("--results", default=None, metavar="FILE",
                   help="append terminal session records to this JSONL file")
    p.add_argument("--archive", default=None, metavar="DIR",
                   help="persist every finished session into a trace "
                        "archive rooted at DIR (see 'repro replay/query/gc')")
    p.add_argument("--supervised", action="store_true",
                   help="run each session's analysis in a supervised, "
                        "journaled worker process (requires --checkpoint)")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   dest="checkpoint_dir",
                   help="directory for durable session journals "
                        "(required by --supervised / --recover)")
    p.add_argument("--checkpoint-every", type=_positive_int, default=128,
                   help="journal fsync cadence in events (default 128)")
    p.add_argument("--resume-timeout", type=float, default=0.0,
                   metavar="SECS",
                   help="keep a disconnected session resumable for this "
                        "long before failing it (default 0 = fail at once)")
    p.add_argument("--recover", action="store_true",
                   help="on startup, readmit sessions journaled under "
                        "--checkpoint by a previous daemon")
    p.add_argument("--strict-specs", action="store_true",
                   help="run 'repro spec check' on every hello's spec and "
                        "engine selections; reject inconsistent/vacuous "
                        "specs at handshake instead of burning a worker "
                        "(see docs/SPECCHECK.md)")
    _engine_arg(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("attach",
                       help="stream a workload to a running analysis server")
    _demo_arg(p)
    p.add_argument("--host", default="127.0.0.1", help="server address")
    p.add_argument("--port", type=int, required=True, help="server port")
    p.add_argument("--spec", default=None, help="override the bundled spec")
    p.add_argument("--resume", action="store_true",
                   help="transparently reconnect and resume the session if "
                        "the connection drops mid-stream")
    _engine_arg(p)
    p.set_defaults(fn=cmd_attach)

    p = sub.add_parser("sessions",
                       help="query a running server's status endpoint")
    p.add_argument("--host", default="127.0.0.1", help="server address")
    p.add_argument("--port", type=int, required=True, help="server port")
    p.add_argument("--json", action="store_true",
                   help="dump the raw status document as JSON")
    p.set_defaults(fn=cmd_sessions)

    p = sub.add_parser(
        "fleet", help="sharded analysis fleet (see docs/FLEET.md)")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)
    p = fleet_sub.add_parser(
        "serve",
        help="run N shard daemons behind one consistent-hash router port")
    p.add_argument("--host", default="127.0.0.1", help="router address")
    p.add_argument("--port", type=int, default=0,
                   help="router port (0 = ephemeral, printed at startup)")
    p.add_argument("--shards", type=_positive_int, default=2,
                   help="shard daemon processes to run (default 2)")
    p.add_argument("--max-sessions", type=_positive_int, default=16,
                   help="admission bound per shard (default 16); the "
                        "fleet admits shards x this many sessions")
    p.add_argument("--workers", type=_positive_int, default=2,
                   help="analysis worker threads per shard (default 2)")
    p.add_argument("--max-queued", type=_positive_int, default=1024,
                   help="per-session ingest queue bound (default 1024)")
    p.add_argument("--results", default=None, metavar="FILE",
                   help="shards append terminal session records to this "
                        "JSONL file")
    p.add_argument("--archive", default=None, metavar="DIR",
                   help="fleet archive root: shard N records under "
                        "DIR/shard-NN with trace ids namespaced shNN-")
    p.add_argument("--supervised", action="store_true",
                   help="supervised, journaled session workers on every "
                        "shard (requires --checkpoint); also what makes "
                        "sessions survive whole-shard crashes")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   dest="checkpoint_dir",
                   help="root for per-shard session journals "
                        "(required by --supervised)")
    p.add_argument("--checkpoint-every", type=_positive_int, default=128,
                   help="journal fsync cadence in events (default 128)")
    p.add_argument("--resume-timeout", type=float, default=30.0,
                   metavar="SECS",
                   help="per-shard resume window for disconnected "
                        "sessions (default 30; clients re-attach through "
                        "the router after a shard restart)")
    p.add_argument("--strict-specs", action="store_true",
                   help="shards reject inconsistent/vacuous specs at "
                        "handshake (see docs/SPECCHECK.md)")
    _engine_arg(p)
    p.set_defaults(fn=cmd_fleet_serve)

    p = sub.add_parser(
        "status",
        help="fleet-wide status table from a router (or one daemon)")
    p.add_argument("--host", default="127.0.0.1", help="router address")
    p.add_argument("--port", type=int, required=True, help="router port")
    p.add_argument("--json", action="store_true",
                   help="dump the raw status document as JSON")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser(
        "archive",
        help="record a workload run (or a trace file) into a trace archive")
    p.add_argument("dir", help="archive directory (created if absent)")
    p.add_argument("workload", nargs="?", choices=sorted(DEMOS),
                   default=None, help="bundled workload to run and archive")
    p.add_argument("--import-trace", default=None, metavar="FILE",
                   help="ingest an existing trace file (v1 JSONL or v2) "
                        "instead of running a workload")
    p.add_argument("--program", default=None,
                   help="program name for the catalog entry "
                        "(default: workload name / trace header)")
    p.add_argument("--spec", default=None,
                   help="safety spec to analyze under while recording "
                        "(default: the workload's bundled spec)")
    p.add_argument("--seed", type=int, default=None,
                   help="use a seeded random schedule instead of the "
                        "paper's observed one")
    _engine_arg(p)
    p.set_defaults(fn=cmd_archive)

    p = sub.add_parser(
        "replay",
        help="deterministically replay archived traces")
    p.add_argument("dir", help="archive directory")
    p.add_argument("ids", nargs="*",
                   help="trace ids to replay (or use --all)")
    p.add_argument("--all", action="store_true",
                   help="replay every trace in the catalog")
    p.add_argument("--spec", default=None,
                   help="re-analyze under this spec instead of the "
                        "recorded one")
    p.add_argument("--expect-catalog", action="store_true",
                   help="regression-corpus mode: fail (exit 1) unless every "
                        "replay reproduces its catalog verdict bit-for-bit "
                        "(with --engine: extra engines run alongside, the "
                        "diff stays on the recorded ones)")
    p.add_argument("--json", action="store_true",
                   help="also dump the replay results as JSON")
    _engine_arg(p)
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("query", help="filter a trace archive's catalog")
    p.add_argument("dir", help="archive directory")
    p.add_argument("--program", default=None,
                   help="exact program name to match")
    p.add_argument("--spec-contains", default=None, metavar="TEXT",
                   help="substring match against the recorded spec")
    p.add_argument("--verdict", default=None,
                   choices=("violation", "clean"), help="verdict to match")
    p.add_argument("--engine", default=None, metavar="NAME",
                   help="match traces analyzed by this engine: a bare name "
                        "('atomicity') matches any version, 'atomicity@1' "
                        "exactly")
    p.add_argument("--min-events", type=int, default=None,
                   help="minimum event count")
    p.add_argument("--max-events", type=int, default=None,
                   help="maximum event count")
    p.add_argument("--json", action="store_true",
                   help="emit matching catalog entries as JSON")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser(
        "gc", help="apply a retention policy to a trace archive")
    p.add_argument("dir", help="archive directory")
    p.add_argument("--max-age-s", type=float, default=None, metavar="S",
                   help="remove traces older than S seconds")
    p.add_argument("--max-bytes", type=int, default=None, metavar="B",
                   help="shrink the archive to at most B bytes (oldest "
                        "traces removed first)")
    p.add_argument("--keep", type=int, default=None, metavar="N",
                   help="keep at most the N newest traces")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would be removed without removing it")
    p.set_defaults(fn=cmd_gc)

    p = sub.add_parser(
        "lint",
        help="static shared-state soundness lint (see docs/STATIC.md)")
    p.add_argument("paths", nargs="+",
                   help="Python/MiniLang files or directories to analyze")
    p.add_argument("--spec", default=None,
                   help="specification for spec-relevance (SC113/SC203) "
                        "findings")
    p.add_argument("--json", action="store_true",
                   help="emit the JSON report document instead of text")
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="also write the JSON report document to FILE")
    p.add_argument("--fail-on-warn", action="store_true",
                   help="exit 1 on WARN findings too (default: only ERROR)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "spec",
        help="specification tooling: 'spec check' is the static "
             "consistency pass (see docs/SPECCHECK.md)")
    spec_sub = p.add_subparsers(dest="spec_command", required=True)
    p = spec_sub.add_parser(
        "check",
        help="prove specs satisfiable/falsifiable/non-vacuous before "
             "deployment, with witness and counter traces")
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="a spec or engine-selection string, a .spec file "
                        "(one spec per line, # comments), or a directory "
                        "searched recursively for *.spec files")
    p.add_argument("--demos", action="store_true",
                   help="also check every bundled demo workload's spec")
    p.add_argument("--scan", action="append", default=None, metavar="PATH",
                   help="scan Python sources under PATH for spec string "
                        "literals (*_PROPERTY/*_SPEC assignments, spec= "
                        "and engines= arguments); repeatable")
    p.add_argument("--horizon", type=_positive_int, default=5,
                   help="witness-trace length bound in steps (default 5)")
    p.add_argument("--values", type=_positive_int, default=8,
                   help="per-variable candidate-domain size cap (default 8)")
    p.add_argument("--value", type=int, action="append", default=None,
                   metavar="N",
                   help="extra integer merged into every variable's "
                        "candidate domain; repeatable (escape hatch for "
                        "non-linear arithmetic)")
    p.add_argument("--json", action="store_true",
                   help="emit the JSON report document instead of text")
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="also write the JSON report document to FILE")
    p.add_argument("--fail-on-warn", action="store_true",
                   help="exit 1 on WARN findings too (default: only ERROR)")
    p.set_defaults(fn=cmd_spec_check)

    p = sub.add_parser("run", help="compile and analyze a MiniLang file")
    p.add_argument("source", help="MiniLang source file")
    p.add_argument("--spec", default=None, help="safety specification")
    p.add_argument("--seed", type=int, default=None,
                   help="seeded random schedule (default: deterministic)")
    p.set_defaults(fn=cmd_run)

    return parser


def main(argv: Optional[Sequence[str]] = None,
         out: Callable[[str], None] = print) -> int:
    """Entry point; returns the process exit code (0 clean, 1 violation/race,
    2 usage error)."""
    args = build_parser().parse_args(argv)
    return args.fn(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
