"""Instrumented runtime for *real* Python threads.

The paper lists three ways to execute Algorithm A on every shared-variable
access: instrument the (byte)code, modify the JVM, or "enforce shared
variable updates via library functions, which execute A as well" (§1).  This
module is the library-function route for Python; the AST route lives in
:mod:`repro.instrument.rewriter`.

A single global event lock makes every shared access *atomic and
instantaneous* — the sequential-consistency assumption of §2.1.  (CPython's
GIL does not suffice: a read-modify-write spans several bytecodes.)  Thread
identity is resolved via ``threading.get_ident`` and mapped to dense MVC
indices on first use, exercising the dynamic-thread extension the paper
mentions in §2.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping, Optional

from ..core.algorithm_a import AlgorithmA, RelevancePredicate
from ..core.events import Event, EventKind, Message, VarName

__all__ = ["InstrumentedRuntime"]


class InstrumentedRuntime:
    """Event capture + Algorithm A for real ``threading`` programs.

    Args:
        initial: initial shared store (variables must be declared up front,
            like the paper's static shared variables; dynamic registration
            is available via :meth:`declare`).
        relevance: Algorithm A's relevance predicate (default: every write).
        sink: callable receiving emitted messages (e.g. an
            :class:`~repro.observer.observer.Observer` or a socket sender).
        relevant_only: spec-relevance slicing — accesses to shared data
            variables *outside* this set update the store but generate no
            events at all (neither Algorithm A processing nor the event
            log).  Synchronization events are always recorded.  Compute
            the set with :func:`repro.staticcheck.slice_python_functions`.
        max_threads: preallocated MVC width; indices grow dynamically
            beyond it.
    """

    def __init__(
        self,
        initial: Mapping[VarName, Any],
        relevance: Optional[RelevancePredicate] = None,
        sink: Optional[Callable[[Message], None]] = None,
        sync_only_clocks: bool = False,
        relevant_only: Optional[Iterable[VarName]] = None,
        max_threads: int = 4,
    ):
        self._store: dict[VarName, Any] = dict(initial)
        self._relevant_only: Optional[frozenset[VarName]] = (
            frozenset(relevant_only) if relevant_only is not None else None)
        self._lock = threading.RLock()
        self._algo = AlgorithmA(
            max_threads,
            relevance=relevance,
            sink=sink,
            dynamic_threads=True,
            sync_only_clocks=sync_only_clocks,
        )
        self._thread_ids: dict[int, int] = {}
        self._locks: dict[VarName, threading.Lock] = {}
        self._condition_wrappers: dict[VarName, "_InstrumentedCondition"] = {}
        self._events: list[Event] = []
        self.initial_store: dict[VarName, Any] = dict(initial)

    # -- thread identity -----------------------------------------------------

    def thread_index(self) -> int:
        """Dense MVC index of the calling thread (registered on first use)."""
        ident = threading.get_ident()
        with self._lock:
            idx = self._thread_ids.get(ident)
            if idx is None:
                idx = len(self._thread_ids)
                self._thread_ids[ident] = idx
            return idx

    def register_thread(self, index: Optional[int] = None) -> int:
        """Explicitly pin the calling thread to an MVC index (main threads
        often want index 0 regardless of call order)."""
        ident = threading.get_ident()
        with self._lock:
            if index is None:
                return self.thread_index()
            if ident in self._thread_ids and self._thread_ids[ident] != index:
                raise RuntimeError("thread already registered with another index")
            if index in self._thread_ids.values():
                owner = [k for k, v in self._thread_ids.items() if v == index]
                if owner != [ident]:
                    raise RuntimeError(f"MVC index {index} already taken")
            self._thread_ids[ident] = index
            return index

    @property
    def n_threads(self) -> int:
        return self._algo.n_threads

    # -- shared accesses --------------------------------------------------------

    def declare(self, var: VarName, value: Any) -> None:
        """Register a shared variable after construction (dynamic sharing,
        §3.1)."""
        with self._lock:
            if var in self._store:
                raise ValueError(f"shared variable {var!r} already declared")
            self._store[var] = value
            self.initial_store[var] = value

    def _sliced_out(self, var: VarName) -> bool:
        return (self._relevant_only is not None
                and var not in self._relevant_only)

    def read(self, var: VarName) -> Any:
        with self._lock:
            if var not in self._store:
                raise KeyError(f"undeclared shared variable {var!r}")
            if self._sliced_out(var):
                return self._store[var]
            value = self._store[var]
            self._record(EventKind.READ, var, value)
            return value

    def write(self, var: VarName, value: Any, label: Optional[str] = None) -> Any:
        with self._lock:
            if var not in self._store:
                raise KeyError(f"undeclared shared variable {var!r}")
            self._store[var] = value
            if not self._sliced_out(var):
                self._record(EventKind.WRITE, var, value,
                             label=label or f"{var}={value!r}")
            return value

    def read_quiet(self, var: VarName) -> Any:
        """Store read with no event — the sliced-out access path.  The
        rewriter emits this for shared names outside ``relevant_only``."""
        with self._lock:
            if var not in self._store:
                raise KeyError(f"undeclared shared variable {var!r}")
            return self._store[var]

    def write_quiet(self, var: VarName, value: Any) -> Any:
        """Store write with no event — the sliced-out access path."""
        with self._lock:
            if var not in self._store:
                raise KeyError(f"undeclared shared variable {var!r}")
            self._store[var] = value
            return value

    def update(self, var: VarName, fn: Callable[[Any], Any]) -> Any:
        """Atomic read-modify-write *as two events* (read then write), like
        ``x++`` compiles to.  The global lock makes the pair indivisible in
        this execution, but the two events still let the predictive analyzer
        consider schedules where they are separated."""
        with self._lock:
            old = self.read(var)
            new = fn(old)
            self.write(var, new)
            return new

    def internal(self, label: Optional[str] = None) -> None:
        with self._lock:
            self._record(EventKind.INTERNAL, None, None, label=label)

    def _record(
        self,
        kind: EventKind,
        var: Optional[VarName],
        value: Any,
        label: Optional[str] = None,
    ) -> None:
        idx = self.thread_index()
        self._algo.process(idx, kind, var, value, label)
        self._events.append(
            Event(
                thread=idx,
                seq=self._algo.events_of(idx),
                kind=kind,
                var=var if kind.is_access else None,
                value=value,
                relevant=bool(
                    self._algo.emitted
                    and self._algo.emitted[-1].event.eid
                    == (idx, self._algo.events_of(idx))
                ),
                label=label,
            )
        )

    # -- synchronization (§3.1) ----------------------------------------------------

    def lock(self, name: VarName) -> "_InstrumentedLock":
        with self._lock:
            if name not in self._locks:
                self._locks[name] = threading.Lock()
                self._store.setdefault(name, 0)
                self.initial_store.setdefault(name, 0)
            return _InstrumentedLock(self, name, self._locks[name])

    def acquire(self, name: VarName) -> None:
        lk = self.lock(name)
        lk.acquire()

    def release(self, name: VarName) -> None:
        with self._lock:
            real = self._locks[name]
        self._record_sync(EventKind.RELEASE, name)
        real.release()

    def _record_sync(self, kind: EventKind, var: VarName) -> None:
        with self._lock:
            self._store.setdefault(var, 0)
            self.initial_store.setdefault(var, 0)
            self._record(kind, var, None, label=f"{kind.value}({var})")

    def condition(self, name: VarName) -> "_InstrumentedCondition":
        """A wait/notify condition generating §3.1's dummy-variable writes:
        the notifier writes before notification, the woken thread writes
        after — installing the notify→wake happens-before edge."""
        with self._lock:
            wrapper = self._condition_wrappers.get(name)
            if wrapper is None:
                self._store.setdefault(name, 0)
                self.initial_store.setdefault(name, 0)
                wrapper = _InstrumentedCondition(self, name, threading.Condition())
                self._condition_wrappers[name] = wrapper
            return wrapper

    # -- results -----------------------------------------------------------------

    @property
    def messages(self) -> list[Message]:
        with self._lock:
            return list(self._algo.emitted)

    @property
    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    @property
    def store(self) -> dict[VarName, Any]:
        with self._lock:
            return dict(self._store)

    @property
    def algorithm(self) -> AlgorithmA:
        return self._algo

    @property
    def relevant_only(self) -> Optional[frozenset[VarName]]:
        """The active slicing set, or None when every access is recorded."""
        return self._relevant_only


class _InstrumentedLock:
    """Context-manager lock generating §3.1 acquire/release write events."""

    def __init__(self, rt: InstrumentedRuntime, name: VarName, real: threading.Lock):
        self._rt = rt
        self._name = name
        self._real = real

    def acquire(self) -> None:
        # Take the real lock *outside* the event lock (holding the event
        # lock while blocking would deadlock every other access), then
        # record the acquire event.
        self._real.acquire()
        self._rt._record_sync(EventKind.ACQUIRE, self._name)

    def release(self) -> None:
        self._rt._record_sync(EventKind.RELEASE, self._name)
        self._real.release()

    def __enter__(self) -> "_InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _InstrumentedCondition:
    """Wait/notify with §3.1 instrumentation over ``threading.Condition``.

    Semaphore-flavored like the cooperative scheduler (a notify with no
    waiter leaves a credit), so real-thread workloads are race-free against
    the classic lost-notification hazard.
    """

    def __init__(self, rt: InstrumentedRuntime, name: VarName,
                 real: threading.Condition):
        self._rt = rt
        self._name = name
        self._real = real
        self._credits = 0

    def notify(self, n: int = 1) -> None:
        """Emit the pre-notification write, then wake up to ``n`` waiters
        (banking credits for waits that have not started yet)."""
        self._rt._record_sync(EventKind.NOTIFY, self._name)
        with self._real:
            self._credits += n
            self._real.notify(n)

    def notify_all(self) -> None:
        self._rt._record_sync(EventKind.NOTIFY, self._name)
        with self._real:
            self._credits += 1_000_000  # effectively unbounded
            self._real.notify_all()

    def wait(self, timeout: float = 30.0) -> None:
        """Block until notified, then emit the post-notification write."""
        with self._real:
            deadline_ok = self._real.wait_for(
                lambda: self._credits > 0, timeout=timeout
            )
            if not deadline_ok:
                raise TimeoutError(
                    f"wait on condition {self._name!r} timed out"
                )
            self._credits -= 1
        self._rt._record_sync(EventKind.WAKE, self._name)
