"""Typed shared-variable wrappers over :class:`InstrumentedRuntime`.

The ergonomic face of the library-function instrumentation route: declare
``SharedVar``s once, then use them from any thread; every access runs
Algorithm A.  ``SharedStruct`` mirrors the paper's §3.1 treatment of
dynamically shared object fields (each primitive field gets its own access
and write MVCs — here, its own entry in the runtime's clock tables, named
``<struct>.<field>``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from .runtime import InstrumentedRuntime

__all__ = ["SharedVar", "SharedArray", "SharedStruct", "SharedDict", "SharedList"]

_UNDECLARED = object()


class SharedVar:
    """A single instrumented shared variable.

    >>> rt = InstrumentedRuntime({"x": 0})
    >>> x = SharedVar(rt, "x")
    >>> x.set(5)
    5
    >>> x.get()
    5
    """

    __slots__ = ("_rt", "name")

    def __init__(self, runtime: InstrumentedRuntime, name: str, initial: Any = _UNDECLARED):
        self._rt = runtime
        self.name = name
        if initial is not _UNDECLARED:
            runtime.declare(name, initial)
        elif name not in runtime.initial_store:
            raise KeyError(
                f"shared variable {name!r} is not declared; pass an initial value"
            )

    def get(self) -> Any:
        return self._rt.read(self.name)

    def set(self, value: Any) -> Any:
        return self._rt.write(self.name, value)

    def update(self, fn: Callable[[Any], Any]) -> Any:
        """Read-modify-write (two events, like ``x++``)."""
        return self._rt.update(self.name, fn)

    def incr(self, delta: int = 1) -> Any:
        return self.update(lambda v: v + delta)

    def __repr__(self) -> str:
        return f"SharedVar({self.name!r})"


class SharedArray:
    """A fixed-length array whose *elements* are independent shared
    variables (``name[i]``), so accesses to different slots stay causally
    unrelated."""

    def __init__(self, runtime: InstrumentedRuntime, name: str, values: Iterable[Any]):
        self._rt = runtime
        self.name = name
        vals = list(values)
        for i, v in enumerate(vals):
            runtime.declare(f"{name}[{i}]", v)
        self._len = len(vals)

    def __len__(self) -> int:
        return self._len

    def _key(self, i: int) -> str:
        if not 0 <= i < self._len:
            raise IndexError(i)
        return f"{self.name}[{i}]"

    def get(self, i: int) -> Any:
        return self._rt.read(self._key(i))

    def set(self, i: int, value: Any) -> Any:
        return self._rt.write(self._key(i), value)

    def update(self, i: int, fn: Callable[[Any], Any]) -> Any:
        return self._rt.update(self._key(i), fn)


class SharedStruct:
    """An object with instrumented fields (``name.field``) — §3.1's
    dynamically shared variables: "for each variable x of primitive type in
    each class the instrumentation adds access and write MVCs as new
    fields"; here each field gets its own clock entry lazily.

    Field access uses plain attribute syntax::

        p = SharedStruct(rt, "point", {"x": 0, "y": 0})
        p.x = 3          # instrumented write of "point.x"
        p.x + p.y        # instrumented reads
    """

    def __init__(self, runtime: InstrumentedRuntime, name: str, fields: Mapping[str, Any]):
        object.__setattr__(self, "_rt", runtime)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_fields", frozenset(fields))
        for f, v in fields.items():
            runtime.declare(f"{name}.{f}", v)

    def __getattr__(self, field: str) -> Any:
        if field.startswith("_"):
            raise AttributeError(field)
        if field not in object.__getattribute__(self, "_fields"):
            raise AttributeError(
                f"{object.__getattribute__(self, '_name')} has no shared field {field!r}"
            )
        rt: InstrumentedRuntime = object.__getattribute__(self, "_rt")
        return rt.read(f"{object.__getattribute__(self, '_name')}.{field}")

    def __setattr__(self, field: str, value: Any) -> None:
        if field not in object.__getattribute__(self, "_fields"):
            raise AttributeError(
                f"{object.__getattribute__(self, '_name')} has no shared field {field!r}"
            )
        rt: InstrumentedRuntime = object.__getattribute__(self, "_rt")
        rt.write(f"{object.__getattribute__(self, '_name')}.{field}", value)


class SharedDict:
    """A mapping whose per-key accesses are independent shared variables.

    §3.1's "dynamically shared variables": keys are registered lazily on
    first write, each getting its own access/write MVCs (clock entry
    ``<name>[<key>]``).  Accesses to different keys remain causally
    unrelated; accesses to the same key follow read/write causality.
    """

    def __init__(self, runtime: InstrumentedRuntime, name: str,
                 initial: Mapping[str, Any] = ()):
        self._rt = runtime
        self.name = name
        self._keys: set[str] = set()
        for k, v in dict(initial).items():
            self._declare(k, v)

    def _var(self, key: str) -> str:
        return f"{self.name}[{key!r}]"

    def _declare(self, key: str, value: Any) -> None:
        self._rt.declare(self._var(key), value)
        self._keys.add(key)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def keys(self) -> frozenset:
        return frozenset(self._keys)

    def __getitem__(self, key: str) -> Any:
        if key not in self._keys:
            raise KeyError(key)
        return self._rt.read(self._var(key))

    def __setitem__(self, key: str, value: Any) -> None:
        if key not in self._keys:
            self._declare(key, value)  # first write registers the variable
            # the registration itself is the write: record it explicitly
            self._rt.write(self._var(key), value)
        else:
            self._rt.write(self._var(key), value)

    def get(self, key: str, default: Any = None) -> Any:
        if key not in self._keys:
            return default
        return self[key]

    def update_key(self, key: str, fn: Callable[[Any], Any]) -> Any:
        return self._rt.update(self._var(key), fn)


class SharedList:
    """A fixed-capacity list with instrumented element access plus an
    instrumented length cursor — the usual shape of a hand-rolled
    single-writer queue.  ``append`` is (read length, write slot, write
    length); ``pop_front`` style consumption is left to callers via
    explicit index reads so the event stream mirrors the real accesses.
    """

    def __init__(self, runtime: InstrumentedRuntime, name: str, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._rt = runtime
        self.name = name
        self.capacity = capacity
        for i in range(capacity):
            runtime.declare(f"{name}[{i}]", None)
        runtime.declare(f"{name}.len", 0)

    def __len__(self) -> int:
        return self._rt.read(f"{self.name}.len")

    def get(self, i: int) -> Any:
        if not 0 <= i < self.capacity:
            raise IndexError(i)
        return self._rt.read(f"{self.name}[{i}]")

    def set(self, i: int, value: Any) -> None:
        if not 0 <= i < self.capacity:
            raise IndexError(i)
        self._rt.write(f"{self.name}[{i}]", value)

    def append(self, value: Any) -> int:
        """Append at the current length; returns the slot used."""
        n = self._rt.read(f"{self.name}.len")
        if n >= self.capacity:
            raise IndexError(f"{self.name} is full ({self.capacity})")
        self._rt.write(f"{self.name}[{n}]", value)
        self._rt.write(f"{self.name}.len", n + 1)
        return n

    def snapshot(self) -> list:
        """Read all live elements (each read is an event)."""
        n = self._rt.read(f"{self.name}.len")
        return [self._rt.read(f"{self.name}[{i}]") for i in range(n)]
