"""Real-`threading` execution harness for instrumented programs.

Runs instrumented thread bodies on genuine OS threads (the deployment shape
of the original tool: the monitored program runs at full concurrency while
Algorithm A captures events atomically).  Scheduling is whatever the OS
does, so tests over this backend assert *invariants* (Theorem 3, race
presence, lattice feasibility), never exact schedules — the deterministic
substrate in :mod:`repro.sched` is the reproducible counterpart.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

from ..sched.scheduler import ExecutionResult
from .runtime import InstrumentedRuntime

__all__ = ["run_threads", "to_execution_result"]


def run_threads(
    runtime: InstrumentedRuntime,
    bodies: Sequence[Callable[[InstrumentedRuntime], None]],
    timeout: Optional[float] = 30.0,
) -> None:
    """Run each body on its own thread; MVC index ``i`` is pinned to
    ``bodies[i]`` regardless of OS start order.

    Raises the first exception any body raised, after all threads stop.
    """
    if not bodies:
        raise ValueError("need at least one thread body")
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(bodies))

    def wrap(i: int, body: Callable[[InstrumentedRuntime], None]) -> None:
        try:
            runtime.register_thread(i)
            barrier.wait()  # all registered before any event is generated
            body(runtime)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append(exc)

    threads = [
        threading.Thread(target=wrap, args=(i, b), name=f"repro-T{i + 1}")
        for i, b in enumerate(bodies)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise TimeoutError(f"thread {t.name} did not finish in {timeout}s")
    if errors:
        raise errors[0]


def to_execution_result(
    runtime: InstrumentedRuntime, name: str = "threaded"
) -> ExecutionResult:
    """Adapt a finished runtime into an :class:`ExecutionResult` so the
    analyses (``predict``, ``detect``, ``find_races``) apply unchanged.

    The ``schedule`` field is empty — real threads have no replayable
    choice sequence.
    """
    return ExecutionResult(
        program_name=name,
        n_threads=runtime.n_threads,
        events=runtime.events,
        messages=runtime.messages,
        schedule=[],
        final_store=runtime.store,
        initial_store=dict(runtime.initial_store),
        algorithm=runtime.algorithm,
    )
