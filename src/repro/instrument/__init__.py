"""Instrumentation layers: library shared variables, AST rewriting, and the
real-thread harness (paper §1's three implementation routes, minus
modifying the VM)."""

from .rewriter import InstrumentError, RUNTIME_NAME, instrument_function
from .runtime import InstrumentedRuntime
from .shared import SharedArray, SharedDict, SharedList, SharedStruct, SharedVar
from .threads import run_threads, to_execution_result

__all__ = [
    "InstrumentError",
    "RUNTIME_NAME",
    "instrument_function",
    "InstrumentedRuntime",
    "SharedArray",
    "SharedDict",
    "SharedList",
    "SharedStruct",
    "SharedVar",
    "run_threads",
    "to_execution_result",
]
