"""AST-level automatic instrumentation (the paper's code-instrumentation
route, transposed from JVM bytecode to Python source).

JMPaX rewrites bytecode so that "whenever a shared variable is accessed the
MVC algorithm A is inserted" (§4.1).  Python functions carry their source,
so the equivalent here is an :class:`ast.NodeTransformer` that redirects
every read/write of the *declared shared names* to the instrumented
runtime::

    def worker():
        c = c + 1          # 'c' declared shared

becomes, in effect::

    def worker():
        __rt__.write('c', __rt__.read('c') + 1)

Everything else — local variables, control flow, calls — is untouched, so
the transformed function computes the same values while emitting the event
stream Algorithm A needs.  Like the bytecode instrumentor, this needs no
cooperation from the function's *callers*; unlike it, it does need the
function's own source (``inspect.getsource``), an accepted substitution
documented in DESIGN.md.

Supported shared-name syntax: plain reads, ``x = e``, chained/multiple
assignment targets, ``x += e`` (and all augmented operators), reads inside
any expression.  ``del x``, ``global x`` declarations of shared names, and
starred/tuple-destructuring writes to shared names are rejected with
:class:`InstrumentError` rather than silently miscompiled.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Iterable

from .runtime import InstrumentedRuntime

__all__ = ["instrument_function", "InstrumentError", "RUNTIME_NAME"]

RUNTIME_NAME = "__rt__"


class InstrumentError(ValueError):
    """The function uses a shared name in a way the rewriter cannot handle."""


_AUG_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
    ast.LShift: "<<",
    ast.RShift: ">>",
}


class _Rewriter(ast.NodeTransformer):
    def __init__(self, shared: frozenset[str]):
        self.shared = shared

    # -- reads ---------------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id not in self.shared:
            return node
        if isinstance(node.ctx, ast.Load):
            return ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=RUNTIME_NAME, ctx=ast.Load()),
                    attr="read",
                    ctx=ast.Load(),
                ),
                args=[ast.Constant(node.id)],
                keywords=[],
            )
        if isinstance(node.ctx, ast.Del):
            raise InstrumentError(f"cannot delete shared variable {node.id!r}")
        # Store context is handled by the enclosing Assign/AugAssign/For.
        return node

    # -- writes ----------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> ast.AST:
        value = self.visit(node.value)
        shared_targets: list[str] = []
        plain_targets: list[ast.expr] = []
        for tgt in node.targets:
            if isinstance(tgt, ast.Name) and tgt.id in self.shared:
                shared_targets.append(tgt.id)
            else:
                self._reject_shared_in(tgt)
                plain_targets.append(self.visit(tgt))
        if not shared_targets:
            node.value = value
            node.targets = plain_targets
            return node
        # x = y = expr  with shared x: evaluate once into a temp, write the
        # shared ones via the runtime, assign the plain ones normally.
        tmp = ast.Name(id="__shared_tmp__", ctx=ast.Store())
        stmts: list[ast.stmt] = [
            ast.Assign(targets=[tmp], value=value)
        ]
        for name in shared_targets:
            stmts.append(
                ast.Expr(
                    value=ast.Call(
                        func=ast.Attribute(
                            value=ast.Name(id=RUNTIME_NAME, ctx=ast.Load()),
                            attr="write",
                            ctx=ast.Load(),
                        ),
                        args=[
                            ast.Constant(name),
                            ast.Name(id="__shared_tmp__", ctx=ast.Load()),
                        ],
                        keywords=[],
                    )
                )
            )
        for tgt in plain_targets:
            stmts.append(
                ast.Assign(targets=[tgt],
                           value=ast.Name(id="__shared_tmp__", ctx=ast.Load()))
            )
        return stmts  # type: ignore[return-value]

    def visit_AugAssign(self, node: ast.AugAssign) -> ast.AST:
        if isinstance(node.target, ast.Name) and node.target.id in self.shared:
            if type(node.op) not in _AUG_OPS:
                raise InstrumentError(
                    f"augmented operator {type(node.op).__name__} unsupported "
                    f"on shared variable {node.target.id!r}"
                )
            read = ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=RUNTIME_NAME, ctx=ast.Load()),
                    attr="read",
                    ctx=ast.Load(),
                ),
                args=[ast.Constant(node.target.id)],
                keywords=[],
            )
            new_value = ast.BinOp(left=read, op=node.op, right=self.visit(node.value))
            return ast.Expr(
                value=ast.Call(
                    func=ast.Attribute(
                        value=ast.Name(id=RUNTIME_NAME, ctx=ast.Load()),
                        attr="write",
                        ctx=ast.Load(),
                    ),
                    args=[ast.Constant(node.target.id), new_value],
                    keywords=[],
                )
            )
        self._reject_shared_in(node.target)
        node.value = self.visit(node.value)
        return node

    def visit_For(self, node: ast.For) -> ast.AST:
        self._reject_shared_in(node.target)
        self.generic_visit(node)
        return node

    def visit_Global(self, node: ast.Global) -> ast.AST:
        bad = [n for n in node.names if n in self.shared]
        if bad:
            raise InstrumentError(
                f"'global' declaration of shared variables {bad} — shared "
                f"variables live in the runtime, not module globals"
            )
        return node

    visit_Nonlocal = visit_Global  # type: ignore[assignment]

    def _reject_shared_in(self, target: ast.expr) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store) and sub.id in self.shared:
                raise InstrumentError(
                    f"unsupported write pattern to shared variable {sub.id!r} "
                    f"(only 'x = e' and 'x op= e' are instrumented)"
                )


def instrument_function(
    fn: Callable,
    shared: Iterable[str],
    runtime: InstrumentedRuntime,
) -> Callable:
    """Return a copy of ``fn`` whose accesses to ``shared`` names run through
    ``runtime`` (and hence through Algorithm A).

    The function's signature is preserved; its body is re-parsed from
    source, rewritten, recompiled, and bound to the same globals plus the
    injected runtime.
    """
    shared_set = frozenset(shared)
    undeclared = [v for v in shared_set if v not in runtime.initial_store]
    if undeclared:
        raise InstrumentError(
            f"shared names {sorted(undeclared)} are not declared in the runtime"
        )
    try:
        src = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise InstrumentError(
            f"cannot fetch source of {fn!r} (lambdas and C functions are "
            f"not instrumentable): {exc}"
        ) from exc
    tree = ast.parse(src)
    fdef = tree.body[0]
    if not isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise InstrumentError(f"{fn.__name__} is not a plain function")
    fdef.decorator_list = []  # decorators already applied to the original
    new_tree = _Rewriter(shared_set).visit(tree)
    ast.fix_missing_locations(new_tree)
    code = compile(new_tree, filename=f"<instrumented {fn.__name__}>", mode="exec")
    namespace = dict(fn.__globals__)
    namespace[RUNTIME_NAME] = runtime
    exec(code, namespace)
    new_fn = namespace[fdef.name]
    new_fn.__instrumented_shared__ = shared_set
    return new_fn
