"""AST-level automatic instrumentation (the paper's code-instrumentation
route, transposed from JVM bytecode to Python source).

JMPaX rewrites bytecode so that "whenever a shared variable is accessed the
MVC algorithm A is inserted" (§4.1).  Python functions carry their source,
so the equivalent here is an :class:`ast.NodeTransformer` that redirects
every read/write of the *declared shared names* to the instrumented
runtime::

    def worker():
        c = c + 1          # 'c' declared shared

becomes, in effect::

    def worker():
        __rt__.write('c', __rt__.read('c') + 1)

Everything else — local variables, control flow, calls — is untouched, so
the transformed function computes the same values while emitting the event
stream Algorithm A needs.  Like the bytecode instrumentor, this needs no
cooperation from the function's *callers*; unlike it, it does need the
function's own source (``inspect.getsource``), an accepted substitution
documented in DESIGN.md.

Supported shared-name syntax: plain reads, ``x = e``, chained/multiple
assignment targets, ``x: ann = e``, ``x += e`` (and all augmented
operators), reads inside any expression — including inside lambdas, nested
``def``s and comprehension *bodies*, whose accesses run against the same
runtime.  Constructs that would *rebind* a shared name to a new local
scope (comprehension targets, lambda/def parameters, ``:=`` targets,
``with``/``except``/``import`` aliases), plus ``del x``, ``global x``,
for-targets and starred/tuple-destructuring writes, are rejected with a
precise ``file:line:col`` :class:`InstrumentError` rather than silently
miscompiled — each rejection matches an SC1xx diagnostic that
``repro lint`` reports for the same construct.

Spec-relevance slicing: ``instrument_function(..., relevant_only={...})``
rewrites accesses to the *other* shared names into
``read_quiet``/``write_quiet`` runtime calls — the store stays coherent
but no events are generated, the paper's "extract the relevant variables
from the specification" (§4.1) applied at rewrite time.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Iterable, Optional

from .runtime import InstrumentedRuntime

__all__ = ["instrument_function", "InstrumentError", "RUNTIME_NAME"]

RUNTIME_NAME = "__rt__"


class InstrumentError(ValueError):
    """The function uses a shared name in a way the rewriter cannot handle.

    Carries a ``file:line:col`` span when the offending construct is known,
    rendered as a prefix in the repository's shared span format.
    """

    def __init__(self, message: str, *,
                 filename: Optional[str] = None,
                 line: Optional[int] = None,
                 col: Optional[int] = None):
        self.filename = filename
        self.line = line
        self.col = col
        self.problem = message
        if filename is not None and line is not None:
            super().__init__(f"{filename}:{line}:{col or 1}: {message}")
        else:
            super().__init__(message)


_AUG_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
    ast.LShift: "<<",
    ast.RShift: ">>",
}


class _Rewriter(ast.NodeTransformer):
    def __init__(self, shared: frozenset[str],
                 quiet: frozenset[str] = frozenset(),
                 filename: Optional[str] = None):
        self.shared = shared
        self.quiet = quiet  # sliced-out names: store ops, no events
        self.filename = filename

    def _error(self, node: ast.AST, message: str) -> InstrumentError:
        return InstrumentError(
            message, filename=self.filename,
            line=getattr(node, "lineno", None),
            col=getattr(node, "col_offset", -1) + 1 or None)

    def _read_call(self, name: str) -> ast.Call:
        return ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=RUNTIME_NAME, ctx=ast.Load()),
                attr="read_quiet" if name in self.quiet else "read",
                ctx=ast.Load(),
            ),
            args=[ast.Constant(name)],
            keywords=[],
        )

    def _write_call(self, name: str, value: ast.expr) -> ast.Call:
        return ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=RUNTIME_NAME, ctx=ast.Load()),
                attr="write_quiet" if name in self.quiet else "write",
                ctx=ast.Load(),
            ),
            args=[ast.Constant(name), value],
            keywords=[],
        )

    # -- reads ---------------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id not in self.shared:
            return node
        if isinstance(node.ctx, ast.Load):
            return self._read_call(node.id)
        if isinstance(node.ctx, ast.Del):
            raise self._error(
                node, f"cannot delete shared variable {node.id!r}")
        # Store context is handled by the enclosing Assign/AugAssign/For.
        return node

    # -- writes ----------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> ast.AST:
        value = self.visit(node.value)
        shared_targets: list[str] = []
        plain_targets: list[ast.expr] = []
        for tgt in node.targets:
            if isinstance(tgt, ast.Name) and tgt.id in self.shared:
                shared_targets.append(tgt.id)
            else:
                self._reject_shared_in(tgt)
                plain_targets.append(self.visit(tgt))
        if not shared_targets:
            node.value = value
            node.targets = plain_targets
            return node
        # x = y = expr  with shared x: evaluate once into a temp, write the
        # shared ones via the runtime, assign the plain ones normally.
        tmp = ast.Name(id="__shared_tmp__", ctx=ast.Store())
        stmts: list[ast.stmt] = [
            ast.Assign(targets=[tmp], value=value)
        ]
        for name in shared_targets:
            stmts.append(
                ast.Expr(value=self._write_call(
                    name, ast.Name(id="__shared_tmp__", ctx=ast.Load())))
            )
        for tgt in plain_targets:
            stmts.append(
                ast.Assign(targets=[tgt],
                           value=ast.Name(id="__shared_tmp__", ctx=ast.Load()))
            )
        return stmts  # type: ignore[return-value]

    def visit_AnnAssign(self, node: ast.AnnAssign) -> ast.AST:
        if isinstance(node.target, ast.Name) and node.target.id in self.shared:
            if node.value is None:
                # `x: int` alone neither reads nor writes; drop it.
                return ast.Pass()
            return ast.Expr(
                value=self._write_call(node.target.id, self.visit(node.value)))
        self._reject_shared_in(node.target)
        if node.value is not None:
            node.value = self.visit(node.value)
        return node

    def visit_AugAssign(self, node: ast.AugAssign) -> ast.AST:
        if isinstance(node.target, ast.Name) and node.target.id in self.shared:
            if type(node.op) not in _AUG_OPS:
                raise self._error(
                    node,
                    f"augmented operator {type(node.op).__name__} unsupported "
                    f"on shared variable {node.target.id!r}"
                )
            read = self._read_call(node.target.id)
            new_value = ast.BinOp(left=read, op=node.op, right=self.visit(node.value))
            return ast.Expr(
                value=self._write_call(node.target.id, new_value))
        self._reject_shared_in(node.target)
        node.value = self.visit(node.value)
        return node

    def visit_NamedExpr(self, node: ast.NamedExpr) -> ast.AST:
        if node.target.id in self.shared:
            raise self._error(
                node,
                f"assignment expression (':=') targets shared variable "
                f"{node.target.id!r}; unsupported write pattern"
            )
        node.value = self.visit(node.value)
        return node

    def visit_For(self, node: ast.For) -> ast.AST:
        self._reject_shared_in(node.target)
        self.generic_visit(node)
        return node

    def visit_Global(self, node: ast.Global) -> ast.AST:
        bad = [n for n in node.names if n in self.shared]
        if bad:
            raise self._error(
                node,
                f"'global' declaration of shared variables {bad} — shared "
                f"variables live in the runtime, not module globals"
            )
        return node

    visit_Nonlocal = visit_Global  # type: ignore[assignment]

    # -- scope-rebinding constructs ------------------------------------------

    def _check_params(self, node, kind: str) -> None:
        args = node.args
        every = (args.posonlyargs + args.args + args.kwonlyargs
                 + ([args.vararg] if args.vararg else [])
                 + ([args.kwarg] if args.kwarg else []))
        for a in every:
            if a.arg in self.shared:
                raise self._error(
                    a,
                    f"{kind} parameter {a.arg!r} shadows the shared variable "
                    f"{a.arg!r}; reads of the parameter would be miscompiled "
                    f"into runtime reads"
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        self._check_params(node, "nested function")
        self.generic_visit(node)
        return node

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> ast.AST:
        self._check_params(node, "nested function")
        self.generic_visit(node)
        return node

    def visit_Lambda(self, node: ast.Lambda) -> ast.AST:
        self._check_params(node, "lambda")
        self.generic_visit(node)
        return node

    def _visit_comprehension(self, node) -> ast.AST:
        for gen in node.generators:
            self._reject_shared_in(
                gen.target,
                reason="comprehension target rebinds shared variable")
        self.generic_visit(node)
        return node

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_With(self, node: ast.With) -> ast.AST:
        for item in node.items:
            if item.optional_vars is not None:
                self._reject_shared_in(
                    item.optional_vars,
                    reason="'with ... as' rebinds shared variable")
        self.generic_visit(node)
        return node

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> ast.AST:
        if node.name is not None and node.name in self.shared:
            raise self._error(
                node,
                f"'except ... as {node.name}' rebinds shared variable "
                f"{node.name!r}; unsupported write pattern"
            )
        self.generic_visit(node)
        return node

    def _check_import(self, node) -> ast.AST:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if bound in self.shared:
                raise self._error(
                    node,
                    f"import binds {bound!r}, shadowing a shared variable; "
                    f"unsupported write pattern"
                )
        return node

    visit_Import = _check_import
    visit_ImportFrom = _check_import

    def _reject_shared_in(self, target: ast.expr,
                          reason: Optional[str] = None) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store) and sub.id in self.shared:
                detail = f"{reason}: " if reason else ""
                raise self._error(
                    sub,
                    f"{detail}unsupported write pattern to shared variable "
                    f"{sub.id!r} (only 'x = e' and 'x op= e' are instrumented)"
                )


def instrument_function(
    fn: Callable,
    shared: Iterable[str],
    runtime: InstrumentedRuntime,
    relevant_only: Optional[Iterable[str]] = None,
) -> Callable:
    """Return a copy of ``fn`` whose accesses to ``shared`` names run through
    ``runtime`` (and hence through Algorithm A).

    The function's signature is preserved; its body is re-parsed from
    source, rewritten, recompiled, and bound to the same globals plus the
    injected runtime.  Rejections and rewrite errors carry the function's
    real ``file:line:col`` span.

    ``relevant_only`` enables spec-relevance slicing: accesses to shared
    names *outside* it still go through the runtime store (so values stay
    coherent) but use the quiet entry points and generate no events.  Use
    :func:`repro.staticcheck.slice_python_functions` to compute the set
    from a specification.
    """
    shared_set = frozenset(shared)
    undeclared = [v for v in shared_set if v not in runtime.initial_store]
    if undeclared:
        raise InstrumentError(
            f"shared names {sorted(undeclared)} are not declared in the runtime"
        )
    quiet: frozenset[str] = frozenset()
    if relevant_only is not None:
        relevant_set = frozenset(relevant_only)
        unknown = relevant_set - shared_set
        if unknown:
            raise InstrumentError(
                f"relevant_only names {sorted(unknown)} are not in the "
                f"shared set"
            )
        quiet = shared_set - relevant_set
    try:
        lines, first_line = inspect.getsourcelines(fn)
        src = textwrap.dedent("".join(lines))
        filename = inspect.getsourcefile(fn) or f"<instrumented {fn.__name__}>"
    except (OSError, TypeError) as exc:
        raise InstrumentError(
            f"cannot fetch source of {fn!r} (lambdas and C functions are "
            f"not instrumentable): {exc}"
        ) from exc
    tree = ast.parse(src)
    if first_line > 1:
        # Restore the function's real line numbers so InstrumentError spans
        # and tracebacks point into the original file.
        ast.increment_lineno(tree, first_line - 1)
    fdef = tree.body[0]
    if not isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise InstrumentError(f"{fn.__name__} is not a plain function")
    _reject_shared_in_signature(fdef, shared_set, filename)
    fdef.decorator_list = []  # decorators already applied to the original
    new_tree = _Rewriter(shared_set, quiet=quiet, filename=filename).visit(tree)
    ast.fix_missing_locations(new_tree)
    code = compile(new_tree, filename=filename, mode="exec")
    namespace = dict(fn.__globals__)
    namespace[RUNTIME_NAME] = runtime
    exec(code, namespace)
    new_fn = namespace[fdef.name]
    new_fn.__instrumented_shared__ = shared_set
    new_fn.__instrumented_relevant__ = (
        frozenset(relevant_only) if relevant_only is not None else None)
    return new_fn


def _reject_shared_in_signature(
    fdef, shared: frozenset[str], filename: str
) -> None:
    """The entry function's own signature must not involve shared names:
    parameters would shadow them (every body read miscompiles into a
    runtime read) and defaults evaluate at instrument time, outside the
    monitored execution."""
    args = fdef.args
    every = (args.posonlyargs + args.args + args.kwonlyargs
             + ([args.vararg] if args.vararg else [])
             + ([args.kwarg] if args.kwarg else []))
    for a in every:
        if a.arg in shared:
            raise InstrumentError(
                f"parameter {a.arg!r} of {fdef.name!r} shadows the shared "
                f"variable {a.arg!r}",
                filename=filename, line=a.lineno, col=a.col_offset + 1)
    for default in list(args.defaults) + [d for d in args.kw_defaults
                                          if d is not None]:
        for sub in ast.walk(default):
            if isinstance(sub, ast.Name) and sub.id in shared:
                raise InstrumentError(
                    f"shared variable {sub.id!r} read in a parameter default "
                    f"of {fdef.name!r}; defaults evaluate at instrument "
                    f"time, outside the monitored execution",
                    filename=filename, line=sub.lineno, col=sub.col_offset + 1)
