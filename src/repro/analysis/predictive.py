"""Predictive runtime analysis — the JMPaX observer (paper §4, §4.1).

Given one instrumented execution, build the computation lattice from its
relevant messages and check the specification against **every** consistent
multithreaded run in parallel, level by level.  A violation found on an
unobserved run is a *predicted* error: it can occur under a different thread
scheduling even though the observed execution was successful.

Two engines:

* ``mode="levels"`` (default) — the paper's online, space-bounded analysis
  (:class:`repro.lattice.levels.LevelByLevelBuilder`): at most two lattice
  levels resident, one monitor-state set per node.
* ``mode="full"``   — materialize the lattice and enumerate runs; finds
  *every* violating run individually (exponential; used for figures and as
  a cross-check oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..core.events import Message, VarName
from ..lattice.full import ComputationLattice
from ..lattice.levels import BuilderStats, LevelByLevelBuilder, Violation
from ..obs import tracing as _tracing
from ..logic.ast import Formula
from ..logic.monitor import Monitor
from ..sched.scheduler import ExecutionResult

__all__ = ["PredictionReport", "DegradedWindow", "predict", "predict_many",
           "OnlinePredictor"]


@dataclass(frozen=True)
class DegradedWindow:
    """A per-thread suffix of the computation the analysis never saw.

    When the transport loses the message at 1-based relevant position
    ``first_missing`` of ``thread``, every later message of that thread —
    and everything causally after it — is outside the analyzed sub-lattice.
    Verdicts touching cuts with ``cut[thread] >= first_missing`` are
    therefore *unsound*: neither violations nor their absence can be
    claimed there.  Verdicts on the analyzed prefix remain exact (the
    delivered subset is a consistent cut of the full computation, so its
    sub-lattice is a prefix of the full one).
    """

    thread: int
    #: First 1-based relevant index of ``thread`` that was never analyzed.
    first_missing: int
    #: Number of messages of this thread that *were* analyzed.
    analyzed: int

    def pretty(self) -> str:
        return (f"thread {self.thread}: sound through index {self.analyzed}, "
                f"unsound from index {self.first_missing}")


@dataclass
class PredictionReport:
    """Outcome of predictive analysis of one execution."""

    program_name: str
    spec: str
    #: Did the *observed* run itself satisfy the property?
    observed_ok: bool
    #: Index of the first violating state on the observed run (if any).
    observed_violation_index: Optional[int]
    #: Predicted violations (including the observed one if it violates).
    violations: list[Violation]
    #: Number of lattice nodes (full mode) or nodes expanded (levels mode).
    nodes: int
    #: Number of runs in the lattice (full mode only; -1 in levels mode —
    #: the online engine never enumerates runs).
    n_runs: int
    #: Resource stats (levels mode only).
    stats: Optional[BuilderStats] = field(default=None, repr=False)
    #: Regions excluded from analysis because the transport lost messages
    #: (empty for fault-free runs: the whole computation was analyzed).
    degraded_windows: tuple[DegradedWindow, ...] = ()

    @property
    def sound_everywhere(self) -> bool:
        """True when no region of the computation was excluded — verdicts
        cover the entire lattice."""
        return not self.degraded_windows

    @property
    def predicted(self) -> bool:
        """True when analysis found violations beyond the observed run —
        the paper's headline capability."""
        return bool(self.violations) and self.observed_ok

    @property
    def ok(self) -> bool:
        """No violation anywhere in the lattice."""
        return not self.violations


def _resolve_monitor(spec: str | Formula | Monitor) -> Monitor:
    return spec if isinstance(spec, Monitor) else Monitor(spec)


def _initial_state(
    store: Mapping[VarName, Any], variables: Iterable[str]
) -> dict[VarName, Any]:
    missing = [v for v in variables if v not in store]
    if missing:
        raise KeyError(
            f"specification variables {missing} absent from the program's "
            f"shared store {sorted(map(str, store))}"
        )
    return {v: store[v] for v in variables}


def predict(
    execution: ExecutionResult,
    spec: str | Formula | Monitor,
    mode: str = "levels",
    track_paths: bool = True,
    run_limit: Optional[int] = None,
) -> PredictionReport:
    """Predictively analyze one execution against a safety specification.

    The relevant variables are taken from the specification (JMPaX's rule);
    the execution must have been instrumented with a relevance predicate
    covering at least writes of those variables (the default scheduler
    configuration does).
    """
    monitor = _resolve_monitor(spec)
    variables = sorted(monitor.variables)
    initial = _initial_state(execution.initial_store, variables)

    # Observed-run verdict (what a single-trace checker would conclude).
    with _tracing.span("predict.observed_check",
                       program=execution.program_name):
        observed_states = [dict(zip(variables, t))
                           for t in execution.relevant_state_sequence(variables)]
        observed_ok, observed_idx = monitor.check_trace(observed_states)

    if mode == "levels":
        with _tracing.span("predict.levels", program=execution.program_name,
                           messages=len(execution.messages)):
            builder = LevelByLevelBuilder(
                execution.n_threads, initial, monitor, track_paths=track_paths
            )
            builder.feed_many(execution.messages)
            builder.finish()
        return PredictionReport(
            program_name=execution.program_name,
            spec=str(monitor.formula),
            observed_ok=observed_ok,
            observed_violation_index=observed_idx,
            violations=list(builder.violations),
            nodes=builder.stats.nodes_expanded,
            n_runs=-1,
            stats=builder.stats,
        )
    if mode == "full":
        with _tracing.span("predict.full", program=execution.program_name,
                           messages=len(execution.messages)):
            lattice = ComputationLattice(execution.n_threads, initial,
                                         execution.messages)
            violations: list[Violation] = []
            checked = 0
            for run in lattice.runs(limit=run_limit):
                checked += 1
                ok, k = monitor.check_trace([dict(s) for s in run.states])
                if not ok:
                    violations.append(
                        Violation(
                            messages=run.messages[:k],
                            states=run.states[: k + 1],
                            cut=_cut_of_prefix(execution.n_threads,
                                               run.messages[:k]),
                            monitor_state=None,
                        )
                    )
        return PredictionReport(
            program_name=execution.program_name,
            spec=str(monitor.formula),
            observed_ok=observed_ok,
            observed_violation_index=observed_idx,
            violations=violations,
            nodes=len(lattice),
            n_runs=checked,
            stats=None,
        )
    raise ValueError(f"unknown mode {mode!r} (expected 'levels' or 'full')")


def _cut_of_prefix(n_threads: int, messages: Sequence[Message]) -> tuple[int, ...]:
    cut = [0] * n_threads
    for m in messages:
        cut[m.thread] += 1
    return tuple(cut)


def predict_many(
    execution: ExecutionResult,
    specs: Sequence[str | Formula | Monitor],
    track_paths: bool = True,
) -> dict[str, PredictionReport]:
    """Check several specifications in **one** lattice sweep.

    A :class:`~repro.logic.composite.CompositeMonitor` bundles the monitors;
    violations are attributed to the specs whose verdict turned false at the
    violating state.  Returns one :class:`PredictionReport` per spec, keyed
    by its formula string, each carrying only its own violations (shared
    ``stats`` object: the sweep happened once).
    """
    from ..logic.composite import CompositeMonitor

    composite = CompositeMonitor(specs)
    variables = sorted(composite.variables)
    initial = _initial_state(execution.initial_store, variables)
    builder = LevelByLevelBuilder(
        execution.n_threads, initial, composite, track_paths=track_paths
    )
    builder.feed_many(execution.messages)
    builder.finish()

    per_spec: dict[int, list[Violation]] = {i: [] for i in range(len(composite))}
    for v in builder.violations:
        for i in composite.failing_specs(v.monitor_state):
            per_spec[i].append(v)

    reports: dict[str, PredictionReport] = {}
    for i, monitor in enumerate(composite.monitors):
        spec_vars = sorted(monitor.variables)
        observed_states = [
            dict(zip(spec_vars, t))
            for t in execution.relevant_state_sequence(spec_vars)
        ]
        ok, idx = monitor.check_trace(observed_states)
        reports[str(monitor.formula)] = PredictionReport(
            program_name=execution.program_name,
            spec=str(monitor.formula),
            observed_ok=ok,
            observed_violation_index=idx,
            violations=per_spec[i],
            nodes=builder.stats.nodes_expanded,
            n_runs=-1,
            stats=builder.stats,
        )
    return reports


class OnlinePredictor:
    """Streaming façade: feed messages as the program runs, read violations
    as they are predicted (the deployment shape of Fig. 4's monitoring
    module).  Wire its :meth:`feed` to Algorithm A's ``sink`` or to a
    :class:`repro.observer.channel.Channel` consumer.
    """

    def __init__(
        self,
        n_threads: int,
        initial_store: Mapping[VarName, Any],
        spec: str | Formula | Monitor,
        track_paths: bool = True,
    ):
        self._monitor = _resolve_monitor(spec)
        variables = sorted(self._monitor.variables)
        self._builder = LevelByLevelBuilder(
            n_threads,
            _initial_state(initial_store, variables),
            self._monitor,
            track_paths=track_paths,
        )
        self._reported = 0

    def feed(self, msg: Message) -> list[Violation]:
        """Consume one message; returns violations newly discovered by it."""
        self._builder.feed(msg)
        return self._drain()

    def feed_batch(self, msgs: Sequence[Message]) -> list[Violation]:
        """Consume many messages at once; returns violations newly
        discovered by the batch.  Same final state and violation set as
        feeding them one by one (the builder advances once at the end
        instead of after each message)."""
        self._builder.feed_many(msgs)
        return self._drain()

    def mark_thread_done(self, thread: int, total_relevant: int) -> list[Violation]:
        self._builder.mark_thread_done(thread, total_relevant)
        return self._drain()

    def finish(self) -> list[Violation]:
        self._builder.finish()
        return self._drain()

    def finish_partial(
        self,
        delivered_counts: Sequence[int],
        expected_counts: Optional[Sequence[int]] = None,
    ) -> list[Violation]:
        """Finish over a *delivered prefix* instead of the full stream.

        Graceful-degradation path: the transport lost messages, and the
        observer decided to stop waiting.  ``delivered_counts[i]`` is the
        number of thread-``i`` messages actually fed to :meth:`feed` — a
        consistent cut, because causal delivery only releases a message
        once its whole causal past has been released.  The builder is told
        each thread ends there, so the sub-lattice completes instead of
        stalling on the gaps; verdicts on it are exact for the prefix.

        ``expected_counts`` (the true per-thread totals, when known from
        end-of-thread markers) determines the :attr:`degraded_windows`
        accounting; without it any thread is conservatively marked degraded
        from ``delivered + 1`` since the stream was cut short.
        """
        self._degraded = []
        for i, delivered in enumerate(delivered_counts):
            expected = (None if expected_counts is None
                        else expected_counts[i])
            if expected is not None and delivered > expected:
                raise ValueError(
                    f"thread {i}: delivered {delivered} > expected {expected}"
                )
            if expected is None or delivered < expected:
                self._degraded.append(DegradedWindow(
                    thread=i, first_missing=delivered + 1,
                    analyzed=delivered,
                ))
            self._builder.mark_thread_done(i, delivered)
        self._builder.finish()
        return self._drain()

    @property
    def degraded_windows(self) -> tuple[DegradedWindow, ...]:
        """Set by :meth:`finish_partial`; empty after a clean :meth:`finish`."""
        return tuple(getattr(self, "_degraded", ()))

    def _drain(self) -> list[Violation]:
        new = self._builder.violations[self._reported:]
        self._reported = len(self._builder.violations)
        return new

    @property
    def violations(self) -> list[Violation]:
        return list(self._builder.violations)

    @property
    def stats(self) -> BuilderStats:
        return self._builder.stats
