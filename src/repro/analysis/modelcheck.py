"""Exhaustive schedule model checking — the ground-truth comparator.

§4 notes that "since the computation lattice acts like an abstract model of
the running program, one can potentially run one's favorite model checker
against any property of interest".  This module is the *program-level*
model checker this reproduction uses as ground truth: enumerate every
interleaving with the deterministic scheduler and check the property on
each observed trace.  It is exponential and needs the whole program (not
just one run) — exactly the cost profile predictive analysis avoids — which
makes it the right yardstick for soundness/coverage experiments:

* every violation *predicted* from one run must correspond to a violating
  interleaving found here (soundness, for straightline programs);
* the fraction of violating interleavings that a single ``predict`` call
  covers measures prediction coverage from one observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..logic.monitor import Monitor
from ..sched.program import Program
from ..sched.scheduler import ExecutionResult, explore_all
from .detector import detect

__all__ = ["ModelCheckResult", "model_check"]


@dataclass
class ModelCheckResult:
    """Outcome of exhaustive interleaving exploration."""

    program_name: str
    spec: str
    #: Interleavings explored (excluding deadlocked ones).
    total_runs: int
    #: Interleavings whose observed trace violates the property.
    violating_runs: int
    #: One violating execution (schedule is replayable), if any.
    witness: Optional[ExecutionResult] = field(default=None, repr=False)
    #: Whether exploration was truncated by ``max_executions``.
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.violating_runs == 0 and not self.truncated

    @property
    def violation_rate(self) -> float:
        return self.violating_runs / self.total_runs if self.total_runs else 0.0


def model_check(
    program: Program,
    spec: str | Monitor,
    max_executions: int = 100_000,
    max_steps: int = 10_000,
) -> ModelCheckResult:
    """Check a safety property on *every* interleaving of ``program``.

    Deadlocked interleavings are skipped (they have no complete trace;
    use :func:`repro.analysis.deadlock.find_potential_deadlocks` for those).
    """
    monitor = spec if isinstance(spec, Monitor) else Monitor(spec)
    total = bad = 0
    witness: Optional[ExecutionResult] = None
    produced_limit = False
    for execution in explore_all(program, max_executions=max_executions,
                                 max_steps=max_steps):
        total += 1
        result = detect(execution, monitor)
        if not result.ok:
            bad += 1
            if witness is None:
                witness = execution
        if total >= max_executions:
            produced_limit = True
            break
    return ModelCheckResult(
        program_name=program.name,
        spec=str(monitor.formula),
        total_runs=total,
        violating_runs=bad,
        witness=witness,
        truncated=produced_limit,
    )
