"""Prediction coverage: how much of the schedule space one run explains.

The paper's pitch is coverage — "a major drawback of testing is its lack of
coverage" (§1).  This module quantifies it.  Interleavings are grouped into
*behavior classes* by their relevant trace (the sequence of relevant-event
labels, which captures both ordering and data); the computation lattice of
one observed execution covers every class whose trace is a linearization of
that execution's causal order.

Two measures:

* :func:`prediction_coverage` — from ONE execution: which classes (and
  which *violating* classes) its lattice covers, against the exhaustive
  ground truth;
* :func:`observations_to_cover` — how many observed executions a tool needs
  before it has seen/covered every class: a flat-trace tool (JPaX) covers
  one class per run, the predictive tool covers a whole lattice per run.
  The gap is the paper's value proposition as a number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lattice.full import ComputationLattice
from ..logic.monitor import Monitor
from ..sched.program import Program
from ..sched.scheduler import ExecutionResult, RandomScheduler, explore_all, run_program
from .detector import detect

__all__ = ["CoverageReport", "prediction_coverage", "observations_to_cover"]

TraceClass = tuple  # tuple of relevant-event labels


def _trace_class(execution: ExecutionResult) -> TraceClass:
    return tuple(m.event.label or m.event.pretty() for m in execution.messages)


def _lattice_classes(execution: ExecutionResult) -> set[TraceClass]:
    variables = sorted(map(str, execution.initial_store))
    initial = dict(execution.initial_store)
    lattice = ComputationLattice(execution.n_threads, initial,
                                 execution.messages)
    return {
        tuple(m.event.label or m.event.pretty() for m in run.messages)
        for run in lattice.runs()
    }


@dataclass
class CoverageReport:
    """Coverage of the interleaving space by one observed execution."""

    program_name: str
    #: Distinct relevant-trace classes over all interleavings.
    total_classes: int
    #: Classes covered by the observed execution's lattice.
    covered_classes: int
    #: Classes whose observed trace violates the spec (None: no spec given).
    violating_classes: Optional[int] = None
    #: Violating classes among the covered ones.
    covered_violating: Optional[int] = None

    @property
    def fraction(self) -> float:
        return self.covered_classes / self.total_classes if self.total_classes else 0.0

    @property
    def violating_fraction(self) -> Optional[float]:
        if self.violating_classes in (None, 0):
            return None
        return (self.covered_violating or 0) / self.violating_classes


def prediction_coverage(
    program: Program,
    execution: ExecutionResult,
    spec: Optional[str | Monitor] = None,
    max_executions: int = 100_000,
) -> CoverageReport:
    """Coverage of ``program``'s behavior classes by ``execution``'s lattice.

    Exhaustively enumerates interleavings (ground truth — exponential) and
    intersects their trace classes with the lattice's runs.
    """
    classes: dict[TraceClass, bool] = {}
    monitor = None
    if spec is not None:
        monitor = spec if isinstance(spec, Monitor) else Monitor(spec)
    for ex in explore_all(program, max_executions=max_executions):
        key = _trace_class(ex)
        if key not in classes:
            classes[key] = bool(monitor) and not detect(ex, monitor).ok
    covered = _lattice_classes(execution)
    covered &= set(classes)
    report = CoverageReport(
        program_name=program.name,
        total_classes=len(classes),
        covered_classes=len(covered),
    )
    if monitor is not None:
        report.violating_classes = sum(1 for bad in classes.values() if bad)
        report.covered_violating = sum(1 for c in covered if classes[c])
    return report


def observations_to_cover(
    program: Program,
    predictive: bool,
    max_observations: int = 500,
    max_executions: int = 100_000,
    seed0: int = 0,
) -> Optional[int]:
    """Observations (random-schedule runs) needed to cover every behavior
    class — one class per run for a flat-trace tool, a lattice per run for
    the predictive tool.  Returns ``None`` if not covered within the budget.
    """
    all_classes = {
        _trace_class(ex)
        for ex in explore_all(program, max_executions=max_executions)
    }
    seen: set[TraceClass] = set()
    for k in range(max_observations):
        ex = run_program(program, RandomScheduler(seed0 + k))
        if predictive:
            seen |= _lattice_classes(ex)
        else:
            seen.add(_trace_class(ex))
        if all_classes <= seen:
            return k + 1
    return None
