"""Liveness-violation prediction via lassos (paper §4).

"The idea here is to search for paths of the form ``uv`` in the computation
lattice with the property that the shared variable global state of the
multithreaded program reached by ``u`` is the same as the one reached by
``uv``, and then to check whether ``u vω`` satisfies the liveness property"
— the test being polynomial per [22] (Markey–Schnoebelen), implemented in
:mod:`repro.logic.lasso`.

The computation lattice of a finite execution is a DAG, so a lasso is a
*state repetition along a path*: the interval between the two occurrences is
a candidate loop ``v`` the system could conceivably repeat forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from ..core.events import Message, VarName
from ..lattice.full import ComputationLattice
from ..logic.ast import Formula
from ..logic.lasso import evaluate_lasso
from ..logic.parser import parse

__all__ = ["Lasso", "LassoViolation", "find_lassos", "predict_liveness_violations"]


@dataclass(frozen=True)
class Lasso:
    """A candidate infinite behavior ``u · vω`` found in the lattice."""

    #: Stem states (including the initial state) — positions 0..|u|-1.
    u_states: tuple[Mapping[VarName, object], ...]
    #: Loop states — the segment between the repeated global state, whose
    #: last state equals the state closing the loop.
    v_states: tuple[Mapping[VarName, object], ...]
    #: Messages labeling the stem and loop edges, for reporting.
    u_messages: tuple[Message, ...]
    v_messages: tuple[Message, ...]


@dataclass(frozen=True)
class LassoViolation:
    """A liveness property falsified on a predicted infinite behavior."""

    lasso: Lasso
    spec: str


def find_lassos(
    lattice: ComputationLattice,
    limit: Optional[int] = None,
) -> Iterator[Lasso]:
    """Enumerate state-repetition lassos along lattice paths (DFS).

    A lasso is reported whenever the global state reached at some point of a
    path equals a state seen earlier *on the same path*; the repeated-state
    interval is the loop.  Deduplicated by (stem length, loop state
    sequence).
    """
    produced = 0
    seen: set[tuple] = set()

    def state_key(s: Mapping[VarName, object]) -> tuple:
        return tuple(sorted(s.items(), key=lambda kv: str(kv[0])))

    path_states: list[Mapping[VarName, object]] = [lattice.state(lattice.bottom)]
    path_msgs: list[Message] = []

    def dfs(cut) -> Iterator[Lasso]:
        nonlocal produced
        current_key = state_key(path_states[-1])
        for j in range(len(path_states) - 1):
            if state_key(path_states[j]) == current_key:
                u_states = tuple(path_states[: j + 1])
                v_states = tuple(path_states[j + 1:])
                sig = (j, tuple(state_key(s) for s in v_states))
                if sig not in seen:
                    seen.add(sig)
                    yield Lasso(
                        u_states=u_states,
                        v_states=v_states,
                        u_messages=tuple(path_msgs[:j]),
                        v_messages=tuple(path_msgs[j:]),
                    )
                    produced += 1
                    if limit is not None and produced >= limit:
                        return
                break  # earliest repetition gives the maximal loop
        for msg, succ in lattice.successors(cut):
            path_msgs.append(msg)
            path_states.append(_apply(path_states[-1], msg))
            yield from dfs(succ)
            if limit is not None and produced >= limit:
                path_msgs.pop()
                path_states.pop()
                return
            path_msgs.pop()
            path_states.pop()

    yield from dfs(lattice.bottom)


def _apply(state: Mapping[VarName, object], msg: Message) -> dict:
    from ..lattice.cut import apply_message

    return apply_message(state, msg)


def predict_liveness_violations(
    lattice: ComputationLattice,
    spec: str | Formula,
    lasso_limit: int = 1000,
) -> list[LassoViolation]:
    """Check a future-time LTL property on every candidate lasso.

    Returns the lassos on which ``u vω ⊭ spec`` — predicted infinite
    behaviors violating the liveness property.  (Heuristic, as in the paper:
    a reported lasso is a *plausible* infinite run, not a proof the program
    can actually diverge.)
    """
    formula = parse(spec) if isinstance(spec, str) else spec
    out: list[LassoViolation] = []
    for lasso in find_lassos(lattice, limit=lasso_limit):
        if not evaluate_lasso(formula, lasso.u_states, lasso.v_states):
            out.append(LassoViolation(lasso=lasso, spec=str(formula)))
    return out
