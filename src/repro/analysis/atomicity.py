"""Predictive atomicity-violation detection (unserializable access patterns).

A third bug class in the lineage of the paper's §1 motivation (alongside
data races and deadlocks — the authors' later jPredictor made atomicity a
headline analysis): a lock-protected region is *meant* to be atomic, but if
a remote conflicting access is concurrent with the region under the
synchronization-only happens-before order, some schedule interleaves it
between two local accesses.  Whether that interleaving is harmful follows
the classic serializability table (Lu et al.'s AVIO / Wang & Stoller): with
``a1, a2`` consecutive local accesses of ``x`` inside the region and ``r``
the remote access in between, the unserializable triples are::

    R - W - R    non-repeatable read (the two local reads disagree)
    W - W - R    the local read sees the remote write, local write lost
    R - W - W    the remote write is silently overwritten
    W - R - W    the remote read observes an intermediate value

The other four triples are equivalent to a serial order and not reported.

Like the race detector, this is *predictive*: the report is based on
concurrency in the observed causal order, not on the interleaving actually
having happened.  Requires the race-detection instrumentation
(``all_accesses`` relevance is unnecessary — events suffice — but the
execution must record events; any :class:`ExecutionResult` works).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.computation import Computation
from ..core.events import Event, EventKind, VarName
from ..sched.scheduler import ExecutionResult

__all__ = ["AtomicRegion", "AtomicityViolation", "find_atomicity_violations"]

#: The four unserializable (local, remote, local) kind-triples.
_UNSERIALIZABLE = {
    ("R", "W", "R"),
    ("W", "W", "R"),
    ("R", "W", "W"),
    ("W", "R", "W"),
}


@dataclass(frozen=True)
class AtomicRegion:
    """One observed lock-protected span of a thread."""

    thread: int
    lock: VarName
    #: Indices into the execution's event list (inclusive bounds).
    start: int
    end: int


@dataclass(frozen=True)
class AtomicityViolation:
    """An unserializable pattern: a remote access can land between two
    consecutive local accesses of an atomic region."""

    var: VarName
    region: AtomicRegion
    first: Event
    remote: Event
    second: Event
    pattern: tuple[str, str, str]

    def pretty(self) -> str:
        p = "-".join(self.pattern)
        return (
            f"atomicity violation on {self.var!r} in T{self.region.thread + 1}'s "
            f"{self.region.lock!r} region: {p} "
            f"({self.first.pretty()} .. {self.remote.pretty()} .. "
            f"{self.second.pretty()})"
        )


def _kind(e: Event) -> str:
    return "W" if e.kind.is_write else "R"


def _regions(events: Sequence[Event]) -> list[AtomicRegion]:
    """Maximal acquire..release spans per (thread, lock)."""
    open_at: dict[tuple[int, VarName], int] = {}
    out: list[AtomicRegion] = []
    for i, e in enumerate(events):
        if e.kind is EventKind.ACQUIRE:
            open_at[(e.thread, e.var)] = i
        elif e.kind is EventKind.RELEASE:
            start = open_at.pop((e.thread, e.var), None)
            if start is not None:
                out.append(AtomicRegion(thread=e.thread, lock=e.var,
                                        start=start, end=i))
    return out


def find_atomicity_violations(
    execution: ExecutionResult | Sequence[Event],
) -> list[AtomicityViolation]:
    """Report every unserializable (local, remote, local) pattern whose
    remote access is concurrent with both local accesses under the
    synchronization-only happens-before order."""
    events = execution.events if isinstance(execution, ExecutionResult) else list(execution)
    comp = Computation(events, causality="sync")
    regions = _regions(events)
    # plain data accesses only (sync pseudo-writes are not region payload)
    data = [
        e for e in events
        if e.kind in (EventKind.READ, EventKind.WRITE)
    ]
    by_var: dict[VarName, list[Event]] = {}
    for e in data:
        by_var.setdefault(e.var, []).append(e)

    out: list[AtomicityViolation] = []
    seen: set[tuple] = set()
    for region in regions:
        span = [
            e for e in events[region.start: region.end + 1]
            if e.thread == region.thread
            and e.kind in (EventKind.READ, EventKind.WRITE)
        ]
        per_var: dict[VarName, list[Event]] = {}
        for e in span:
            per_var.setdefault(e.var, []).append(e)
        for var, locals_ in per_var.items():
            for a1, a2 in zip(locals_, locals_[1:]):
                for r in by_var.get(var, ()):
                    if r.thread == region.thread:
                        continue
                    pattern = (_kind(a1), _kind(r), _kind(a2))
                    if pattern not in _UNSERIALIZABLE:
                        continue
                    if comp.concurrent(a1, r) and comp.concurrent(a2, r):
                        key = (var, a1.eid, r.eid, a2.eid)
                        if key not in seen:
                            seen.add(key)
                            out.append(AtomicityViolation(
                                var=var, region=region,
                                first=a1, remote=r, second=a2,
                                pattern=pattern,
                            ))
    return out
