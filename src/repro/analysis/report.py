"""One-stop analysis reports: everything the tool knows about an execution.

Combines the individual analyses — predictive safety checking, data races,
potential deadlocks, and (optionally) predicate modalities — into a single
structured result with a human-readable rendering, which is what a user of
the original tool would actually read.  Drives ``python -m repro analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.algorithm_a import all_accesses
from ..logic.monitor import Monitor
from ..sched.scheduler import ExecutionResult
from .atomicity import AtomicityViolation, find_atomicity_violations
from .datarace import Race, find_races
from .deadlock import PotentialDeadlock, find_potential_deadlocks
from .detector import detect
from .predictive import PredictionReport, predict

__all__ = ["AnalysisReport", "analyze"]


@dataclass
class AnalysisReport:
    """Aggregated findings for one instrumented execution."""

    program_name: str
    n_threads: int
    n_events: int
    n_messages: int
    #: Per-spec prediction outcomes (empty if no specs were given).
    predictions: dict[str, PredictionReport] = field(default_factory=dict)
    races: list[Race] = field(default_factory=list)
    deadlocks: list[PotentialDeadlock] = field(default_factory=list)
    atomicity: list[AtomicityViolation] = field(default_factory=list)
    #: Whether race detection actually ran (it needs a sync-only-clocks,
    #: all-accesses instrumented execution; see :func:`analyze`).
    races_checked: bool = False

    @property
    def clean(self) -> bool:
        """No finding of any kind."""
        return (
            all(r.ok for r in self.predictions.values())
            and not self.races
            and not self.deadlocks
            and not self.atomicity
        )

    def summary(self) -> str:
        lines = [
            f"analysis of {self.program_name}: {self.n_threads} threads, "
            f"{self.n_events} events, {self.n_messages} relevant messages"
        ]
        for spec, rep in self.predictions.items():
            if rep.ok:
                verdict = "holds on every consistent run"
            elif rep.predicted:
                verdict = (f"VIOLATED in {len(rep.violations)} predicted "
                           f"run(s) — observed run was successful")
            else:
                verdict = "VIOLATED on the observed run"
            lines.append(f"  spec {spec}: {verdict}")
        if self.races_checked:
            lines.append(f"  data races: {len(self.races)}")
            for r in self.races[:10]:
                lines.append(f"    {r.pretty()}")
        else:
            lines.append("  data races: not checked (needs all-accesses + "
                         "sync-only-clocks instrumentation)")
        lines.append(f"  potential deadlocks: {len(self.deadlocks)}")
        for d in self.deadlocks:
            lines.append(f"    {d.pretty()}")
        lines.append(f"  atomicity violations: {len(self.atomicity)}")
        for a in self.atomicity[:10]:
            lines.append(f"    {a.pretty()}")
        lines.append(f"verdict: {'CLEAN' if self.clean else 'FINDINGS'}")
        return "\n".join(lines)


def analyze(
    execution: ExecutionResult,
    specs: Sequence[str | Monitor] = (),
    check_races: Optional[bool] = None,
) -> AnalysisReport:
    """Run every applicable analysis over one execution.

    Race detection requires the execution to have been instrumented with
    ``all_accesses`` relevance *and* ``sync_only_clocks=True``; by default it
    runs iff read events are present in the message stream (a heuristic for
    that configuration), and can be forced on/off with ``check_races``.
    """
    report = AnalysisReport(
        program_name=execution.program_name,
        n_threads=execution.n_threads,
        n_events=len(execution.events),
        n_messages=len(execution.messages),
    )
    for spec in specs:
        rep = predict(execution, spec)
        report.predictions[rep.spec] = rep

    has_reads = any(m.event.kind.is_read for m in execution.messages)
    do_races = has_reads if check_races is None else check_races
    if do_races:
        report.races = find_races(execution)
        report.races_checked = True
    report.deadlocks = find_potential_deadlocks(execution)
    report.atomicity = find_atomicity_violations(execution)
    return report
