"""Observed-run-only checking — the JPaX / Java-MaC baseline.

Systems like JPaX, Java-MaC and PET "are able to analyze only one path in
the lattice" (paper §4): the flat sequence of states the execution actually
passed through.  This module is that baseline; experiment E4 compares its
detection rate against the predictive analyzer over random schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..core.events import VarName
from ..logic.ast import Formula
from ..logic.monitor import Monitor
from ..sched.scheduler import ExecutionResult

__all__ = ["DetectionResult", "detect"]


@dataclass(frozen=True)
class DetectionResult:
    """Verdict of single-trace monitoring."""

    program_name: str
    spec: str
    ok: bool
    #: Index of the first violating state in the observed state sequence.
    violation_index: Optional[int]
    #: The observed global states (over the specification's variables).
    states: tuple[tuple, ...]
    variables: tuple[str, ...]

    def violating_state(self) -> Optional[Mapping[VarName, Any]]:
        if self.violation_index is None:
            return None
        return dict(zip(self.variables, self.states[self.violation_index]))


def detect(execution: ExecutionResult, spec: str | Formula | Monitor) -> DetectionResult:
    """Check the specification along the observed run only.

    The observed run is the sequence of global states after each *relevant*
    event, in emission order — exactly what a flat-trace monitor receives.
    """
    monitor = spec if isinstance(spec, Monitor) else Monitor(spec)
    variables = tuple(sorted(monitor.variables))
    missing = [v for v in variables if v not in execution.initial_store]
    if missing:
        raise KeyError(
            f"specification variables {missing} absent from the program store"
        )
    tuples = execution.relevant_state_sequence(variables)
    states = [dict(zip(variables, t)) for t in tuples]
    ok, idx = monitor.check_trace(states)
    return DetectionResult(
        program_name=execution.program_name,
        spec=str(monitor.formula),
        ok=ok,
        violation_index=idx,
        states=tuple(tuples),
        variables=variables,
    )
