"""Happens-before data-race detection on top of the same MVCs.

The paper motivates data races as a canonical class of bugs that observing a
single flat run rarely exposes (§1).  The causal partial order extracted by
Algorithm A yields the classic happens-before race check for free: two
accesses of the same shared variable, at least one a write, that are
*concurrent* in ``≺``, constitute a race — some schedule orders them either
way.

Two independent engines (they must agree — tested):

* :func:`find_races` — oracle-side, from the ground-truth
  :class:`~repro.core.computation.Computation` of the full event list (works
  whatever relevance predicate the execution ran with);
* :func:`find_races_from_messages` — observer-side, from MVC messages alone
  via Theorem 3 (requires the execution to have been instrumented with the
  all-accesses relevance predicate so reads are emitted too).

Lock acquire/release events are writes of the lock variable (§3.1), so
accesses in different critical sections of the same lock are causally
ordered and correctly *not* reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.causality import CausalityIndex
from ..core.computation import Computation
from ..core.events import Event, EventKind, Message, VarName
from ..sched.scheduler import ExecutionResult

__all__ = ["Race", "find_races", "find_races_from_messages"]

# Synchronization pseudo-writes order critical sections; they are not
# themselves racy accesses.
_SYNC_KINDS = frozenset(
    {EventKind.ACQUIRE, EventKind.RELEASE, EventKind.NOTIFY, EventKind.WAKE}
)


@dataclass(frozen=True)
class Race:
    """An unordered pair of concurrent conflicting accesses."""

    var: VarName
    first: Event
    second: Event

    def __post_init__(self) -> None:
        if self.first.eid == self.second.eid:
            raise ValueError("a race needs two distinct events")

    @property
    def key(self) -> tuple:
        """Canonical unordered identity (for set semantics in reports)."""
        a, b = sorted([self.first.eid, self.second.eid])
        return (self.var, a, b)

    def pretty(self) -> str:
        return (
            f"race on {self.var!r}: {self.first.pretty()} || {self.second.pretty()}"
        )


def _is_data_access(e: Event) -> bool:
    return e.kind.is_access and e.kind not in _SYNC_KINDS


def find_races(execution: ExecutionResult) -> list[Race]:
    """Ground-truth race detection over the execution's full event list.

    Uses the *sync-only* happens-before relation: program order plus edges
    through lock/condition events.  (Under the paper's full ``≺`` every
    conflicting pair is ordered by its own access edge, so no race would
    ever surface — the relations answer different questions.)
    """
    comp = Computation(execution.events, causality="sync")
    return _races_from_computation(comp)


def _races_from_computation(comp: Computation) -> list[Race]:
    events = [e for e in comp.events if _is_data_access(e)]
    by_var: dict[VarName, list[Event]] = {}
    for e in events:
        by_var.setdefault(e.var, []).append(e)
    out: list[Race] = []
    seen: set[tuple] = set()
    for var, accs in by_var.items():
        for i, a in enumerate(accs):
            for b in accs[i + 1:]:
                if a.thread == b.thread:
                    continue
                if not (a.kind.is_write or b.kind.is_write):
                    continue
                if comp.concurrent(a, b):
                    r = Race(var, a, b)
                    if r.key not in seen:
                        seen.add(r.key)
                        out.append(r)
    return out


def find_races_from_messages(
    messages: Iterable[Message], n_threads: int
) -> list[Race]:
    """Observer-side race detection from MVC messages alone (Theorem 3).

    The execution must have been instrumented for race detection: relevance
    ``repro.core.algorithm_a.all_accesses`` (so reads are emitted) *and*
    ``AlgorithmA(..., sync_only_clocks=True)`` (so clocks encode sync-only
    happens-before rather than the full ``≺``, under which conflicting
    accesses are never concurrent).
    """
    idx = CausalityIndex(n_threads, messages)
    msgs: Sequence[Message] = idx.messages
    out: list[Race] = []
    seen: set[tuple] = set()
    by_var: dict[VarName, list[Message]] = {}
    for m in msgs:
        if _is_data_access(m.event):
            by_var.setdefault(m.event.var, []).append(m)
    for var, group in by_var.items():
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if a.thread == b.thread:
                    continue
                if not (a.event.kind.is_write or b.event.kind.is_write):
                    continue
                if a.concurrent_with(b):
                    r = Race(var, a.event, b.event)
                    if r.key not in seen:
                        seen.add(r.key)
                        out.append(r)
    return out
