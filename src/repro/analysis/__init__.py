"""Analyses over instrumented executions: predictive checking (JMPaX),
observed-run checking (JPaX baseline), data races, liveness lassos."""

from .atomicity import AtomicityViolation, AtomicRegion, find_atomicity_violations
from .coverage import CoverageReport, observations_to_cover, prediction_coverage
from .datarace import Race, find_races, find_races_from_messages
from .deadlock import (
    LockEdge,
    PotentialDeadlock,
    find_potential_deadlocks,
    lock_order_graph,
)
from .detector import DetectionResult, detect
from .liveness import (
    Lasso,
    LassoViolation,
    find_lassos,
    predict_liveness_violations,
)
from .modelcheck import ModelCheckResult, model_check
from .predicates import PredicateReport, as_predicate, definitely, possibly
from .predictive import OnlinePredictor, PredictionReport, predict, predict_many
from .report import AnalysisReport, analyze

__all__ = [
    "AtomicityViolation",
    "AtomicRegion",
    "find_atomicity_violations",
    "CoverageReport",
    "observations_to_cover",
    "prediction_coverage",
    "Race",
    "find_races",
    "find_races_from_messages",
    "LockEdge",
    "PotentialDeadlock",
    "find_potential_deadlocks",
    "lock_order_graph",
    "DetectionResult",
    "detect",
    "Lasso",
    "LassoViolation",
    "find_lassos",
    "predict_liveness_violations",
    "ModelCheckResult",
    "model_check",
    "PredicateReport",
    "as_predicate",
    "definitely",
    "possibly",
    "OnlinePredictor",
    "PredictionReport",
    "predict",
    "predict_many",
    "AnalysisReport",
    "analyze",
]
