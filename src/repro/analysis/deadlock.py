"""Predictive deadlock detection from lock-order cycles (Goodlock-style).

Deadlocks are among the bugs the paper targets (§1: "a deadlock or a
data-race").  Like data races, an actual deadlock manifests only under
unlucky scheduling — but a *successful* execution already reveals the lock
discipline: if thread 1 ever held ``A`` while acquiring ``B`` and thread 2
held ``B`` while acquiring ``A``, some schedule interleaves the two
acquisitions into a deadlock.  Formally: build the *lock-order graph* with
an edge ``L1 → L2`` whenever some thread acquires ``L2`` while holding
``L1``; a cycle whose edges come from at least two different threads is a
potential deadlock.

This is the lock-analysis analogue of the paper's prediction story: detect
from one (non-deadlocking) run what a different scheduling could do.  The
gate-lock refinement (ignore cycles protected by a common outer lock) is
implemented too: an edge carries the set of locks held *besides* the source,
and a cycle is discounted when all its edges share a common gate lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from ..core.events import Event, EventKind, VarName
from ..sched.scheduler import ExecutionResult

__all__ = ["LockEdge", "PotentialDeadlock", "lock_order_graph", "find_potential_deadlocks"]


@dataclass(frozen=True)
class LockEdge:
    """One observed nested acquisition: ``thread`` acquired ``inner`` while
    holding ``outer`` (and ``gates``: every other lock held at that moment)."""

    thread: int
    outer: VarName
    inner: VarName
    gates: frozenset

    def __post_init__(self) -> None:
        if self.outer == self.inner:
            raise ValueError("self-edge: re-entrant acquisition")


@dataclass(frozen=True)
class PotentialDeadlock:
    """A lock-order cycle reachable by >= 2 threads and not gate-protected."""

    #: The locks on the cycle, in cycle order.
    cycle: tuple
    #: The edges realizing the cycle (one per cycle arc).
    edges: tuple[LockEdge, ...]

    @property
    def threads(self) -> frozenset:
        return frozenset(e.thread for e in self.edges)

    def pretty(self) -> str:
        arcs = " -> ".join(str(lock) for lock in self.cycle + (self.cycle[0],))
        who = ", ".join(f"T{t + 1}" for t in sorted(self.threads))
        return f"potential deadlock on {arcs} (threads {who})"


def lock_order_graph(events: Iterable[Event]) -> list[LockEdge]:
    """Extract nested-acquisition edges from an event sequence."""
    held: dict[int, list[VarName]] = {}
    edges: set[LockEdge] = set()
    for e in events:
        if e.kind is EventKind.ACQUIRE:
            stack = held.setdefault(e.thread, [])
            for outer in stack:
                gates = frozenset(lk for lk in stack if lk != outer)
                edges.add(LockEdge(e.thread, outer, e.var, gates))
            stack.append(e.var)
        elif e.kind is EventKind.RELEASE:
            stack = held.get(e.thread, [])
            if e.var in stack:
                stack.remove(e.var)
    return sorted(edges, key=lambda x: (x.thread, str(x.outer), str(x.inner)))


def find_potential_deadlocks(
    execution: ExecutionResult | Sequence[Event],
) -> list[PotentialDeadlock]:
    """Report every un-gated multi-thread lock cycle in the execution.

    Accepts an :class:`ExecutionResult` or a raw event sequence.  A cycle is
    reported when (a) its edges involve at least two distinct threads — a
    single thread cannot deadlock with itself under nested locking — and
    (b) there is no *gate lock* held across every edge (a common outer lock
    serializes the cycle and makes the deadlock unreachable).
    """
    events = execution.events if isinstance(execution, ExecutionResult) else execution
    edges = lock_order_graph(events)
    if not edges:
        return []
    graph = nx.DiGraph()
    by_arc: dict[tuple, list[LockEdge]] = {}
    for e in edges:
        graph.add_edge(e.outer, e.inner)
        by_arc.setdefault((e.outer, e.inner), []).append(e)

    out: list[PotentialDeadlock] = []
    seen: set[frozenset] = set()
    for cycle in nx.simple_cycles(graph):
        if len(cycle) < 2:
            continue
        key = frozenset(cycle)
        if key in seen:
            continue
        seen.add(key)
        arcs = [(cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))]
        # choose, per arc, the realizing edges; try to find an assignment
        # with >= 2 threads and no common gate lock
        candidates = [by_arc[a] for a in arcs]
        best = _pick_assignment(candidates)
        if best is None:
            continue
        out.append(PotentialDeadlock(cycle=tuple(cycle), edges=tuple(best)))
    return out


def _pick_assignment(candidates: list[list[LockEdge]]) -> list[LockEdge] | None:
    """Pick one edge per arc such that >= 2 threads participate and no gate
    lock is common to all edges.  Exhaustive over the (small) product."""
    import itertools

    for combo in itertools.product(*candidates):
        threads = {e.thread for e in combo}
        if len(threads) < 2:
            continue
        common_gates = frozenset.intersection(*(e.gates for e in combo))
        if common_gates:
            continue
        return list(combo)
    return None
