"""Global predicate detection: Possibly(φ) and Definitely(φ).

The paper (§4): *"Once a computation lattice containing all possible runs is
extracted, one can start using standard techniques on debugging distributed
systems, considering both state predicates [29, 7, 5] and more complex ...
properties"*.  The standard state-predicate techniques are Cooper &
Marzullo's modalities over the lattice of consistent cuts:

* ``Possibly(φ)``  — some consistent global state satisfies φ: the predicate
  *could* have held in some run (sound bug evidence: e.g. φ = "both threads
  in the critical section").
* ``Definitely(φ)`` — every run passes through a φ-state: the predicate was
  *unavoidable* regardless of scheduling.

Both are decided by one lattice sweep: Possibly is a node scan;
Definitely(φ) fails iff a φ-avoiding path exists from bottom to top
(computed level-by-level over the non-φ nodes).

Predicates are state formulas of :mod:`repro.logic` (no temporal operators)
or arbitrary callables on the state mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..core.events import Message, VarName
from ..lattice.cut import Cut
from ..lattice.full import ComputationLattice
from ..logic.ast import Formula, subformulas
from ..logic.ast import _PAST as _PAST_OPS
from ..logic.ast import Always, Eventually, Next, Until
from ..logic.monitor import Monitor
from ..logic.parser import parse

__all__ = ["PredicateReport", "possibly", "definitely", "as_predicate"]

StatePredicate = Callable[[Mapping[VarName, object]], bool]

_TEMPORAL = _PAST_OPS + (Always, Eventually, Next, Until)


def as_predicate(spec: str | Formula | StatePredicate) -> StatePredicate:
    """Coerce a spec into a plain state predicate; temporal operators are
    rejected (modalities quantify over cuts, not histories)."""
    if callable(spec) and not isinstance(spec, Formula):
        return spec
    formula = parse(spec) if isinstance(spec, str) else spec
    for g in subformulas(formula):
        if isinstance(g, _TEMPORAL):
            raise ValueError(
                f"Possibly/Definitely take state predicates; {g} is temporal"
            )
    monitor = Monitor(formula)

    def predicate(state: Mapping[VarName, object]) -> bool:
        _ms, ok = monitor.step(monitor.initial_state(), state)
        return ok

    return predicate


@dataclass(frozen=True)
class PredicateReport:
    """Outcome of a modal predicate query."""

    modality: str  # "possibly" | "definitely"
    holds: bool
    #: For Possibly: a cut whose state satisfies φ (None if not holds).
    #: For Definitely: a cut on a φ-avoiding path certificate (None if holds).
    witness_cut: Optional[Cut]
    #: The witness state (satisfying φ for Possibly; the top of the avoiding
    #: path for Definitely).
    witness_state: Optional[Mapping[VarName, object]]
    #: For Possibly: one run prefix reaching the witness cut.
    witness_run: tuple[Message, ...] = ()


def possibly(
    lattice: ComputationLattice,
    spec: str | Formula | StatePredicate,
) -> PredicateReport:
    """Does some consistent global state satisfy the predicate?

    Returns a witness cut, its state, and a run prefix reaching it (BFS, so
    the prefix is one of the shortest).
    """
    pred = as_predicate(spec)
    # BFS from the bottom with parent pointers for the witness run.
    bottom = lattice.bottom
    if pred(lattice.state(bottom)):
        return PredicateReport("possibly", True, bottom, lattice.state(bottom))
    parents: dict[Cut, tuple[Cut, Message]] = {}
    frontier = [bottom]
    seen = {bottom}
    while frontier:
        nxt: list[Cut] = []
        for cut in frontier:
            for msg, succ in lattice.successors(cut):
                if succ in seen:
                    continue
                seen.add(succ)
                parents[succ] = (cut, msg)
                state = lattice.state(succ)
                if pred(state):
                    run: list[Message] = []
                    node = succ
                    while node in parents:
                        node, m = parents[node]
                        run.append(m)
                    run.reverse()
                    return PredicateReport("possibly", True, succ, state,
                                           tuple(run))
                nxt.append(succ)
        frontier = nxt
    return PredicateReport("possibly", False, None, None)


def definitely(
    lattice: ComputationLattice,
    spec: str | Formula | StatePredicate,
) -> PredicateReport:
    """Does every run pass through a state satisfying the predicate?

    Fails iff there is a bottom-to-top path avoiding all φ-states; the
    returned witness is the top cut of such an avoiding path (a concrete
    schedule on which φ never held).
    """
    pred = as_predicate(spec)
    bottom, top = lattice.bottom, lattice.top

    def clean(cut: Cut) -> bool:
        return not pred(lattice.state(cut))

    if not clean(bottom):
        # φ holds initially: every run starts in a φ-state.
        return PredicateReport("definitely", True, None, None)
    # BFS over φ-avoiding nodes.
    frontier = [bottom]
    seen = {bottom}
    while frontier:
        nxt: list[Cut] = []
        for cut in frontier:
            if cut == top:
                return PredicateReport(
                    "definitely", False, top, lattice.state(top)
                )
            for _msg, succ in lattice.successors(cut):
                if succ not in seen and clean(succ):
                    seen.add(succ)
                    nxt.append(succ)
        frontier = nxt
    return PredicateReport("definitely", True, None, None)
