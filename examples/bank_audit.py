#!/usr/bin/env python3
"""Predicting an audit-time invariant violation in a bank workload.

Thread 1 transfers 30 from account ``a`` to ``b`` (total 100); thread 2 is
an auditor that snapshots the books and raises ``audited``.  Property::

    start(audited == 1) -> a + b == 100

— at the instant the audit completes, no money may be missing.

This example:

1. runs the program once, with the audit happening entirely *before* the
   transfer — the observed run satisfies the property;
2. shows the predictive analyzer finding the run, consistent with the same
   causal order, in which the audit lands between the two transfer writes
   and observes 70 missing 30 (predicted violation);
3. validates the prediction against ground truth: exhaustively enumerating
   real interleavings shows schedules on which a flat-trace monitor would
   catch the bug — and how few they are;
4. shows the locked variant predicts clean (lock events, paper §3.1).

Run:  python examples/bank_audit.py
"""

from repro import FixedScheduler, detect, explore_all, predict, run_program
from repro.workloads import AUDIT_PROPERTY, transfer_program

BANK_VARS = ("a", "b", "audited")


def main() -> None:
    program = transfer_program(amounts=(30,), locked=False)
    print(f"program: {program.name}; property: {AUDIT_PROPERTY}")

    # Auditor (thread 1) runs completely first, then the transfer.
    execution = run_program(program, FixedScheduler([1, 1, 1] + [0] * 6, strict=False))
    baseline = detect(execution, AUDIT_PROPERTY)
    print(f"observed run states {list(baseline.states)}: "
          f"{'OK' if baseline.ok else 'violation'}")
    assert baseline.ok, "the observed run is successful"

    report = predict(execution, AUDIT_PROPERTY, mode="full")
    print(f"lattice: {report.nodes} states, {report.n_runs} runs, "
          f"{len(report.violations)} violating run(s) predicted")
    for v in report.violations:
        print(f"  counterexample (states are <a, b, audited>):\n"
              f"    {v.pretty(BANK_VARS)}")
    assert report.predicted, "violation must be predicted from the clean run"

    # -- ground truth: the predicted schedule is actually executable ----------
    bad = ok = 0
    for ex in explore_all(program):
        if detect(ex, AUDIT_PROPERTY).ok:
            ok += 1
        else:
            bad += 1
    print(f"ground truth (exhaustive): {bad}/{bad + ok} interleavings expose "
          f"the bug to a flat-trace monitor")
    assert bad > 0

    # -- the locked variant is clean -------------------------------------------
    locked = transfer_program(amounts=(30,), locked=True)
    lexec = run_program(locked, FixedScheduler([1] * 6 + [0] * 10, strict=False))
    lreport = predict(lexec, AUDIT_PROPERTY, mode="full")
    print(f"\nlocked variant: {lreport.nodes} lattice states, "
          f"{len(lreport.violations)} violations predicted")
    assert lreport.ok
    print("the lock's write events order the audit against the whole transfer.")


if __name__ == "__main__":
    main()
