#!/usr/bin/env python3
"""Data-race detection with multithreaded vector clocks, on real threads.

The paper motivates data races as the canonical schedule-dependent bug
(§1).  This example instruments a *real* ``threading`` program two ways —
an unprotected counter and a lock-protected one — and shows that:

* the unprotected version contains happens-before races, reported from the
  MVC messages alone (observer side, Theorem 3), whatever the OS scheduler
  did in this particular run;
* modeling lock acquire/release as writes of the lock's shared variable
  (paper §3.1) removes every race in the protected version.

Run:  python examples/race_detection.py
"""

from repro import (
    InstrumentedRuntime,
    find_races,
    find_races_from_messages,
    run_threads,
    to_execution_result,
)
from repro.core import all_accesses


def racy_worker(rt: InstrumentedRuntime) -> None:
    for _ in range(3):
        v = rt.read("counter")
        rt.write("counter", v + 1)


def locked_worker(rt: InstrumentedRuntime) -> None:
    for _ in range(3):
        with rt.lock("guard"):
            v = rt.read("counter")
            rt.write("counter", v + 1)


def analyze(name: str, worker, n_threads: int = 3) -> int:
    # Race detection needs reads in the event stream and sync-only clocks
    # (under the full causal order, conflicting accesses are never
    # concurrent — they are ordered by the very access edges under test).
    rt = InstrumentedRuntime(
        {"counter": 0},
        relevance=all_accesses(),
        sync_only_clocks=True,
    )
    run_threads(rt, [worker] * n_threads)
    result = to_execution_result(rt, name)

    oracle = find_races(result)
    observer_side = find_races_from_messages(result.messages, result.n_threads)
    assert {r.key for r in oracle} == {r.key for r in observer_side}, (
        "Theorem 3 reconstruction must agree with ground truth"
    )

    print(f"{name}: final counter = {result.final_store['counter']}, "
          f"{len(oracle)} racing pairs")
    for race in oracle[:5]:
        print(f"  {race.pretty()}")
    if len(oracle) > 5:
        print(f"  ... and {len(oracle) - 5} more")
    return len(oracle)


def main() -> None:
    racy = analyze("racy-counter", racy_worker)
    print()
    locked = analyze("locked-counter", locked_worker)
    assert racy > 0, "unprotected increments must race"
    assert locked == 0, "lock events (§3.1) must order the critical sections"
    print("\nLocks became shared-variable writes; the races disappeared.")


if __name__ == "__main__":
    main()
