#!/usr/bin/env python3
"""Two-process deployment over a wire that drops 5% of sends — zero loss.

The plain two-process demo (``two_process_observer.py``) rides TCP's
perfect byte stream.  Real deployments are not always that lucky: frames
vanish at overloaded relays, UDP-style hops drop under pressure, a flaky
proxy duplicates.  This example runs the same pipeline over exactly such a
wire — the child's reliability layer pushes every frame through a
:class:`~repro.observer.reliable.LossyWire` that *drops 5% of sends* (and
duplicates a few more) — and still delivers every event exactly once, in
order, because the transport acks, retransmits with backoff, and verifies
the total count at the fin/finack handshake.

Run:  python examples/lossy_two_process_observer.py
"""

import subprocess
import sys
import textwrap

from repro import Observer
from repro.observer import ReliableReceiver
from repro.workloads import XYZ_PROPERTY, XYZ_VARS

DROP_RATE = 0.05
DUP_RATE = 0.02
SEED = 15  # chosen so the short demo stream really does lose a data frame

CHILD = textwrap.dedent(
    f"""
    import sys
    from repro import run_program, FixedScheduler
    from repro.observer.reliable import LossyWire, ReliableSender
    from repro.workloads import xyz_program, XYZ_OBSERVED_SCHEDULE

    stats = {{}}

    def flaky(send_fn):
        wire = LossyWire(send_fn, drop={DROP_RATE}, dup={DUP_RATE},
                         seed={SEED})
        stats["wire"] = wire
        return wire

    sender = ReliableSender("127.0.0.1", int(sys.argv[1]), wire=flaky,
                            timeout=0.05, max_retries=10)
    execution = run_program(
        xyz_program(),
        FixedScheduler(XYZ_OBSERVED_SCHEDULE),
        sink=sender.send,          # Algorithm A streams straight to the wire
    )
    sender.close()                 # flushes; raises if anything was lost
    wire = stats["wire"]
    print(f"wire dropped {{wire.frames_dropped}} frames, "
          f"duplicated {{wire.frames_duplicated}}; "
          f"sender retransmitted {{sender.retransmissions}}")
    """
)


def main() -> None:
    receiver = ReliableReceiver()
    receiver.start()
    print(f"observer listening on port {receiver.port} "
          f"(wire drops {DROP_RATE:.0%} of sends)")

    proc = subprocess.run(
        [sys.executable, "-c", CHILD, str(receiver.port)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child failed:\n{proc.stderr}")
    print("child: " + proc.stdout.strip())

    messages = receiver.wait()     # raises unless the stream is complete
    print(f"received {len(messages)} messages — exactly once, in order "
          f"({receiver.duplicates} wire duplicates suppressed)")
    for m in messages:
        print(f"  {m.pretty()}")

    observer = Observer(2, {"x": -1, "y": 0, "z": 0}, spec=XYZ_PROPERTY)
    observer.receive_many(messages)
    violations = observer.violations + observer.finish()
    print(f"\npredicted violations: {len(violations)}")
    for v in violations:
        print(f"  {v.pretty(XYZ_VARS)}")
    assert len(violations) == 1
    assert observer.health.sound_everywhere
    print("\nzero events lost over a lossy wire; verdicts identical to the "
          "perfect-channel run.")


if __name__ == "__main__":
    main()
