#!/usr/bin/env python3
"""Quickstart: predict a safety violation from one successful execution.

This walks the paper's Example 1 end to end:

1. build the flight-controller program (paper Fig. 1);
2. execute it once, instrumented with Algorithm A, under the schedule in
   which the radio goes down only *after* landing has started — a run on
   which the safety property holds;
3. hand the emitted messages to the predictive analyzer, which builds the
   computation lattice (paper Fig. 5) and checks the property on *every*
   run consistent with the causal order;
4. print the two predicted counterexamples that plain trace monitoring
   (JPaX / Java-MaC style) cannot see.

Run:  python examples/quickstart.py
"""

from repro import FixedScheduler, detect, predict, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    LANDING_VARS,
    landing_controller,
)


def main() -> None:
    program = landing_controller()
    print(f"program: {program.name} with {program.n_threads} threads")
    print(f"property: {LANDING_PROPERTY}")
    print()

    # -- 1+2: one instrumented execution ------------------------------------
    execution = run_program(program, FixedScheduler(LANDING_OBSERVED_SCHEDULE))
    print("observed execution emitted these messages (Algorithm A):")
    for m in execution.messages:
        print(f"  {m.pretty()}")
    print(f"observed global states {execution.state_sequence(LANDING_VARS)}")
    print()

    # -- a flat-trace monitor sees nothing wrong -----------------------------
    baseline = detect(execution, LANDING_PROPERTY)
    print(f"JPaX-style observed-run check: {'OK' if baseline.ok else 'VIOLATION'}")

    # -- 3+4: predictive analysis over the computation lattice ----------------
    report = predict(execution, LANDING_PROPERTY, mode="full")
    print(f"lattice: {report.nodes} global states, {report.n_runs} runs")
    print(f"predicted violations: {len(report.violations)}")
    for i, v in enumerate(report.violations, 1):
        print(f"\ncounterexample {i} (states are <landing, approved, radio>):")
        print(f"  {v.pretty(LANDING_VARS)}")

    assert baseline.ok, "the observed run itself is successful"
    assert len(report.violations) == 2, "the paper's two predicted violations"
    print("\nThe violation was predicted from a single successful execution.")


if __name__ == "__main__":
    main()
