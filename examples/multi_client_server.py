#!/usr/bin/env python3
"""One analysis server, many instrumented programs — concurrently.

The paper's Fig. 1 deployment pairs each instrumented program with one
observer.  `repro.server` scales that shape out: a single daemon hosts one
observer *session* per client connection, so a fleet of programs can be
monitored by one long-lived process.  This example starts the server
in-process, attaches three different workloads from three threads at the
same time, and prints each session's verdict plus the server's status
report — the same line `repro sessions` renders.

Run:  python examples/multi_client_server.py
"""

import threading

from repro import FixedScheduler, run_program
from repro.server import AnalysisServer, ServerConfig, attach, fetch_status
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    XYZ_OBSERVED_SCHEDULE,
    XYZ_PROPERTY,
    landing_controller,
    racy_counter,
    xyz_program,
)

WORKLOADS = [
    ("xyz", xyz_program, FixedScheduler(XYZ_OBSERVED_SCHEDULE, strict=False),
     XYZ_PROPERTY, ("x", "y", "z")),
    ("landing", landing_controller,
     FixedScheduler(LANDING_OBSERVED_SCHEDULE, strict=False),
     LANDING_PROPERTY, ("landing", "approved", "radio")),
    ("counter", lambda: racy_counter(2, 1),
     FixedScheduler([], strict=False), "c >= 0", ("c",)),
]


def client(server, name, factory, scheduler, spec, variables, verdicts):
    execution = run_program(factory(), scheduler)
    initial = {v: execution.initial_store[v] for v in variables}
    with attach(server.host, server.port, n_threads=execution.n_threads,
                initial=initial, spec=spec, program=name) as session:
        for message in execution.messages:
            session.send(message)       # Algorithm A's sink, over the wire
    verdicts[name] = session.verdict


def main() -> None:
    config = ServerConfig(port=0, max_sessions=8, workers=2)
    with AnalysisServer(config) as server:
        print(f"analysis server on {server.host}:{server.port}")

        verdicts: dict = {}
        threads = [
            threading.Thread(target=client, args=(server, *w, verdicts))
            for w in WORKLOADS
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        print()
        for name, verdict in sorted(verdicts.items()):
            print(f"{name}: {verdict.state}, {verdict.analyzed} events, "
                  f"{verdict.violations} violation(s)")
            for counterexample in verdict.counterexamples:
                print(f"  counterexample: {counterexample}")

        status = fetch_status(server.host, server.port)
        srv = status["server"]
        print()
        print(f"server status: {srv['active_sessions']} active, "
              f"{srv['finished']} finished, {srv['failed']} failed, "
              f"{srv['rejected']} rejected")

    predicted = sum(v.violations for v in verdicts.values())
    assert predicted >= 2, "xyz and landing both predict a violation"
    print("\nOK: one daemon, three programs, violations predicted per session")


if __name__ == "__main__":
    main()
