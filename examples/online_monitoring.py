#!/usr/bin/env python3
"""Fully online monitoring of real threads — the deployment shape of Fig. 4.

Everything happens *while the program runs*: real ``threading`` threads
touch shared variables through the instrumented runtime; Algorithm A streams
each relevant message straight into an :class:`OnlinePredictor` sink; the
predictor builds the computation lattice level by level and reports
violations the moment the buffered prefix proves them — not at program exit.

The monitored program is the landing controller, written against
``SharedVar``s.  After the threads finish, end-of-thread markers close the
lattice and the final verdict is printed.

Run:  python examples/online_monitoring.py
"""

import threading

from repro import InstrumentedRuntime, OnlinePredictor, SharedVar, run_threads
from repro.workloads import LANDING_PROPERTY, LANDING_VARS


def main() -> None:
    predictor_lock = threading.Lock()
    live_violations = []
    initial = {"landing": 0, "approved": 0, "radio": 1}
    predictor = OnlinePredictor(2, initial, LANDING_PROPERTY)

    def sink(msg):
        # called under the runtime's event lock, as the program runs
        with predictor_lock:
            new = predictor.feed(msg)
            for v in new:
                live_violations.append(v)
                print(f"  !! violation predicted online at cut {v.cut}")

    rt = InstrumentedRuntime(initial, sink=sink)

    landing = SharedVar(rt, "landing")
    approved = SharedVar(rt, "approved")
    radio = SharedVar(rt, "radio")

    gate = threading.Event()

    def controller(r) -> None:
        if radio.get() == 1:
            approved.set(1)
        else:
            approved.set(0)
        if approved.get() == 1:
            landing.set(1)
        gate.set()  # landing started: now let the radio thread act

    def radio_watchdog(r) -> None:
        gate.wait(timeout=10)  # benign ordering: radio drops *after* landing
        radio.set(0)

    print(f"monitoring: {LANDING_PROPERTY}")
    run_threads(rt, [controller, radio_watchdog])

    # end-of-thread markers let the lattice close without guessing
    with predictor_lock:
        for t in range(2):
            emitted = sum(1 for m in rt.messages if m.thread == t)
            for v in predictor.mark_thread_done(t, emitted):
                live_violations.append(v)
                print(f"  !! violation predicted at close, cut {v.cut}")

    print(f"\nfinal store: { {k: rt.store[k] for k in LANDING_VARS} }")
    print(f"messages emitted: {len(rt.messages)}")
    print(f"violations predicted: {len(live_violations)}")
    for v in live_violations:
        print("  counterexample:", v.pretty(LANDING_VARS))
    assert live_violations, "the lattice contains the radio-first schedules"
    print("\nThe bug was predicted while the program was still the only "
          "evidence — no failing run was ever observed.")


if __name__ == "__main__":
    main()
