#!/usr/bin/env python3
"""The paper's Fig. 1, as source code — instrumentation fully automatic.

The original tool instruments Java bytecode so "the Java source code of the
tested programs is not necessary"; the spirit is that the *tool*, not the
programmer, inserts Algorithm A.  This example closes the loop in the other
direction: the flight controller is written in MiniLang (a small C-like
language bundled with this library, matching Fig. 1's pseudo-code almost
token for token), and the compiler places every Read/Write event.

Pipeline: source text → parse → compile (instrumentation inserted) →
execute under a benign schedule → predictive analysis → both Fig. 5
counterexamples.

Run:  python examples/minilang_source.py
"""

from repro.analysis import detect, predict
from repro.lang import compile_source
from repro.lattice import ComputationLattice, render_lattice
from repro.sched import FixedScheduler, run_program
from repro.workloads import LANDING_PROPERTY, LANDING_VARS

SOURCE = """
// Fig. 1: a buggy implementation of a flight controller.
shared int landing = 0, approved = 0, radio = 1;

thread controller {
    // askLandingApproval():
    if (radio == 0) { approved = 0; } else { approved = 1; }
    if (approved == 1) {
        landing = 1;                // "Landing started"
    }
}

thread watchdog {
    // while (radio) { checkRadio(); }
    local int checks = 0;
    while (radio == 1 && checks < 3) {
        skip;                       // checkRadio()
        checks = checks + 1;
        if (checks == 2) { radio = 0; }
    }
}
"""


def main() -> None:
    program = compile_source(SOURCE, name="landing-minilang")
    print(f"compiled {program.name}: {program.n_threads} threads, "
          f"shared = {sorted(program.default_relevance_vars())}")

    # benign schedule: the controller finishes before the radio drops
    execution = run_program(program, FixedScheduler([0] * 8, strict=False))
    print("\nmessages emitted by the compiled instrumentation:")
    for m in execution.messages:
        print(f"  {m.pretty()}")

    assert detect(execution, LANDING_PROPERTY).ok
    print("\nobserved run: OK (the bug does not show)")

    report = predict(execution, LANDING_PROPERTY, mode="full")
    print(f"lattice: {report.nodes} states, {report.n_runs} runs, "
          f"{len(report.violations)} predicted violations")
    assert report.nodes == 6 and len(report.violations) == 2

    initial = {v: execution.initial_store[v] for v in LANDING_VARS}
    lattice = ComputationLattice(2, initial, execution.messages)
    print("\n" + render_lattice(lattice, LANDING_VARS, show_edges=False))
    print("\nSame six states, same three runs, same two predicted bugs as "
          "the hand-built workload — from source text alone.")


if __name__ == "__main__":
    main()
