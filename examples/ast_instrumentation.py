#!/usr/bin/env python3
"""Automatic code instrumentation of an *uninstrumented* program.

The paper's headline is automation: a tool parses the specification,
extracts the relevant variables, and rewrites the program so every shared
access executes Algorithm A — no manual changes.  This example does that for
plain Python functions:

1. write the flight controller as ordinary code over ordinary names;
2. let the monitor's variable set drive the instrumentation (JMPaX's
   instrumentation module, Fig. 4);
3. rewrite both thread functions with the AST instrumentor;
4. run them on real threads and predict the violation.

Run:  python examples/ast_instrumentation.py
"""

from repro import (
    InstrumentedRuntime,
    Monitor,
    instrument_function,
    predict,
    run_threads,
    to_execution_result,
)
from repro.workloads import LANDING_PROPERTY, LANDING_VARS


# --- the program under test: completely uninstrumented Python ---------------
# (reads/writes of landing/approved/radio look like plain locals)

def controller() -> None:
    # askLandingApproval():
    if radio == 0:          # noqa: F821 - rewritten into runtime reads
        approved = 0        # noqa: F841
    else:
        approved = 1
    if approved == 1:
        landing = 1         # noqa: F841


def radio_watchdog() -> None:
    radio = 0               # noqa: F841 - checkRadio clears the signal


def main() -> None:
    monitor = Monitor(LANDING_PROPERTY)
    shared = monitor.variables
    print(f"specification: {LANDING_PROPERTY}")
    print(f"relevant variables extracted from the spec: {sorted(shared)}")

    runtime = InstrumentedRuntime({"landing": 0, "approved": 0, "radio": 1})
    t1 = instrument_function(controller, shared, runtime)
    t2 = instrument_function(radio_watchdog, shared, runtime)
    print("thread functions rewritten — every shared access now runs Algorithm A")

    # Real threads; pin controller to index 0 and make the interleaving the
    # benign one by ordering the bodies (the OS may or may not cooperate on
    # finer granularity — prediction does not care).
    run_threads(runtime, [lambda rt: t1(), lambda rt: t2()])
    execution = to_execution_result(runtime, "ast-landing")
    print(f"messages: {[m.pretty() for m in execution.messages]}")

    report = predict(execution, LANDING_PROPERTY, mode="full")
    print(f"lattice: {report.nodes} states, {report.n_runs} runs, "
          f"{len(report.violations)} violations")
    for v in report.violations:
        print(f"  counterexample: {v.pretty(LANDING_VARS)}")
    # Depending on the actual OS interleaving the observed run may or may not
    # be the benign one; the *lattice* contains the violating schedule
    # whenever approval happened with the radio still up.
    if report.violations:
        print("\nviolation found/predicted from automatically instrumented code.")
    else:
        print("\nthis run's causal order already excluded the bug "
              "(radio went down before approval); re-run to catch another order.")


if __name__ == "__main__":
    main()
