#!/usr/bin/env python3
"""Case study: auditing a small shared cache with every analysis at once.

A little in-memory cache with a version counter: writers update
``(version, value)`` pairs under a lock — *except* one "fast-path" writer
added later that skips the lock.  A GC thread occasionally clears the cache
under its own lock.  Nothing goes wrong in the run we observe; the analyses
still find:

* a predicted safety violation (reader can observe version/value mismatch),
* data races on the fast path,
* an atomicity violation inside the locked region,
* and, in the second scenario, a lock-order cycle between the cache lock
  and the GC lock.

All from one successful execution each — the end-to-end shape a user of the
tool would see via ``repro.analysis.analyze``.

Run:  python examples/case_study_kvstore.py
"""

from repro.analysis import analyze
from repro.core import all_accesses
from repro.sched import FixedScheduler, Program, run_program
from repro.sched.program import Acquire, Internal, Read, Release, Write, straightline

#: Version and value must agree whenever a read completes.
CACHE_PROPERTY = "start(read_done == 1) -> version == value"


def cache_program() -> Program:
    # proper writer: version and value move together under the lock
    slow_writer = straightline([
        Acquire("cache_lock"),
        Write("version", 1), Internal(), Write("value", 1),
        Release("cache_lock"),
    ])
    # fast-path writer someone added without the lock
    fast_writer = straightline([
        Write("version", 2), Internal(), Write("value", 2),
    ])
    # reader takes the lock (and re-checks the version — a consistency
    # pattern the fast path silently breaks), but the fast path doesn't care
    reader = straightline([
        Acquire("cache_lock"),
        Read("version"), Read("value"), Read("version"),
        Write("read_done", 1), Write("read_done", 0),
        Release("cache_lock"),
    ])
    return Program(
        initial={"version": 0, "value": 0, "read_done": 0, "cache_lock": 0},
        threads=[slow_writer, fast_writer, reader],
        relevant_vars=frozenset({"version", "value", "read_done"}),
        name="kv-cache",
        locks=frozenset({"cache_lock"}),
    )


def gc_program() -> Program:
    # maintenance added later: flush takes cache_lock then gc_lock; the GC
    # thread takes them the other way around
    flusher = straightline([
        Acquire("cache_lock"), Acquire("gc_lock"),
        Write("value", 0),
        Release("gc_lock"), Release("cache_lock"),
    ])
    gc = straightline([
        Acquire("gc_lock"), Acquire("cache_lock"),
        Write("version", 0),
        Release("cache_lock"), Release("gc_lock"),
    ])
    return Program(
        initial={"version": 1, "value": 1, "gc_lock": 0, "cache_lock": 0},
        threads=[flusher, gc],
        relevant_vars=frozenset({"version", "value"}),
        name="kv-gc",
        locks=frozenset({"cache_lock", "gc_lock"}),
    )


def main() -> None:
    # -- scenario 1: the fast-path writer ------------------------------------
    program = cache_program()
    # benign schedule: slow write, consistent read, THEN the fast-path
    # write — the run is clean, and the reader's pulse is causally
    # unordered with the fast-path writes (the hazard's fingerprint)
    schedule = [0] * 5 + [2] * 7 + [1] * 3
    execution = run_program(
        program,
        FixedScheduler(schedule, strict=False),
        relevance=all_accesses(),
        sync_only_clocks=True,
    )
    race_report = analyze(execution)
    # predictive checking wants the full causal clocks
    pred_execution = run_program(
        program, FixedScheduler(schedule, strict=False)
    )
    report = analyze(pred_execution, specs=[CACHE_PROPERTY], check_races=False)
    report.races = race_report.races
    report.races_checked = True
    report.atomicity = race_report.atomicity
    print(report.summary())
    assert not report.clean
    assert report.races, "the fast path races with the locked accesses"
    assert report.atomicity, "the re-check read is unserializable (R-W-R)"
    assert report.predictions[next(iter(report.predictions))].violations

    # -- scenario 2: the maintenance deadlock ----------------------------------
    print()
    gc_execution = run_program(gc_program(),
                               FixedScheduler([0] * 5 + [1] * 5))
    gc_report = analyze(gc_execution)
    print(gc_report.summary())
    assert len(gc_report.deadlocks) == 1
    print("\nFour bug classes surfaced; zero failing runs were ever observed.")


if __name__ == "__main__":
    main()
