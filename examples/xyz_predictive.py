#!/usr/bin/env python3
"""Paper Example 2 / Fig. 6: the x/y/z program, message by message.

Demonstrates the full observer pipeline on the artificial two-thread program

    T1:  x++; ...; y = x + 1        T2:  z = x + 1; ...; x++

with initial state ``x = -1, y = 0, z = 0`` and property
``(x > 0) -> [y == 0, y > z)``.  Shows:

* the exact MVC labels of Fig. 6 (e1..e4);
* the 7-node computation lattice with three runs;
* the online level-by-level analyzer predicting the violating run while the
  observed execution is successful — even when messages are delivered out
  of order through a reordering channel.

Run:  python examples/xyz_predictive.py
"""

from repro import FixedScheduler, Observer, ReorderingChannel, run_program
from repro.lattice import ComputationLattice
from repro.logic import Monitor
from repro.observer import deliver_all
from repro.workloads import (
    XYZ_OBSERVED_SCHEDULE,
    XYZ_PROPERTY,
    XYZ_VARS,
    xyz_program,
)


def main() -> None:
    program = xyz_program()
    execution = run_program(program, FixedScheduler(XYZ_OBSERVED_SCHEDULE))

    print("messages emitted by Algorithm A (compare with paper Fig. 6):")
    for m in execution.messages:
        print(f"  {m.pretty()}")
    expected = [(1, 0), (1, 1), (1, 2), (2, 0)]
    assert [tuple(m.clock) for m in execution.messages] == expected

    initial = {v: program.initial[v] for v in XYZ_VARS}
    lattice = ComputationLattice(2, initial, execution.messages)
    print(f"\ncomputation lattice: {len(lattice)} states, "
          f"{lattice.count_runs()} runs")
    monitor = Monitor(XYZ_PROPERTY)
    for run in lattice.runs():
        labels = [m.event.label for m in run.messages]
        ok, k = monitor.check_trace([dict(s) for s in run.states])
        verdict = "ok" if ok else f"VIOLATES {XYZ_PROPERTY} at state {k}"
        print(f"  run {labels}: {verdict}")

    # -- now online, with adversarial message reordering ----------------------
    print("\nonline analysis with reordered delivery:")
    channel = ReorderingChannel(seed=42, window=3)
    delivery = deliver_all(channel, execution.messages)
    print(f"  delivery order: {[m.event.label for m in delivery]}")
    observer = Observer(2, initial, spec=XYZ_PROPERTY)
    observer.receive_many(delivery)
    violations = observer.violations + observer.finish()
    print(f"  predicted violations: {len(violations)}")
    for v in violations:
        print(f"  counterexample (states are <x, y, z>):\n    {v.pretty(XYZ_VARS)}")
    assert len(violations) == 1

    print("\nJPaX-style tools check only the observed path and report OK;")
    print("the predictive observer finds the schedule that breaks the property.")


if __name__ == "__main__":
    main()
