#!/usr/bin/env python3
"""Dining philosophers: predicting a deadlock from a successful run.

Deadlocks are in the paper's §1 list of target bugs.  Like its safety
violations, a deadlock needs unlucky scheduling to manifest — four
philosophers can dine politely forever in testing and starve in production.
This example:

1. runs N philosophers (each taking left fork then right fork) under a
   polite schedule — every run completes;
2. extracts the lock-order graph from that *successful* execution and
   reports the classic fork cycle as a potential deadlock;
3. confirms the prediction against ground truth with a targeted schedule
   that really deadlocks (every philosopher grabs their left fork first);
4. applies the standard fix — one left-handed philosopher — and shows the
   report comes back clean, and that no schedule deadlocks anymore.

Run:  python examples/dining_philosophers.py
"""

from repro.analysis import find_potential_deadlocks
from repro.sched import (
    DeadlockError,
    FixedScheduler,
    Program,
    run_program,
)
from repro.sched.program import Acquire, Internal, Release, straightline

N = 4


def philosopher(left: str, right: str):
    return straightline([
        Acquire(left),
        Internal(label="ponder"),
        Acquire(right),
        Internal(label="eat"),
        Release(right),
        Release(left),
    ])


def table(left_handed: bool) -> Program:
    threads = []
    for i in range(N):
        left, right = f"fork{i}", f"fork{(i + 1) % N}"
        if left_handed and i == N - 1:
            left, right = right, left  # the classic fix
        threads.append(philosopher(left, right))
    return Program(
        initial={f"fork{i}": 0 for i in range(N)},
        threads=threads,
        name=f"philosophers-{'fixed' if left_handed else 'naive'}",
    )


def main() -> None:
    # -- 1+2: a polite run still reveals the hazard ---------------------------
    naive = table(left_handed=False)
    execution = run_program(naive, FixedScheduler([], strict=False))
    print(f"{execution.program_name}: polite run completed "
          f"({len(execution.events)} events, no deadlock observed)")
    reports = find_potential_deadlocks(execution)
    for r in reports:
        print(f"  {r.pretty()}")
    assert len(reports) == 1 and len(reports[0].cycle) == N

    # -- 3: ground truth — the predicted schedule really deadlocks ------------
    try:
        # every philosopher takes their left fork before anyone continues
        run_program(naive, FixedScheduler(list(range(N)), strict=False))
    except DeadlockError as exc:
        print(f"confirmed: {exc}")
    else:
        raise AssertionError("the all-left-forks schedule must deadlock")

    # -- 4: the left-handed fix -------------------------------------------------
    fixed = table(left_handed=True)
    fixed_run = run_program(fixed, FixedScheduler([], strict=False))
    assert find_potential_deadlocks(fixed_run) == []
    from repro.sched import RandomScheduler

    trials = 300
    for seed in range(trials):
        run_program(fixed, RandomScheduler(seed))  # DeadlockError would raise
    print(f"\n{fixed.name}: no lock cycle reported; "
          f"{trials} random schedules all complete")


if __name__ == "__main__":
    main()
