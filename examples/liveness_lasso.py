#!/usr/bin/env python3
"""Liveness-violation prediction via ``u vω`` lassos (paper §4).

The paper sketches an extension beyond safety: look for paths ``u`` and
``uv`` in the computation lattice that reach the *same* global state; then
the system could plausibly repeat ``v`` forever, so check the liveness
property on the infinite word ``u vω`` (Markey–Schnoebelen [22]).

Here a worker thread toggles a ``busy`` flag while a flaky controller may or
may not deliver a ``go`` signal.  The liveness property "eventually go
stays up" (``eventually(historically-free form: always(go == 1))`` on the
repeated suffix) fails on the lasso in which the toggle loop repeats without
``go`` ever being set.

Run:  python examples/liveness_lasso.py
"""

from typing import Any, Generator

from repro import FixedScheduler, run_program
from repro.analysis import find_lassos, predict_liveness_violations
from repro.lattice import ComputationLattice
from repro.sched.program import Internal, Op, Program, Read, Write


def toggling_program(cycles: int = 2) -> Program:
    """T1 toggles busy 0→1→0…; T2 eventually raises go."""

    def toggler() -> Generator[Op, Any, None]:
        for _ in range(cycles):
            yield Write("busy", 1)
            yield Internal(label="work")
            yield Write("busy", 0)

    def signaler() -> Generator[Op, Any, None]:
        yield Internal(label="think")
        yield Write("go", 1)

    return Program(
        initial={"busy": 0, "go": 0},
        threads=[toggler, signaler],
        relevant_vars=frozenset({"busy", "go"}),
        name="toggler",
    )


def main() -> None:
    program = toggling_program(cycles=2)
    execution = run_program(program, FixedScheduler([], strict=False))
    initial = {"busy": 0, "go": 0}
    lattice = ComputationLattice(2, initial, execution.messages)
    print(f"lattice: {len(lattice)} states, {lattice.count_runs()} runs")

    lassos = list(find_lassos(lattice, limit=50))
    print(f"candidate lassos (repeated global state along a path): {len(lassos)}")
    for lasso in lassos[:3]:
        loop = [dict(s) for s in lasso.v_states]
        print(f"  stem {len(lasso.u_states)} states, loop {loop}")

    spec = "eventually(go == 1)"
    violations = predict_liveness_violations(lattice, spec)
    print(f"\nliveness property: {spec}")
    print(f"lassos violating it: {len(violations)}")
    for v in violations[:3]:
        loop_labels = [m.event.label for m in v.lasso.v_messages]
        print(f"  plausible divergence: repeat {loop_labels} forever "
              f"before 'go' is ever written")
    assert violations, "the toggle loop without 'go' must be reported"

    spec_ok = "eventually(busy == 0)"
    assert not predict_liveness_violations(lattice, spec_ok)
    print(f"\n'{spec_ok}' holds on every lasso — no false alarm.")


if __name__ == "__main__":
    main()
