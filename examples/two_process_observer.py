#!/usr/bin/env python3
"""Two-process deployment: instrumented program → socket → external observer.

JMPaX's instrumented bytecode sends messages "via a socket to an external
observer" (paper §4.1, Fig. 4).  This example reproduces that deployment
shape: the monitored program runs in a child process, each relevant event is
serialized as JSON over localhost TCP, and the parent process hosts the
observer that rebuilds the computation lattice and predicts violations.

Run:  python examples/two_process_observer.py
"""

import subprocess
import sys
import textwrap

from repro import Observer
from repro.observer import SocketTransport
from repro.workloads import XYZ_PROPERTY, XYZ_VARS

CHILD = textwrap.dedent(
    """
    import sys
    from repro import run_program, FixedScheduler
    from repro.observer.channel import SocketSender
    from repro.workloads import xyz_program, XYZ_OBSERVED_SCHEDULE

    sender = SocketSender("127.0.0.1", int(sys.argv[1]))
    execution = run_program(
        xyz_program(),
        FixedScheduler(XYZ_OBSERVED_SCHEDULE),
        sink=sender.send,          # Algorithm A streams straight to the socket
    )
    sender.close()
    """
)


def main() -> None:
    transport = SocketTransport()
    transport.start_receiver()
    print(f"observer listening on port {transport.port}")

    proc = subprocess.run(
        [sys.executable, "-c", CHILD, str(transport.port)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child failed:\n{proc.stderr}")

    messages = transport.wait()
    print(f"received {len(messages)} messages over the wire:")
    for m in messages:
        print(f"  {m.pretty()}")

    observer = Observer(2, {"x": -1, "y": 0, "z": 0}, spec=XYZ_PROPERTY)
    observer.receive_many(messages)
    violations = observer.violations + observer.finish()
    print(f"\npredicted violations: {len(violations)}")
    for v in violations:
        print(f"  {v.pretty(XYZ_VARS)}")
    assert len(violations) == 1
    print("\ncross-process prediction pipeline works end to end.")


if __name__ == "__main__":
    main()
